//! Incremental result production and per-evaluation memory budgets —
//! the vocabulary shared by every evaluator in the workspace.
//!
//! [`ResultSink`] is the push half of a streaming evaluation: an
//! evaluator that can prove a top-level `(tree, annotation)` piece is
//! *final* — no later step of the computation can change its
//! annotation, drop it, or produce a piece that sorts before it in
//! document order — hands it to the sink immediately instead of
//! accumulating the whole K-set. The compiled plans in `axml-core`
//! and `axml-nrc` stream the root shapes where finality is provable
//! (see their `eval_stream_*` entry points) and fall back to
//! materialize-then-emit everywhere else, so a sink always observes
//! the same pieces in the same (document) order as the materialized
//! K-set — only the latency differs.
//!
//! [`NodeBudget`] is the accounting half: a shared monotone counter of
//! logical tree nodes produced by an evaluation. Evaluators charge it
//! at op boundaries (each set-producing plan op charges its output
//! size), at semi-naive fixpoint round boundaries (the round's delta),
//! and per streamed piece. Like a wall-clock deadline it bounds
//! scheduling unfairness, not individual instructions: one enormous op
//! still completes before the trip is observed at the next boundary.

use crate::tree::{Tree, Value};
use axml_semiring::Semiring;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The consumer of a streaming evaluation vanished (e.g. the cursor
/// was dropped after a `limit`). Not an error: the producer should
/// stop quietly and discard any remaining work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkClosed;

/// Receives top-level `(tree, annotation)` result pieces as an
/// evaluation produces them. Pieces arrive deduplicated, with final
/// annotations, in document order — exactly the pairs
/// `Forest::iter_document` would yield from the materialized result.
pub trait ResultSink<K: Semiring> {
    /// Accept one final piece. `Err(SinkClosed)` tells the evaluator
    /// the consumer is gone; it should abandon the evaluation.
    fn piece(&mut self, tree: &Tree<K>, ann: &K) -> Result<(), SinkClosed>;
}

/// A sink that rebuilds the forest — the identity consumer, used by
/// differential tests to check streamed ≡ materialized.
#[derive(Debug, Default)]
pub struct CollectSink<K: Semiring> {
    /// The pieces received so far, in arrival order.
    pub pieces: Vec<(Tree<K>, K)>,
}

impl<K: Semiring> ResultSink<K> for CollectSink<K> {
    fn piece(&mut self, tree: &Tree<K>, ann: &K) -> Result<(), SinkClosed> {
        self.pieces.push((tree.clone(), ann.clone()));
        Ok(())
    }
}

/// How a streaming evaluation concluded: either the top-level result
/// was a K-set and every piece went through the sink, or it was a
/// scalar (a bare label, or a single tree from a top-level element
/// constructor) that does not decompose into pieces.
#[derive(Debug, Clone, PartialEq)]
pub enum Streamed<K: Semiring> {
    /// The result was a set; the sink received every piece.
    Set,
    /// The result was not a set; here it is whole.
    Scalar(Value<K>),
}

/// Why a streaming evaluation stopped early: an evaluation error of
/// the evaluator's own type, or the consumer hanging up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError<E> {
    /// The evaluation itself failed.
    Eval(E),
    /// The sink reported [`SinkClosed`]; evaluation was abandoned.
    Closed,
}

impl<E> From<SinkClosed> for StreamError<E> {
    fn from(_: SinkClosed) -> Self {
        StreamError::Closed
    }
}

/// The memory budget tripped: the evaluation produced more logical
/// nodes than the caller allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded;

/// A monotone cap on the logical tree nodes an evaluation may
/// produce, shared (by reference) across every leg and round of one
/// evaluation — parallel differential legs, fixpoint rounds and
/// streamed pieces all charge the same counter. Thread-safe; relaxed
/// atomics suffice because the count only gates admission, never
/// synchronizes data.
///
/// "Logical nodes" counts each tree by its node count (`Tree::size`),
/// the same unit `StorageStats::logical_nodes` reports — a
/// hash-consed subtree shared nine ways still charges nine times, so
/// the budget tracks the *semantic* size of what a query produces,
/// which is what an operator provisioning result buffers cares about.
#[derive(Debug)]
pub struct NodeBudget {
    limit: usize,
    used: AtomicUsize,
}

impl NodeBudget {
    /// A budget of `limit` logical nodes.
    pub fn new(limit: usize) -> Self {
        NodeBudget {
            limit,
            used: AtomicUsize::new(0),
        }
    }

    /// Charge `nodes` against the budget. The charge is recorded even
    /// when it trips, so `used()` reports what the evaluation tried
    /// to produce.
    pub fn charge(&self, nodes: usize) -> Result<(), BudgetExceeded> {
        let before = self.used.fetch_add(nodes, Ordering::Relaxed);
        if before.saturating_add(nodes) > self.limit {
            Err(BudgetExceeded)
        } else {
            Ok(())
        }
    }

    /// Nodes charged so far.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// The cap this budget was created with.
    pub fn limit(&self) -> usize {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_trips_only_past_the_limit() {
        let b = NodeBudget::new(10);
        assert!(b.charge(4).is_ok());
        assert!(b.charge(6).is_ok()); // exactly at the limit: fine
        assert_eq!(b.used(), 10);
        assert_eq!(b.charge(1), Err(BudgetExceeded));
        assert_eq!(b.used(), 11); // the tripping charge is recorded
    }

    #[test]
    fn zero_budget_allows_empty_results() {
        let b = NodeBudget::new(0);
        assert!(b.charge(0).is_ok());
        assert!(b.charge(1).is_err());
    }
}
