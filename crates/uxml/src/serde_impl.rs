//! Serde support (feature `serde`): forests serialize as their
//! document-text form, the same syntax [`crate::parse_forest`] reads.
//!
//! This representation is human-readable, diff-friendly, and — because
//! annotations print via `Debug` and re-parse via
//! [`crate::ParseAnnotation`] — works uniformly for every built-in
//! semiring. Round-trips are tested for ℕ, 𝔹, ℕ\[X\] and Clearance.

#![cfg(feature = "serde")]

use crate::parse::{parse_forest, ParseAnnotation};
use crate::print::to_document_string;
use crate::tree::{Forest, Tree};
use axml_semiring::Semiring;
use serde::{de, Deserialize, Deserializer, Serialize, Serializer};

impl<K: Semiring + ParseAnnotation> Serialize for Forest<K> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&to_document_string(self))
    }
}

impl<'de, K: Semiring + ParseAnnotation> Deserialize<'de> for Forest<K> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let text = String::deserialize(deserializer)?;
        parse_forest::<K>(&text).map_err(de::Error::custom)
    }
}

impl<K: Semiring + ParseAnnotation> Serialize for Tree<K> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de, K: Semiring + ParseAnnotation> Deserialize<'de> for Tree<K> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let text = String::deserialize(deserializer)?;
        crate::parse::parse_tree::<K>(&text).map_err(de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_forest;
    use crate::print::to_document_string;
    use crate::tree::Forest;
    use axml_semiring::{Clearance, Nat, NatPoly};
    use serde::de::{value::StrDeserializer, IntoDeserializer};

    /// The Serialize impl is a thin wrapper over `to_document_string`;
    /// check that function's round-trip for each built-in semiring, and
    /// the Deserialize impl through a string deserializer.
    fn text_roundtrip<K>(src: &str)
    where
        K: axml_semiring::Semiring + crate::ParseAnnotation,
    {
        let f = parse_forest::<K>(src).expect("parses");
        let text = to_document_string(&f);
        let de: StrDeserializer<serde::de::value::Error> = text.as_str().into_deserializer();
        let back: Forest<K> = serde::Deserialize::deserialize(de).expect("deserializes");
        assert_eq!(back, f, "through text {text:?}");
    }

    #[test]
    fn roundtrips_per_semiring() {
        text_roundtrip::<NatPoly>("<a {z}> <b {x1}> d {y1} </b> c {x2 + 1} </a>");
        text_roundtrip::<Nat>("a {2} <b {3}> c </b>");
        text_roundtrip::<bool>("a {true} <b> c </b>");
        text_roundtrip::<Clearance>("a {S} b {T} <c {C}> d </c>");
    }

    #[test]
    fn deserialize_rejects_bad_text() {
        let de: StrDeserializer<serde::de::value::Error> = "<a> unclosed".into_deserializer();
        let out: Result<Forest<Nat>, _> = serde::Deserialize::deserialize(de);
        assert!(out.is_err());
    }
}
