//! Pretty-printing K-UXML in the paper's document style.
//!
//! Two renderings are provided:
//!
//! - **document style** ([`Display`] on [`Tree`]/[`Forest`]/[`Value`]):
//!   one line, `<a {z}> <b {x1}> d {y1} </b> ... </a>`, leaves printed
//!   bare (the paper's "we have abbreviated leaves `<l></>` as `l`"),
//!   neutral (`1`) annotations elided exactly as in the figures;
//! - **indented style** ([`pretty`]): one node per line with
//!   2-space indentation, convenient for diffing larger answers.
//!
//! Output is deterministic: forests print in *document order*
//! ([`Forest::iter_document`]: label name, then structure), which is
//! stable across processes regardless of the fingerprint-based
//! internal map order; labels / annotations order by name.

use crate::tree::{Forest, Tree, Value};
use axml_semiring::Semiring;
use std::fmt::{self, Display, Write as _};

impl<K: Semiring> Display for Tree<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_tree(f, self, None)
    }
}

impl<K: Semiring> Display for Forest<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        let mut first = true;
        for (t, k) in self.iter_document() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write_tree(f, t, Some(k))?;
        }
        write!(f, ")")
    }
}

impl<K: Semiring> Display for Value<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Label(l) => write!(f, "{l}"),
            Value::Tree(t) => write!(f, "{t}"),
            Value::Set(s) => write!(f, "{s}"),
        }
    }
}

fn write_annot<K: Semiring>(f: &mut fmt::Formatter<'_>, k: &K) -> fmt::Result {
    if !k.is_one() {
        write!(f, " {{{k:?}}}")?;
    }
    Ok(())
}

fn write_tree<K: Semiring>(
    f: &mut fmt::Formatter<'_>,
    t: &Tree<K>,
    annot: Option<&K>,
) -> fmt::Result {
    if t.is_leaf() {
        write!(f, "{}", t.label())?;
        if let Some(k) = annot {
            write_annot(f, k)?;
        }
        return Ok(());
    }
    write!(f, "<{}", t.label())?;
    if let Some(k) = annot {
        write_annot(f, k)?;
    }
    write!(f, ">")?;
    for (c, k) in t.children_document() {
        write!(f, " ")?;
        write_tree(f, c, Some(k))?;
    }
    write!(f, " </{}>", t.label())
}

/// Render a forest as a document body: the members separated by
/// spaces, without the surrounding parentheses of the `Display` form.
/// `parse_forest(to_document_string(f)) == f` for the semirings whose
/// `Debug` output their [`crate::parse::ParseAnnotation`] accepts
/// (all built-ins).
pub fn to_document_string<K: Semiring>(forest: &Forest<K>) -> String {
    let printed = forest.to_string();
    printed[1..printed.len() - 1].to_owned()
}

/// Render a forest in indented style, one node per line:
///
/// ```text
/// a {z}
///   b {x1}
///     d {y1}
/// ```
pub fn pretty<K: Semiring>(forest: &Forest<K>) -> String {
    let mut out = String::new();
    for (t, k) in forest.iter_document() {
        pretty_tree_into(&mut out, t, k, 0);
    }
    out
}

/// Render a single tree (annotated `1`) in indented style.
pub fn pretty_tree<K: Semiring>(t: &Tree<K>) -> String {
    let mut out = String::new();
    pretty_tree_into(&mut out, t, &K::one(), 0);
    out
}

fn pretty_tree_into<K: Semiring>(out: &mut String, t: &Tree<K>, k: &K, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    let _ = write!(out, "{}", t.label());
    if !k.is_one() {
        let _ = write!(out, " {{{k:?}}}");
    }
    out.push('\n');
    for (c, ck) in t.children_document() {
        pretty_tree_into(out, c, ck, indent + 1);
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::{leaf, tree, Forest, Value};
    use axml_semiring::{Nat, NatPoly};

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    #[test]
    fn leaf_prints_bare() {
        assert_eq!(leaf::<Nat>("d").to_string(), "d");
    }

    #[test]
    fn neutral_annotations_elided() {
        let f = Forest::from_pairs([(leaf::<Nat>("d"), Nat(1))]);
        assert_eq!(f.to_string(), "(d)");
        let f2 = Forest::from_pairs([(leaf::<Nat>("d"), Nat(3))]);
        assert_eq!(f2.to_string(), "(d {3})");
    }

    #[test]
    fn document_style_nested() {
        let t = tree::<NatPoly, _>(
            "a",
            [
                (tree("b", [(leaf("d"), np("y1"))]), np("x1")),
                (
                    tree("c", [(leaf("d"), np("y2")), (leaf("e"), np("y3"))]),
                    np("x2"),
                ),
            ],
        );
        let f = Forest::singleton(t, np("z"));
        assert_eq!(
            f.to_string(),
            "(<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>)"
        );
    }

    #[test]
    fn value_display() {
        assert_eq!(
            Value::<Nat>::Label(crate::label::Label::new("lbl")).to_string(),
            "lbl"
        );
        assert_eq!(Value::<Nat>::Tree(leaf("t")).to_string(), "t");
    }

    #[test]
    fn pretty_indents() {
        let t = tree::<NatPoly, _>("a", [(tree("b", [(leaf("d"), np("y1"))]), np("x1"))]);
        let f = Forest::singleton(t, np("z"));
        assert_eq!(super::pretty(&f), "a {z}\n  b {x1}\n    d {y1}\n");
        let t2 = leaf::<Nat>("only");
        assert_eq!(super::pretty_tree(&t2), "only\n");
    }

    #[test]
    fn deterministic_sibling_order() {
        // Siblings print in label order regardless of insertion order.
        let t1 = tree::<Nat, _>("r", [(leaf("b"), Nat(1)), (leaf("a"), Nat(1))]);
        let t2 = tree::<Nat, _>("r", [(leaf("a"), Nat(1)), (leaf("b"), Nat(1))]);
        assert_eq!(t1.to_string(), t2.to_string());
        assert_eq!(t1.to_string(), "<r> a b </r>");
    }
}
