//! Property tests for the relational layer: the classical algebraic
//! laws of RA⁺ hold *with annotations* (they are consequences of the
//! semiring axioms — this is the \[16\] observation the paper builds on),
//! and the shredding encode/decode pair is lossless.

use axml_relational::ra::RaExpr;
use axml_relational::{decode, eval_ra, shred, Database, KRelation, RelValue, Schema};
use axml_semiring::{NatPoly, Semiring};
use axml_uxml::{Forest, Tree};
use proptest::prelude::*;

const VALS: [&str; 4] = ["ra", "rb", "rc", "rd"];

fn arb_ann() -> impl Strategy<Value = NatPoly> {
    prop_oneof![
        3 => proptest::sample::select(&["rp1", "rp2", "rp3"][..]).prop_map(NatPoly::var_named),
        1 => Just(NatPoly::one()),
        1 => (1u64..3).prop_map(NatPoly::from),
    ]
}

fn arb_rel(attrs: &'static [&'static str]) -> impl Strategy<Value = KRelation<NatPoly>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(proptest::sample::select(&VALS[..]), attrs.len()),
            arb_ann(),
        ),
        0..5,
    )
    .prop_map(move |rows| {
        let mut rel = KRelation::new(Schema::new(attrs.iter().copied()));
        for (cols, k) in rows {
            rel.insert(cols.iter().map(|c| RelValue::label(c)).collect(), k);
        }
        rel
    })
}

/// Compare relations up to attribute order.
fn rel_eq_mod_order(a: &KRelation<NatPoly>, b: &KRelation<NatPoly>) -> bool {
    let attrs_a = a.schema().attrs();
    if attrs_a.len() != b.schema().attrs().len() {
        return false;
    }
    let Some(perm): Option<Vec<usize>> = attrs_a.iter().map(|x| b.schema().index_of(x)).collect()
    else {
        return false;
    };
    if a.len() != b.len() {
        return false;
    }
    a.iter().all(|(t, k)| {
        let mut bt = vec![RelValue::Node(0); t.len()];
        for (i, &j) in perm.iter().enumerate() {
            bt[j] = t[i].clone();
        }
        b.get(&bt) == *k
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Join is commutative and associative (up to column order), with
    /// annotation products commuting — a semiring-law consequence.
    #[test]
    fn join_commutative_associative(
        r in arb_rel(&["A", "B"]),
        s in arb_rel(&["B", "C"]),
        t in arb_rel(&["C", "D"]),
    ) {
        let db = Database::new().with("R", r).with("S", s).with("T", t);
        let rs = eval_ra(&RaExpr::rel("R").join(RaExpr::rel("S")), &db).unwrap();
        let sr = eval_ra(&RaExpr::rel("S").join(RaExpr::rel("R")), &db).unwrap();
        prop_assert!(rel_eq_mod_order(&rs, &sr), "⋈ commutes\n{rs}\n{sr}");

        let left = eval_ra(
            &RaExpr::rel("R").join(RaExpr::rel("S")).join(RaExpr::rel("T")),
            &db,
        )
        .unwrap();
        let right = eval_ra(
            &RaExpr::rel("R").join(RaExpr::rel("S").join(RaExpr::rel("T"))),
            &db,
        )
        .unwrap();
        prop_assert!(rel_eq_mod_order(&left, &right), "⋈ associates");
    }

    /// Union is commutative/associative; join distributes over union.
    #[test]
    fn union_laws_and_distributivity(
        r in arb_rel(&["A", "B"]),
        s1 in arb_rel(&["B", "C"]),
        s2 in arb_rel(&["B", "C"]),
    ) {
        let db = Database::new()
            .with("R", r)
            .with("S1", s1)
            .with("S2", s2);
        let u12 = eval_ra(&RaExpr::rel("S1").union(RaExpr::rel("S2")), &db).unwrap();
        let u21 = eval_ra(&RaExpr::rel("S2").union(RaExpr::rel("S1")), &db).unwrap();
        prop_assert_eq!(&u12, &u21);

        // R ⋈ (S1 ∪ S2) = (R ⋈ S1) ∪ (R ⋈ S2): semiring distributivity
        let lhs = eval_ra(
            &RaExpr::rel("R").join(RaExpr::rel("S1").union(RaExpr::rel("S2"))),
            &db,
        )
        .unwrap();
        let rhs = eval_ra(
            &RaExpr::rel("R")
                .join(RaExpr::rel("S1"))
                .union(RaExpr::rel("R").join(RaExpr::rel("S2"))),
            &db,
        )
        .unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Cascading projections compose; selection commutes with join when
    /// it mentions only one side's attributes.
    #[test]
    fn projection_and_selection_laws(
        r in arb_rel(&["A", "B", "C"]),
        s in arb_rel(&["C", "D"]),
    ) {
        let db = Database::new().with("R", r).with("S", s);
        let p1 = eval_ra(
            &RaExpr::rel("R").project(["A", "B"]).project(["A"]),
            &db,
        )
        .unwrap();
        let p2 = eval_ra(&RaExpr::rel("R").project(["A"]), &db).unwrap();
        prop_assert_eq!(p1, p2, "π composes");

        // σ_{A=ra}(R ⋈ S) = σ_{A=ra}(R) ⋈ S
        let lhs = eval_ra(
            &RaExpr::rel("R")
                .join(RaExpr::rel("S"))
                .select_label("A", "ra"),
            &db,
        )
        .unwrap();
        let rhs = eval_ra(
            &RaExpr::rel("R")
                .select_label("A", "ra")
                .join(RaExpr::rel("S")),
            &db,
        )
        .unwrap();
        prop_assert_eq!(lhs, rhs, "σ pushes through ⋈");
    }

    /// shred → decode is the identity on forests.
    #[test]
    fn shred_decode_roundtrip(
        trees in proptest::collection::vec(
            (
                proptest::sample::select(&["sa", "sb", "sc"][..]),
                proptest::collection::vec(
                    (proptest::sample::select(&["sx", "sy"][..]), arb_ann()),
                    0..3,
                ),
                arb_ann(),
            ),
            0..4,
        )
    ) {
        let mut forest: Forest<NatPoly> = Forest::new();
        for (root, kids, k) in trees {
            let children = Forest::from_pairs(
                kids.into_iter().map(|(l, ka)| (Tree::leaf(l), ka))
            );
            forest.insert(Tree::new(root, children), k);
        }
        let rel = shred(&forest);
        let back = decode(&rel).expect("decodes");
        prop_assert_eq!(back, forest);
    }

    /// The edge relation has exactly one tuple per distinct node and
    /// carries the same annotations the forest does.
    #[test]
    fn shred_preserves_annotations(
        kids in proptest::collection::vec(
            (proptest::sample::select(&["ka", "kb", "kc"][..]), arb_ann()),
            1..4,
        )
    ) {
        let children = Forest::from_pairs(
            kids.iter().cloned().map(|(l, k)| (Tree::leaf(l), k)),
        );
        let expected: Vec<(Tree<NatPoly>, NatPoly)> =
            children.iter().map(|(t, k)| (t.clone(), k.clone())).collect();
        let forest = Forest::unit(Tree::new("root", children));
        let rel = shred(&forest);
        prop_assert_eq!(rel.len(), 1 + expected.len());
        for (leaf_tree, k) in expected {
            let found = rel
                .iter()
                .any(|(t, ann)| {
                    t[2] == RelValue::Label(leaf_tree.label()) && ann == &k
                });
            prop_assert!(found, "annotation for {} missing", leaf_tree);
        }
    }
}
