//! Differential property tests: the semi-naive Datalog evaluator
//! (delta relations, indexed joins, absorption pruning) must agree
//! with the naïve reference fixpoint on random annotated programs —
//! same IDB relations when both converge, same non-convergence error
//! when neither does — over `Nat`, `PosBool` and `NatPoly`.
//!
//! Programs are drawn from a pool of rule shapes (base copies,
//! linear recursion in either atom order, projections, repeated
//! variables, two-IDB-atom bodies, Skolem heads); data is a random
//! annotated DAG (plus arbitrary — possibly cyclic — graphs for the
//! idempotent `PosBool`, where the fixpoint still exists).

use axml_relational::datalog::{
    atom, eval_datalog_capped, eval_datalog_naive_capped, sk, v, Program, Rule,
};
use axml_relational::{Database, KRelation, RelValue, Schema};
use axml_semiring::{Nat, NatPoly, PosBool, Semiring};
use proptest::prelude::*;

const MAX_ITERS: usize = 48;

/// The rule-shape pool. `T`, `U`, `P`, `Q` are IDB; `E`, `F` are EDB.
/// Subsets may leave an IDB predicate referenced but undefined — both
/// evaluators must then reject identically.
fn rule_pool() -> Vec<Rule> {
    vec![
        // T(x,y) :- E(x,y).
        Rule::new(atom("T", [v("x"), v("y")]), [atom("E", [v("x"), v("y")])]),
        // T(x,z) :- T(x,y), E(y,z).   (left-linear recursion)
        Rule::new(
            atom("T", [v("x"), v("z")]),
            [atom("T", [v("x"), v("y")]), atom("E", [v("y"), v("z")])],
        ),
        // T(x,z) :- E(x,y), T(y,z).   (right-linear recursion)
        Rule::new(
            atom("T", [v("x"), v("z")]),
            [atom("E", [v("x"), v("y")]), atom("T", [v("y"), v("z")])],
        ),
        // T(x,y) :- F(x,y).           (second base relation)
        Rule::new(atom("T", [v("x"), v("y")]), [atom("F", [v("x"), v("y")])]),
        // U(x) :- T(x,y).             (projection sums annotations)
        Rule::new(atom("U", [v("x")]), [atom("T", [v("x"), v("y")])]),
        // U(y) :- E(x,y), E(y,z).     (EDB-only join)
        Rule::new(
            atom("U", [v("y")]),
            [atom("E", [v("x"), v("y")]), atom("E", [v("y"), v("z")])],
        ),
        // P(x,z) :- T(x,y), T(y,z).   (two IDB atoms in one body)
        Rule::new(
            atom("P", [v("x"), v("z")]),
            [atom("T", [v("x"), v("y")]), atom("T", [v("y"), v("z")])],
        ),
        // U(x) :- E(x,x).             (repeated variable in one atom)
        Rule::new(atom("U", [v("x")]), [atom("E", [v("x"), v("x")])]),
        // Q(f(x), y) :- T(x,y).       (Skolem head)
        Rule::new(
            atom("Q", [sk("f", [v("x")]), v("y")]),
            [atom("T", [v("x"), v("y")])],
        ),
        // T(x,z) :- E(x,y), F(y,z).   (nonrecursive join)
        Rule::new(
            atom("T", [v("x"), v("z")]),
            [atom("E", [v("x"), v("y")]), atom("F", [v("y"), v("z")])],
        ),
    ]
}

/// A program: the base rule plus a random subset of the pool.
fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(
        proptest::sample::select(&[true, false][..]),
        rule_pool().len(),
    )
    .prop_map(|mask| {
        let pool = rule_pool();
        let mut rules = vec![pool[0].clone()];
        for (rule, keep) in pool.into_iter().zip(mask).skip(1) {
            if keep {
                rules.push(rule);
            }
        }
        Program::new(rules)
    })
}

/// Random edges. `dag` restricts to src < dst (guaranteed convergence
/// in every semiring); otherwise cycles may appear.
fn arb_edges(dag: bool) -> impl Strategy<Value = Vec<(u64, u64, usize)>> {
    proptest::collection::vec((1u64..6, 1u64..6, 0usize..4), 0..8).prop_map(move |raw| {
        raw.into_iter()
            .filter_map(|(a, b, ann)| {
                if !dag {
                    Some((a, b, ann))
                } else if a == b {
                    None // self-loop: would cycle
                } else {
                    Some((a.min(b), a.max(b), ann))
                }
            })
            .collect()
    })
}

fn build_db<K: Semiring>(
    e: &[(u64, u64, usize)],
    f: &[(u64, u64, usize)],
    ann: impl Fn(usize) -> K,
) -> Database<K> {
    let mut rel_e = KRelation::new(Schema::new(["src", "dst"]));
    for (a, b, i) in e {
        rel_e.insert(vec![RelValue::Node(*a), RelValue::Node(*b)], ann(*i));
    }
    let mut rel_f = KRelation::new(Schema::new(["src", "dst"]));
    for (a, b, i) in f {
        rel_f.insert(vec![RelValue::Node(*a), RelValue::Node(*b)], ann(*i));
    }
    Database::new().with("E", rel_e).with("F", rel_f)
}

/// Both evaluators agree: same relations on success, or both reject.
/// The **parallel** semi-naive evaluator (fanned-out join rounds) must
/// match the sequential one outcome-for-outcome too.
fn check_agreement<K: Semiring>(prog: &Program, db: &Database<K>) {
    let semi = eval_datalog_capped(prog, db, MAX_ITERS);
    let naive = eval_datalog_naive_capped(prog, db, MAX_ITERS);
    match (&semi, &naive) {
        (Ok(a), Ok(b)) => {
            for pred in prog.idb_preds().keys() {
                assert_eq!(a.get(pred), b.get(pred), "IDB {pred} diverges on\n{prog}");
            }
        }
        (Err(ea), Err(eb)) => {
            assert_eq!(ea.msg, eb.msg, "errors diverge on\n{prog}");
        }
        (a, b) => {
            panic!("outcome mismatch on\n{prog}\nsemi-naive: {a:?}\nnaive: {b:?}")
        }
    }
    let pool = par_pool();
    let ctx = axml_pool::ExecCtx::new(pool, axml_pool::Parallelism::threads(4));
    let par =
        axml_relational::datalog::eval_datalog_idb_capped_ctx(prog, db, MAX_ITERS, Some(&ctx));
    match (&semi, &par) {
        (Ok(a), Ok(p)) => {
            for pred in prog.idb_preds().keys() {
                assert_eq!(
                    a.get(pred),
                    p.get(pred),
                    "parallel IDB {pred} diverges on\n{prog}"
                );
            }
        }
        (Err(ea), Err(ep)) => {
            assert_eq!(ea.msg, ep.msg, "parallel errors diverge on\n{prog}");
        }
        (a, p) => {
            panic!("parallel outcome mismatch on\n{prog}\nsequential: {a:?}\nparallel: {p:?}")
        }
    }
}

/// One shared pool for the whole suite (proptest runs hundreds of
/// cases; a pool per case would churn threads).
fn par_pool() -> &'static axml_pool::Pool {
    static POOL: std::sync::OnceLock<axml_pool::Pool> = std::sync::OnceLock::new();
    POOL.get_or_init(|| axml_pool::Pool::new(4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// ℕ[X] — the universal semiring — over acyclic data.
    #[test]
    fn seminaive_matches_naive_natpoly(
        prog in arb_program(),
        e in arb_edges(true),
        f in arb_edges(true),
    ) {
        let db = build_db(&e, &f, |i| NatPoly::var_named(&format!("sp{i}")));
        check_agreement(&prog, &db);
    }

    /// ℕ (bag semantics) over acyclic data.
    #[test]
    fn seminaive_matches_naive_nat(
        prog in arb_program(),
        e in arb_edges(true),
        f in arb_edges(true),
    ) {
        let db = build_db(&e, &f, |i| Nat(1 + i as u128));
        check_agreement(&prog, &db);
    }

    /// PosBool over acyclic data.
    #[test]
    fn seminaive_matches_naive_posbool(
        prog in arb_program(),
        e in arb_edges(true),
        f in arb_edges(true),
    ) {
        let db = build_db(&e, &f, |i| PosBool::var_named(&format!("sb{i}")));
        check_agreement(&prog, &db);
    }

    /// PosBool over *arbitrary* (possibly cyclic) data: `+` is
    /// idempotent, so the fixpoint exists and absorption pruning must
    /// terminate the recursion exactly where the naïve iterate stops.
    #[test]
    fn seminaive_matches_naive_posbool_cyclic(
        prog in arb_program(),
        e in arb_edges(false),
        f in arb_edges(false),
    ) {
        let db = build_db(&e, &f, |i| PosBool::var_named(&format!("sc{i}")));
        check_agreement(&prog, &db);
    }
}
