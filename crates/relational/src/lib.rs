//! K-relations, the positive relational algebra, semiring Datalog with
//! Skolem functions, and the shredding semantics of §7 of Foster,
//! Green & Tannen (PODS 2008).
//!
//! This crate provides the *relational* side of the paper:
//!
//! - [`krel`]: K-relations (tuples annotated with semiring elements) —
//!   the model of Green–Karvounarakis–Tannen \[16\] that the paper
//!   extends to XML.
//! - [`ra`]: the positive relational algebra RA⁺ over K-relations (the
//!   baseline for Prop 1/Prop 4 and Fig 5).
//! - [`datalog`]: positive Datalog with semiring-annotated facts and
//!   Skolem functions in heads (the §7 machinery).
//! - [mod@shred]: the encoding φ of K-UXML into an edge K-relation, the
//!   translation ψ of XPath into Datalog, garbage collection, and
//!   decoding — Theorem 2 end to end.
//! - [`encode`]: the Fig 5 encoding of K-relations as K-UXML and the
//!   RA⁺ → UXQuery translation — Prop 1 end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datalog;
pub mod datalog_parse;
pub mod encode;
pub mod krel;
pub mod ra;
pub mod shred;

pub use datalog::{eval_datalog, Program, Rule};
pub use datalog_parse::parse_program;
pub use encode::{encode_database, encode_relation, ra_to_uxquery};
pub use krel::{KRelation, RelValue, Schema, Tuple};
pub use ra::{eval_ra, Database, RaExpr};
pub use shred::{
    decode, eval_steps_via_shredding, garbage_collect, shred, shredded_eval, xpath_to_datalog,
};
