//! K-relations, the positive relational algebra, semiring Datalog with
//! Skolem functions, and the shredding semantics of §7 of Foster,
//! Green & Tannen (PODS 2008).
//!
//! This crate provides the *relational* side of the paper:
//!
//! - [`krel`]: K-relations (tuples annotated with semiring elements) —
//!   the model of Green–Karvounarakis–Tannen \[16\] that the paper
//!   extends to XML.
//! - [`ra`]: the positive relational algebra RA⁺ over K-relations (the
//!   baseline for Prop 1/Prop 4 and Fig 5).
//! - [`datalog`]: positive Datalog with semiring-annotated facts and
//!   Skolem functions in heads (the §7 machinery).
//! - [mod@shred]: the encoding φ of K-UXML into an edge K-relation, the
//!   translation ψ of the §7 XPath fragment (chains, composition,
//!   union, branching predicates) into Datalog, garbage collection,
//!   and decoding — Theorem 2 end to end.
//! - [`encode`]: the Fig 5 encoding of K-relations as K-UXML and the
//!   RA⁺ → UXQuery translation — Prop 1 end to end.
//!
//! # Performance
//!
//! PR 3 rebuilt the Datalog evaluator around **semi-naive fixpoint**
//! with **hash-indexed joins**; [`eval_datalog`] closed most of the
//! 100–400× gap the naive fixpoint left against direct evaluation
//! (`shred_vs_direct/descendant_c/shredded_datalog/6`:
//! 2.29 ms → ~0.22 ms end to end; the `datalog_seminaive` bench
//! isolates the fixpoint). The design, bottom-up:
//!
//! - **Compiled rules** (`datalog.rs`): variables become numeric
//!   slots; each body atom is split at compile time into probe-key
//!   columns (constants and previously-bound variables), fresh
//!   bindings, and repeated-variable checks. Rule validation (unsafe
//!   heads, Skolem terms in bodies, arity/EDB conflicts) happens once,
//!   before iteration, identically for both evaluators.
//! - **Bound-column hash indexes** ([`KRelation::index_on`] /
//!   [`RelIndex`]): relations index on demand by the probe-key
//!   signature an atom actually uses; EDB indexes are built once per
//!   evaluation, IDB indexes once per round. `ra.rs`'s natural join
//!   shares the same index.
//! - **Scan-probe fallback for tiny drivers**: a rule variant whose
//!   driving (first) atom holds at most 16 tuples skips the per-round
//!   index builds entirely and scans its keyed atoms with key-column
//!   filtering — O(Δ·n) comparisons instead of O(n) allocations per
//!   round, which is what keeps a resumed fixpoint
//!   ([`eval_datalog_idb_resume`]) O(Δ) in allocation under small
//!   edit deltas.
//! - **Exact delta partition**: round n derives only depth-n
//!   derivation trees — every rule with m IDB atoms runs in m
//!   variants (prefix positions read `Iₙ₋₂`, the pivot reads `Δₙ₋₁`,
//!   the suffix reads `Iₙ₋₁`), so annotations are never
//!   double-counted in non-idempotent semirings like ℕ\[X\].
//! - **Absorption pruning at the join**: a contribution with
//!   `I[t] + k = I[t]` is dropped before it is ever materialized —
//!   this is what terminates recursion over cyclic data in idempotent
//!   semirings (PosBool, Tropical, Why, Prob) and costs nothing in
//!   zero-sum-free ones (absorbed ⇔ zero).
//! - **No gratuitous copies**: `Iₙ₋₂` snapshots are kept only for
//!   predicates that appear in a non-final IDB position of some body
//!   (never, for the linear programs ψ emits); output-only predicates
//!   (ψ's `E2`) have their deltas *moved* into the iterate; Skolem
//!   names are interned [`axml_uxml::Label`]s so the `f(·)` values ψ
//!   materializes per copied node are cheap to clone and id-fast to
//!   compare.
//!
//! The naive recompute-everything fixpoint survives as
//! [`eval_datalog_naive`], deliberately untouched: it is the
//! independent reference the `tests/seminaive.rs` property tests (and
//! the `datalog_seminaive` benchmark) compare against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datalog;
pub mod datalog_parse;
pub mod encode;
pub mod ivm;
pub mod krel;
pub mod ra;
pub mod shred;

pub use datalog::{
    eval_datalog, eval_datalog_idb, eval_datalog_idb_ctx, eval_datalog_idb_resume,
    eval_datalog_naive, Program, Rule,
};
pub use datalog_parse::parse_program;
pub use encode::{encode_database, encode_relation, ra_to_uxquery};
pub use ivm::{
    added_facts_relation, prune_retired, tuple_mentions, AddedFact, OwnedDelta, ResultCache,
    ShadowDoc,
};
pub use krel::{KRelation, RelIndex, RelValue, Schema, Tuple};
pub use ra::{eval_ra, Database, RaExpr};
pub use shred::{
    decode, eval_path_via_shredding, eval_path_via_shredding_ctx,
    eval_path_via_shredding_deadline_ctx, eval_path_via_shredding_limits_ctx,
    eval_steps_via_shredding, garbage_collect, path_to_datalog, shred, shredded_eval,
    shredded_eval_path, shredded_eval_path_ctx, shredded_eval_path_deadline_ctx,
    shredded_eval_path_limits_ctx, xpath_to_datalog,
};
