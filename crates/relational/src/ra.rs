//! The positive relational algebra RA⁺ over K-relations, with the
//! annotation semantics of Green–Karvounarakis–Tannen \[16\]:
//!
//! - **union** adds annotations;
//! - **projection** sums the annotations of tuples that collapse;
//! - **join / product** multiplies annotations;
//! - **selection** keeps the annotation or drops the tuple.
//!
//! This is the baseline semantics Prop 1 and Prop 4 compare against,
//! and the algebra in which Fig 5's `Q = π_AC(π_AB(R) ⋈ (π_BC(R) ∪ S))`
//! is evaluated.

use crate::krel::{KRelation, RelValue, Schema};
use axml_semiring::Semiring;
use std::collections::BTreeMap;
use std::fmt;

/// A positive relational-algebra expression over named relations.
#[derive(Clone, Debug)]
pub enum RaExpr {
    /// A base relation by name.
    Rel(String),
    /// `σ_{attr = value}`.
    SelectConst {
        /// Input expression.
        input: Box<RaExpr>,
        /// Attribute name.
        attr: String,
        /// Constant compared against.
        value: RelValue,
    },
    /// `σ_{a1 = a2}`.
    SelectEq {
        /// Input expression.
        input: Box<RaExpr>,
        /// First attribute.
        a1: String,
        /// Second attribute.
        a2: String,
    },
    /// `π_{attrs}`.
    Project {
        /// Input expression.
        input: Box<RaExpr>,
        /// Attributes to keep (in output order).
        attrs: Vec<String>,
    },
    /// Natural join `l ⋈ r` (on all common attributes; a cartesian
    /// product when none are shared).
    Join(Box<RaExpr>, Box<RaExpr>),
    /// `l ∪ r` (same schema).
    Union(Box<RaExpr>, Box<RaExpr>),
    /// `ρ_{from → to}`.
    Rename {
        /// Input expression.
        input: Box<RaExpr>,
        /// Attribute to rename.
        from: String,
        /// New name.
        to: String,
    },
}

impl RaExpr {
    /// Base relation.
    pub fn rel(name: &str) -> RaExpr {
        RaExpr::Rel(name.into())
    }

    /// `π_{attrs}(self)`.
    pub fn project<const N: usize>(self, attrs: [&str; N]) -> RaExpr {
        RaExpr::Project {
            input: Box::new(self),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Natural join.
    pub fn join(self, other: RaExpr) -> RaExpr {
        RaExpr::Join(Box::new(self), Box::new(other))
    }

    /// Union.
    pub fn union(self, other: RaExpr) -> RaExpr {
        RaExpr::Union(Box::new(self), Box::new(other))
    }

    /// `σ_{attr = label}`.
    pub fn select_label(self, attr: &str, label: &str) -> RaExpr {
        RaExpr::SelectConst {
            input: Box::new(self),
            attr: attr.into(),
            value: RelValue::label(label),
        }
    }

    /// `σ_{a1 = a2}`.
    pub fn select_eq(self, a1: &str, a2: &str) -> RaExpr {
        RaExpr::SelectEq {
            input: Box::new(self),
            a1: a1.into(),
            a2: a2.into(),
        }
    }

    /// `ρ_{from → to}`.
    pub fn rename(self, from: &str, to: &str) -> RaExpr {
        RaExpr::Rename {
            input: Box::new(self),
            from: from.into(),
            to: to.into(),
        }
    }
}

/// A database: named K-relations.
#[derive(Clone, Debug, Default)]
pub struct Database<K: Semiring> {
    relations: BTreeMap<String, KRelation<K>>,
}

impl<K: Semiring> Database<K> {
    /// Empty database.
    pub fn new() -> Self {
        Database {
            relations: BTreeMap::new(),
        }
    }

    /// Add (or replace) a relation.
    pub fn with(mut self, name: &str, rel: KRelation<K>) -> Self {
        self.relations.insert(name.into(), rel);
        self
    }

    /// Insert a relation.
    pub fn insert(&mut self, name: &str, rel: KRelation<K>) {
        self.relations.insert(name.into(), rel);
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Option<&KRelation<K>> {
        self.relations.get(name)
    }

    /// Look up a relation for in-place mutation (the churn path
    /// maintains its edge relation inside the database it solves over,
    /// so evaluation never clones it).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut KRelation<K>> {
        self.relations.get_mut(name)
    }

    /// Iterate relations by name.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &KRelation<K>)> + '_ {
        self.relations.iter()
    }
}

/// An RA⁺ evaluation error (unknown relation / attribute, schema
/// mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for RaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RA+ error: {}", self.msg)
    }
}

impl std::error::Error for RaError {}

fn err<T>(msg: impl Into<String>) -> Result<T, RaError> {
    Err(RaError { msg: msg.into() })
}

/// Evaluate an RA⁺ expression over a database.
pub fn eval_ra<K: Semiring>(e: &RaExpr, db: &Database<K>) -> Result<KRelation<K>, RaError> {
    match e {
        RaExpr::Rel(name) => db.get(name).cloned().ok_or_else(|| RaError {
            msg: format!("unknown relation {name:?}"),
        }),
        RaExpr::SelectConst { input, attr, value } => {
            let r = eval_ra(input, db)?;
            let Some(i) = r.schema().index_of(attr) else {
                return err(format!("unknown attribute {attr:?} in selection"));
            };
            let mut out = KRelation::new(r.schema().clone());
            for (t, k) in r.iter() {
                if t[i] == *value {
                    out.insert(t.clone(), k.clone());
                }
            }
            Ok(out)
        }
        RaExpr::SelectEq { input, a1, a2 } => {
            let r = eval_ra(input, db)?;
            let (Some(i), Some(j)) = (r.schema().index_of(a1), r.schema().index_of(a2)) else {
                return err(format!("unknown attribute in σ_{{{a1}={a2}}}"));
            };
            let mut out = KRelation::new(r.schema().clone());
            for (t, k) in r.iter() {
                if t[i] == t[j] {
                    out.insert(t.clone(), k.clone());
                }
            }
            Ok(out)
        }
        RaExpr::Project { input, attrs } => {
            let r = eval_ra(input, db)?;
            let mut idxs = Vec::with_capacity(attrs.len());
            for a in attrs {
                match r.schema().index_of(a) {
                    Some(i) => idxs.push(i),
                    None => return err(format!("unknown attribute {a:?} in projection")),
                }
            }
            let mut out = KRelation::new(Schema::new(attrs.clone()));
            for (t, k) in r.iter() {
                out.insert(KRelation::<K>::project_tuple(t, &idxs), k.clone());
            }
            Ok(out)
        }
        RaExpr::Join(l, r) => {
            let rl = eval_ra(l, db)?;
            let rr = eval_ra(r, db)?;
            Ok(natural_join(&rl, &rr))
        }
        RaExpr::Union(l, r) => {
            let mut rl = eval_ra(l, db)?;
            let rr = eval_ra(r, db)?;
            if rl.schema() != rr.schema() {
                return err(format!(
                    "union of incompatible schemas {:?} and {:?}",
                    rl.schema().attrs(),
                    rr.schema().attrs()
                ));
            }
            rl.union_with(rr);
            Ok(rl)
        }
        RaExpr::Rename { input, from, to } => {
            let r = eval_ra(input, db)?;
            let Some(_) = r.schema().index_of(from) else {
                return err(format!("unknown attribute {from:?} in rename"));
            };
            let attrs: Vec<String> = r
                .schema()
                .attrs()
                .iter()
                .map(|a| if a == from { to.clone() } else { a.clone() })
                .collect();
            let mut out = KRelation::new(Schema::new(attrs));
            for (t, k) in r.iter() {
                out.insert(t.clone(), k.clone());
            }
            Ok(out)
        }
    }
}

/// Natural join with annotation product. Output schema: left attrs,
/// then right-only attrs.
pub fn natural_join<K: Semiring>(l: &KRelation<K>, r: &KRelation<K>) -> KRelation<K> {
    let common = l.schema().common(r.schema());
    let l_common: Vec<usize> = common
        .iter()
        .map(|a| l.schema().index_of(a).expect("common attr"))
        .collect();
    let r_common: Vec<usize> = common
        .iter()
        .map(|a| r.schema().index_of(a).expect("common attr"))
        .collect();
    let r_only: Vec<usize> = r
        .schema()
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| !common.contains(a))
        .map(|(i, _)| i)
        .collect();

    let mut attrs: Vec<String> = l.schema().attrs().to_vec();
    for &i in &r_only {
        attrs.push(r.schema().attrs()[i].clone());
    }
    let mut out = KRelation::new(Schema::new(attrs));

    // Hash-index the right side on the common-attr key (shared with
    // the Datalog evaluator's join layer; nested scans would be fine
    // for figure-sized data, but the index keeps benches honest).
    let index = r.index_on(&r_common);
    for (tl, kl) in l.iter() {
        let key = KRelation::<K>::project_tuple(tl, &l_common);
        for (tr, kr) in index.probe(&key) {
            let mut tuple = tl.clone();
            for &i in &r_only {
                tuple.push(tr[i].clone());
            }
            out.insert(tuple, kl.times(kr));
        }
    }
    out
}

/// The Fig 5 query `Q = π_AC(π_AB(R) ⋈ (π_BC(R) ∪ S))` as an [`RaExpr`]
/// (exported for reuse in figures, benches and Prop-1 tests).
pub fn fig5_query() -> RaExpr {
    RaExpr::rel("R")
        .project(["A", "B"])
        .join(RaExpr::rel("R").project(["B", "C"]).union(RaExpr::rel("S")))
        .project(["A", "C"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_semiring::{Nat, NatPoly};

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    /// The Fig 5 instance.
    pub(crate) fn fig5_db() -> Database<NatPoly> {
        let r = KRelation::from_label_rows(
            Schema::new(["A", "B", "C"]),
            [
                (vec!["a", "b", "c"], np("x1")),
                (vec!["d", "b", "e"], np("x2")),
                (vec!["f", "g", "e"], np("x3")),
            ],
        );
        let s = KRelation::from_label_rows(
            Schema::new(["B", "C"]),
            [(vec!["b", "c"], np("x4")), (vec!["g", "c"], np("x5"))],
        );
        Database::new().with("R", r).with("S", s)
    }

    #[test]
    fn fig5_annotations_match_paper() {
        let out = eval_ra(&fig5_query(), &fig5_db()).unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(out.get_labels(&["a", "c"]), np("x1^2 + x1*x4"));
        assert_eq!(out.get_labels(&["a", "e"]), np("x1*x2"));
        assert_eq!(out.get_labels(&["d", "c"]), np("x1*x2 + x2*x4"));
        assert_eq!(out.get_labels(&["d", "e"]), np("x2^2"));
        assert_eq!(out.get_labels(&["f", "c"]), np("x3*x5"));
        assert_eq!(out.get_labels(&["f", "e"]), np("x3^2"));
    }

    #[test]
    fn fig5_under_bag_semantics() {
        // Evaluate the polynomials at x1..x5 = 1 ⇔ run directly in ℕ.
        let db_nat = Database::new()
            .with(
                "R",
                KRelation::from_label_rows(
                    Schema::new(["A", "B", "C"]),
                    [
                        (vec!["a", "b", "c"], Nat(1)),
                        (vec!["d", "b", "e"], Nat(1)),
                        (vec!["f", "g", "e"], Nat(1)),
                    ],
                ),
            )
            .with(
                "S",
                KRelation::from_label_rows(
                    Schema::new(["B", "C"]),
                    [(vec!["b", "c"], Nat(1)), (vec!["g", "c"], Nat(1))],
                ),
            );
        let out = eval_ra(&fig5_query(), &db_nat).unwrap();
        assert_eq!(out.get_labels(&["a", "c"]), Nat(2)); // x1² + x1x4 at 1
        assert_eq!(out.get_labels(&["f", "e"]), Nat(1));
    }

    #[test]
    fn selection_variants() {
        let db = fig5_db();
        let by_const = eval_ra(&RaExpr::rel("R").select_label("B", "b"), &db).unwrap();
        assert_eq!(by_const.len(), 2);
        let eq = eval_ra(&RaExpr::rel("R").rename("A", "X").select_eq("X", "X"), &db).unwrap();
        assert_eq!(eq.len(), 3);
    }

    #[test]
    fn rename_changes_schema() {
        let db = fig5_db();
        let out = eval_ra(&RaExpr::rel("S").rename("B", "X"), &db).unwrap();
        assert_eq!(out.schema().attrs(), ["X", "C"]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn join_without_common_attrs_is_product() {
        let db = fig5_db();
        let prod = eval_ra(
            &RaExpr::rel("R")
                .project(["A"])
                .join(RaExpr::rel("S").project(["C"]).rename("C", "C2")),
            &db,
        )
        .unwrap();
        // 3 A-values × 1 distinct C-value (c+c collapses? no: S C values
        // are both c → the projection merges them: x4 + x5)
        assert_eq!(prod.len(), 3);
        assert_eq!(prod.get_labels(&["a", "c"]), np("x1*x4 + x1*x5"));
    }

    #[test]
    fn union_requires_same_schema() {
        let db = fig5_db();
        let e = RaExpr::rel("R").union(RaExpr::rel("S"));
        assert!(eval_ra(&e, &db).is_err());
    }

    #[test]
    fn unknown_names_error() {
        let db = fig5_db();
        assert!(eval_ra(&RaExpr::rel("Z"), &db).is_err());
        assert!(eval_ra(&RaExpr::rel("R").project(["Z"]), &db).is_err());
        assert!(eval_ra(&RaExpr::rel("R").select_label("Z", "a"), &db).is_err());
    }

    #[test]
    fn projection_merges_annotations() {
        let db = fig5_db();
        let out = eval_ra(&RaExpr::rel("S").project(["C"]), &db).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.get_labels(&["c"]), np("x4 + x5"));
    }
}
