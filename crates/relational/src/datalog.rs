//! Positive Datalog over K-relations, extended with Skolem functions in
//! rule heads (§7).
//!
//! Facts carry semiring annotations. The annotation of a derived fact
//! under one rule and one substitution is the *product* of the body
//! facts' annotations; alternatives (different rules or substitutions)
//! *add*. The iterate `Iₙ` therefore sums the annotations of all
//! derivation trees of depth ≤ n, and on tree-shaped data (like the §7
//! edge encoding) it stabilizes after at most `depth` iterations even
//! for ℕ\[X\]; a configurable iteration cap guards against
//! non-converging inputs (cyclic data with a non-idempotent semiring).
//!
//! Two evaluators compute that iterate:
//!
//! - [`eval_datalog`] — **semi-naive**: per-predicate delta relations
//!   and hash-indexed joins (see the crate-level "Performance"
//!   section). Each round derives only the annotations of derivation
//!   trees of the *new* depth, partitioned exactly (by the first body
//!   position of maximal depth) so nothing is double-counted in
//!   non-idempotent semirings; deltas absorbed by the accumulated
//!   iterate are pruned, which is what terminates recursion over
//!   cyclic data in idempotent semirings.
//! - [`eval_datalog_naive`] — the naïve fixpoint kept verbatim as an
//!   independent reference: every IDB relation is recomputed from the
//!   previous iterate until nothing changes. Property tests
//!   (`tests/seminaive.rs`) check the two agree on random programs.
//!
//! Both run the same upfront validation (the private `compile` pass), so malformed
//! programs (unsafe heads, Skolem terms in bodies, EDB/IDB overlap,
//! arity mismatches, unknown predicates) fail identically on either
//! path.

use crate::krel::{KRelation, RelIndex, RelValue, Schema, Tuple};
use crate::ra::Database;
use axml_semiring::Semiring;
use axml_uxml::Label;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A term in a rule: variable, constant, or Skolem application.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Term {
    /// A variable.
    Var(String),
    /// A constant value.
    Const(RelValue),
    /// A Skolem function applied to terms (head positions only).
    Skolem(String, Vec<Term>),
}

/// Variable term.
pub fn v(name: &str) -> Term {
    Term::Var(name.into())
}

/// Label-constant term.
pub fn lbl(name: &str) -> Term {
    Term::Const(RelValue::label(name))
}

/// Node-id constant term.
pub fn node(n: u64) -> Term {
    Term::Const(RelValue::Node(n))
}

/// Skolem application term.
pub fn sk<I: IntoIterator<Item = Term>>(f: &str, args: I) -> Term {
    Term::Skolem(f.into(), args.into_iter().collect())
}

/// An atom `P(t₁, …, tₙ)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

/// Build an atom.
pub fn atom<I: IntoIterator<Item = Term>>(pred: &str, args: I) -> Atom {
    Atom {
        pred: pred.into(),
        args: args.into_iter().collect(),
    }
}

/// A rule `head :- body₁, …, bodyₙ` (positive bodies only).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// The head atom (may contain Skolem terms).
    pub head: Atom,
    /// The body atoms (no Skolem terms).
    pub body: Vec<Atom>,
}

impl Rule {
    /// Build a rule.
    pub fn new<I: IntoIterator<Item = Atom>>(head: Atom, body: I) -> Self {
        Rule {
            head,
            body: body.into_iter().collect(),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_atom(&self.head))?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            let mut first = true;
            for a in &self.body {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{}", fmt_atom(a))?;
            }
        }
        write!(f, ".")
    }
}

fn fmt_atom(a: &Atom) -> String {
    let args: Vec<String> = a.args.iter().map(fmt_term).collect();
    format!("{}({})", a.pred, args.join(","))
}

fn fmt_term(t: &Term) -> String {
    match t {
        Term::Var(x) => x.clone(),
        Term::Const(c) => c.to_string(),
        Term::Skolem(f, args) => {
            let inner: Vec<String> = args.iter().map(fmt_term).collect();
            format!("{f}({})", inner.join(","))
        }
    }
}

/// A Datalog program: rules plus the declared arity of each IDB
/// predicate (needed to create empty relations).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Build from rules.
    pub fn new<I: IntoIterator<Item = Rule>>(rules: I) -> Self {
        Program {
            rules: rules.into_iter().collect(),
        }
    }

    /// IDB predicate names (those appearing in heads) with arities.
    pub fn idb_preds(&self) -> BTreeMap<String, usize> {
        self.rules
            .iter()
            .map(|r| (r.head.pred.clone(), r.head.args.len()))
            .collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Evaluation error (non-convergence, malformed rules, or an exceeded
/// wall-clock deadline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogError {
    /// Description.
    pub msg: String,
    /// `true` when the error is a caller-imposed resource limit
    /// tripping at a fixpoint round boundary (see
    /// [`eval_datalog_idb_limits_ctx`]), not a Datalog-level
    /// failure — the facade maps it to its typed budget error.
    pub budget: bool,
    /// For budget errors, `true` when the limit was the memory budget
    /// rather than the wall-clock deadline (the facade maps the two
    /// to different resource kinds).
    pub memory: bool,
}

impl DatalogError {
    /// A Datalog-level failure.
    pub fn new(msg: impl Into<String>) -> Self {
        DatalogError {
            msg: msg.into(),
            budget: false,
            memory: false,
        }
    }

    /// A wall-clock deadline trip.
    pub fn deadline() -> Self {
        DatalogError {
            msg: "wall-clock deadline exceeded during the fixpoint".into(),
            budget: true,
            memory: false,
        }
    }

    /// A memory budget trip.
    pub fn memory() -> Self {
        DatalogError {
            msg: "memory budget exceeded during the fixpoint".into(),
            budget: true,
            memory: true,
        }
    }
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "datalog error: {}", self.msg)
    }
}

impl std::error::Error for DatalogError {}

fn err<T>(msg: impl Into<String>) -> Result<T, DatalogError> {
    Err(DatalogError::new(msg))
}

/// Default iteration cap (far above any tree depth in this workspace).
pub const DEFAULT_MAX_ITERS: usize = 10_000;

// ---------------------------------------------------------------------
// Compilation: resolve predicates, number variables, split every body
// atom into probe-key columns / fresh bindings / equality checks.
// ---------------------------------------------------------------------

/// A resolved predicate: index into the EDB name table or the IDB
/// iterate vectors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Pred {
    Edb(usize),
    Idb(usize),
}

/// One component of an atom's probe key (a column whose value is known
/// before the atom is joined).
#[derive(Clone, Debug)]
enum KeyPart {
    Const(RelValue),
    Slot(usize),
}

/// A within-atom equality check: the column must equal a slot bound by
/// an *earlier column of the same atom* (repeated variables).
#[derive(Clone, Debug)]
struct SlotCheck {
    col: usize,
    slot: usize,
}

/// A body atom, join-ready.
#[derive(Clone, Debug)]
struct CAtom {
    pred: Pred,
    /// Columns with values known before this atom is reached, and how
    /// to produce them. Probed through a [`RelIndex`] on `key_cols`;
    /// empty = full scan.
    key_cols: Vec<usize>,
    key_parts: Vec<KeyPart>,
    /// `(column, slot)` first occurrences of variables: bound per row.
    binds: Vec<(usize, usize)>,
    /// Repeated variables within this atom.
    checks: Vec<SlotCheck>,
}

/// A head position: how to build the output value from the slots.
#[derive(Clone, Debug)]
enum HeadInstr {
    Const(RelValue),
    Slot(usize),
    Skolem(Label, Vec<HeadInstr>),
}

#[derive(Clone, Debug)]
struct CRule {
    head_pred: usize,
    head: Vec<HeadInstr>,
    atoms: Vec<CAtom>,
    /// Positions in `atoms` that read an IDB predicate.
    idb_positions: Vec<usize>,
    n_slots: usize,
}

/// A validated, join-ready program.
struct Compiled {
    idb_names: Vec<String>,
    idb_arities: Vec<usize>,
    rules: Vec<CRule>,
    /// Per IDB predicate: does any semi-naive variant read its
    /// *previous* iterate? Only predicates at a non-final IDB position
    /// of a multi-IDB body do; for linear programs (at most one IDB
    /// atom per body — every ψ output) this is all-false and the
    /// evaluator never copies an iterate.
    needs_prev: Vec<bool>,
    /// Per IDB predicate: does it occur in any rule body? Output-only
    /// predicates (ψ's `E2`) never have their delta re-read, so the
    /// delta is *moved* into the iterate instead of cloned.
    idb_in_body: Vec<bool>,
}

/// Validate and compile `prog` against the EDB's schemas. All rule
/// malformations are reported here, before any iteration runs, so the
/// semi-naive and naive evaluators fail identically.
fn compile<K: Semiring>(prog: &Program, edb: &Database<K>) -> Result<Compiled, DatalogError> {
    let edb_names: Vec<&String> = edb.iter().map(|(n, _)| n).collect();
    let edb_index: HashMap<&str, usize> = edb_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    // IDB predicates, with arity consistency across heads.
    let mut idb_names: Vec<String> = Vec::new();
    let mut idb_arities: Vec<usize> = Vec::new();
    let mut idb_index: HashMap<String, usize> = HashMap::new();
    for rule in &prog.rules {
        let pred = &rule.head.pred;
        if edb_index.contains_key(pred.as_str()) {
            return err(format!("predicate {pred:?} is both EDB and IDB"));
        }
        match idb_index.get(pred.as_str()) {
            Some(&i) => {
                if idb_arities[i] != rule.head.args.len() {
                    return err(format!("arity mismatch on {pred:?}"));
                }
            }
            None => {
                idb_index.insert(pred.clone(), idb_names.len());
                idb_names.push(pred.clone());
                idb_arities.push(rule.head.args.len());
            }
        }
    }

    let mut rules = Vec::with_capacity(prog.rules.len());
    for rule in &prog.rules {
        let mut slots: HashMap<&str, usize> = HashMap::new();
        let mut n_slots = 0usize;
        let mut atoms = Vec::with_capacity(rule.body.len());
        let mut idb_positions = Vec::new();
        for (pos, batom) in rule.body.iter().enumerate() {
            let (pred, arity) = match idb_index.get(batom.pred.as_str()) {
                Some(&i) => (Pred::Idb(i), idb_arities[i]),
                None => match edb_index.get(batom.pred.as_str()) {
                    Some(&i) => (
                        Pred::Edb(i),
                        edb.get(edb_names[i]).expect("edb name").schema().arity(),
                    ),
                    None => return err(format!("unknown predicate {:?}", batom.pred)),
                },
            };
            if batom.args.len() != arity {
                return err(format!("arity mismatch on {:?}", batom.pred));
            }
            if matches!(pred, Pred::Idb(_)) {
                idb_positions.push(pos);
            }
            let mut ca = CAtom {
                pred,
                key_cols: Vec::new(),
                key_parts: Vec::new(),
                binds: Vec::new(),
                checks: Vec::new(),
            };
            let mut bound_here: Vec<&str> = Vec::new();
            for (col, term) in batom.args.iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        ca.key_cols.push(col);
                        ca.key_parts.push(KeyPart::Const(c.clone()));
                    }
                    Term::Var(x) => match slots.get(x.as_str()) {
                        Some(&s) if !bound_here.contains(&x.as_str()) => {
                            // bound by an earlier atom: part of the key
                            ca.key_cols.push(col);
                            ca.key_parts.push(KeyPart::Slot(s));
                        }
                        Some(&s) => ca.checks.push(SlotCheck { col, slot: s }),
                        None => {
                            let s = n_slots;
                            n_slots += 1;
                            slots.insert(x.as_str(), s);
                            bound_here.push(x.as_str());
                            ca.binds.push((col, s));
                        }
                    },
                    Term::Skolem(..) => return err("Skolem terms may appear only in rule heads"),
                }
            }
            atoms.push(ca);
        }
        let head = rule
            .head
            .args
            .iter()
            .map(|t| compile_head_term(t, &slots))
            .collect::<Result<Vec<_>, _>>()?;
        rules.push(CRule {
            head_pred: idb_index[rule.head.pred.as_str()],
            head,
            atoms,
            idb_positions,
            n_slots,
        });
    }
    let mut needs_prev = vec![false; idb_names.len()];
    let mut idb_in_body = vec![false; idb_names.len()];
    for rule in &rules {
        if rule.idb_positions.len() >= 2 {
            for &pos in &rule.idb_positions[..rule.idb_positions.len() - 1] {
                if let Pred::Idb(i) = rule.atoms[pos].pred {
                    needs_prev[i] = true;
                }
            }
        }
        for atom in &rule.atoms {
            if let Pred::Idb(i) = atom.pred {
                idb_in_body[i] = true;
            }
        }
    }
    Ok(Compiled {
        idb_names,
        idb_arities,
        rules,
        needs_prev,
        idb_in_body,
    })
}

fn compile_head_term(t: &Term, slots: &HashMap<&str, usize>) -> Result<HeadInstr, DatalogError> {
    match t {
        Term::Const(c) => Ok(HeadInstr::Const(c.clone())),
        Term::Var(x) => match slots.get(x.as_str()) {
            Some(&s) => Ok(HeadInstr::Slot(s)),
            None => err(format!(
                "unsafe rule: head variable {x:?} not bound by the body"
            )),
        },
        Term::Skolem(f, args) => {
            let inner = args
                .iter()
                .map(|a| compile_head_term(a, slots))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(HeadInstr::Skolem(Label::new(f), inner))
        }
    }
}

// ---------------------------------------------------------------------
// Semi-naive evaluation.
// ---------------------------------------------------------------------

/// Which iterate a body atom reads during one join variant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Src {
    /// The fixed EDB relation.
    Edb,
    /// The current iterate `Iₙ`.
    Full,
    /// The previous iterate `Iₙ₋₁`.
    Prev,
    /// The last delta `Δₙ`.
    Delta,
}

/// The relations visible during one round, plus probe indexes. EDB
/// indexes are built once per evaluation (the EDB never changes) and
/// borrowed here; IDB indexes are built lazily per round. All
/// relations are immutable for the lifetime of the round.
struct Round<'a, K: Semiring> {
    edb_rels: &'a [&'a KRelation<K>],
    edb_indexes: &'a HashMap<(usize, Vec<usize>), RelIndex<'a, K>>,
    full: &'a [KRelation<K>],
    prev: &'a [KRelation<K>],
    delta: &'a [KRelation<K>],
    idb_indexes: HashMap<(Src, usize, Vec<usize>), RelIndex<'a, K>>,
}

impl<'a, K: Semiring> Round<'a, K> {
    fn rel(&self, src: Src, pred: Pred) -> &'a KRelation<K> {
        match (src, pred) {
            (Src::Edb, Pred::Edb(i)) => self.edb_rels[i],
            (Src::Full, Pred::Idb(i)) => &self.full[i],
            (Src::Prev, Pred::Idb(i)) => &self.prev[i],
            (Src::Delta, Pred::Idb(i)) => &self.delta[i],
            _ => unreachable!("EDB atoms always read Src::Edb"),
        }
    }

    /// Make sure every keyed IDB atom of the variant has its index
    /// built (indexes are shared across variants and rules within a
    /// round; EDB indexes are prebuilt).
    fn prepare(&mut self, rule: &CRule, srcs: &[Src]) {
        for (atom, &src) in rule.atoms.iter().zip(srcs) {
            let Pred::Idb(p) = atom.pred else { continue };
            if atom.key_cols.is_empty() {
                continue;
            }
            let key = (src, p, atom.key_cols.clone());
            if !self.idb_indexes.contains_key(&key) {
                let idx = self.rel(src, atom.pred).index_on(&atom.key_cols);
                self.idb_indexes.insert(key, idx);
            }
        }
    }

    /// Depth-first indexed join over the rule body, one source per
    /// atom, accumulating derived tuples (with annotation products)
    /// into `out` — the head predicate's *delta*. Contributions
    /// already absorbed by the accumulated iterate
    /// (`I[t] + k = I[t]`) are pruned here, per derivation: sound
    /// because in every semiring of this workspace absorption of a
    /// sum and absorption of its parts coincide (zero-sum-free, and
    /// `+` restricted to absorbed elements is a join).
    /// [`Round::prepare`] must have run for this variant.
    /// `seed0`, when given, restricts the first atom's scan to the
    /// listed tuples — the probe-chunk hook the parallel round uses to
    /// split one variant's outer loop across workers (only full-scan
    /// first atoms are chunked; an indexed first atom probes as usual).
    fn join(
        &self,
        rule: &CRule,
        srcs: &[Src],
        seed0: Option<&[(&'a Tuple, &'a K)]>,
        out: &mut KRelation<K>,
    ) {
        // Resolve each atom's index once, not per probe.
        let indexes: Vec<Option<&RelIndex<'a, K>>> = rule
            .atoms
            .iter()
            .zip(srcs)
            .map(|(atom, &src)| {
                if atom.key_cols.is_empty() {
                    return None;
                }
                Some(match atom.pred {
                    Pred::Edb(i) => &self.edb_indexes[&(i, atom.key_cols.clone())],
                    Pred::Idb(i) => &self.idb_indexes[&(src, i, atom.key_cols.clone())],
                })
            })
            .collect();
        let mut slots: Vec<Option<RelValue>> = vec![None; rule.n_slots];
        self.join_from(rule, srcs, &indexes, seed0, 0, &mut slots, K::one(), out);
    }

    #[allow(clippy::too_many_arguments)] // internal recursion, all state is positional
    fn join_from(
        &self,
        rule: &CRule,
        srcs: &[Src],
        indexes: &[Option<&RelIndex<'a, K>>],
        seed0: Option<&[(&'a Tuple, &'a K)]>,
        i: usize,
        slots: &mut Vec<Option<RelValue>>,
        ann: K,
        out: &mut KRelation<K>,
    ) {
        if i == rule.atoms.len() {
            let tuple: Tuple = rule.head.iter().map(|h| ground(h, slots)).collect();
            let keep = match self.full[rule.head_pred].rows().get_ref(&tuple) {
                None => true,
                Some(cur) => cur.plus(&ann) != *cur,
            };
            if keep {
                out.insert(tuple, ann);
            }
            return;
        }
        let atom = &rule.atoms[i];
        let mut step = |tuple: &Tuple, k: &K, slots: &mut Vec<Option<RelValue>>| {
            for &(col, slot) in &atom.binds {
                slots[slot] = Some(tuple[col].clone());
            }
            let ok = atom
                .checks
                .iter()
                .all(|c| slots[c.slot].as_ref() == Some(&tuple[c.col]));
            if ok {
                let next_ann = if k.is_one() {
                    ann.clone()
                } else {
                    ann.times(k)
                };
                self.join_from(rule, srcs, indexes, seed0, i + 1, slots, next_ann, out);
            }
            for &(_, slot) in &atom.binds {
                slots[slot] = None;
            }
        };
        if i == 0 {
            if let Some(seeds) = seed0 {
                for &(tuple, k) in seeds {
                    step(tuple, k, slots);
                }
                return;
            }
        }
        match indexes[i] {
            None => {
                for (tuple, k) in self.rel(srcs[i], atom.pred).iter() {
                    step(tuple, k, slots);
                }
            }
            Some(idx) => {
                let key: Vec<RelValue> = atom
                    .key_parts
                    .iter()
                    .map(|p| match p {
                        KeyPart::Const(c) => c.clone(),
                        KeyPart::Slot(s) => slots[*s].clone().expect("key slot bound"),
                    })
                    .collect();
                for &(tuple, k) in idx.probe(&key) {
                    step(tuple, k, slots);
                }
            }
        }
    }
}

fn ground(h: &HeadInstr, slots: &[Option<RelValue>]) -> RelValue {
    match h {
        HeadInstr::Const(c) => c.clone(),
        HeadInstr::Slot(s) => slots[*s].clone().expect("head slot bound (checked)"),
        HeadInstr::Skolem(f, args) => {
            RelValue::Skolem(*f, args.iter().map(|a| ground(a, slots)).collect())
        }
    }
}

/// Positional schema `c0, c1, …` for IDB relations.
fn anon_schema(arity: usize) -> Schema {
    Schema::new((0..arity).map(|i| format!("c{i}")))
}

/// Evaluate `prog` over the EDB `db` (semi-naive), returning EDB ∪ IDB.
pub fn eval_datalog<K: Semiring>(
    prog: &Program,
    db: &Database<K>,
) -> Result<Database<K>, DatalogError> {
    eval_datalog_capped(prog, db, DEFAULT_MAX_ITERS)
}

/// Like [`eval_datalog`], but return only the derived IDB relations
/// (callers that own the EDB skip a database copy).
pub fn eval_datalog_idb<K: Semiring>(
    prog: &Program,
    db: &Database<K>,
) -> Result<BTreeMap<String, KRelation<K>>, DatalogError> {
    eval_datalog_idb_capped(prog, db, DEFAULT_MAX_ITERS)
}

/// [`eval_datalog_idb`] with an execution context: with a
/// non-sequential context every semi-naive round fans its rule
/// variants — and, for variants whose first body atom is a full scan,
/// chunks of that scan — out over the context's pool, merging the
/// per-task deltas with [`KRelation::union_with`]. Identical iterates
/// and fixpoint (the absorption check reads the immutable previous
/// iterate, and delta merging is the same commutative `+`); `None` is
/// exactly the sequential evaluator.
pub fn eval_datalog_idb_ctx<K: Semiring>(
    prog: &Program,
    db: &Database<K>,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
) -> Result<BTreeMap<String, KRelation<K>>, DatalogError> {
    eval_datalog_idb_capped_ctx(prog, db, DEFAULT_MAX_ITERS, ctx)
}

/// Semi-naive evaluation with an explicit iteration cap.
///
/// Round n derives exactly the annotations of depth-n derivation
/// trees: every rule with m IDB body atoms is evaluated in m variants,
/// the j-th reading `Iₙ₋₂` before position j, `Δₙ₋₁` at j, and `Iₙ₋₁`
/// after it — a partition of the depth-n trees by their first
/// maximal-depth subderivation, so annotations are counted exactly
/// once. A delta entry whose addition would not change the iterate
/// (`I\[t\] + δ = I\[t\]`) is pruned; the fixpoint is reached when a
/// round's whole delta is pruned. In every semiring of this workspace
/// (all are zero-sum-free, and absorption distributes over `+`/`·`)
/// this computes the same iterate sequence and the same fixpoint as
/// [`eval_datalog_naive`].
pub fn eval_datalog_capped<K: Semiring>(
    prog: &Program,
    edb: &Database<K>,
    max_iters: usize,
) -> Result<Database<K>, DatalogError> {
    let idb = eval_datalog_idb_capped(prog, edb, max_iters)?;
    let mut out = edb.clone();
    for (p, r) in idb {
        out.insert(&p, r);
    }
    Ok(out)
}

/// [`eval_datalog_idb`] with an explicit iteration cap.
pub fn eval_datalog_idb_capped<K: Semiring>(
    prog: &Program,
    edb: &Database<K>,
    max_iters: usize,
) -> Result<BTreeMap<String, KRelation<K>>, DatalogError> {
    eval_datalog_idb_capped_ctx(prog, edb, max_iters, None)
}

/// A join variant's full scan is only worth chunking across workers
/// once the scanned relation reaches this many tuples per chunk.
const PAR_JOIN_MIN_TUPLES: usize = 64;

/// [`eval_datalog_idb_ctx`] with an explicit iteration cap.
pub fn eval_datalog_idb_capped_ctx<K: Semiring>(
    prog: &Program,
    edb: &Database<K>,
    max_iters: usize,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
) -> Result<BTreeMap<String, KRelation<K>>, DatalogError> {
    eval_datalog_idb_deadline_ctx(prog, edb, max_iters, ctx, None)
}

/// [`eval_datalog_idb_capped_ctx`] with a wall-clock deadline checked
/// at the top of every semi-naive round: a round that starts after
/// `deadline` has passed aborts the fixpoint with
/// [`DatalogError::deadline`] (rounds already running complete — the
/// check bounds the granularity of abandonment to one round).
pub fn eval_datalog_idb_deadline_ctx<K: Semiring>(
    prog: &Program,
    edb: &Database<K>,
    max_iters: usize,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
    deadline: Option<std::time::Instant>,
) -> Result<BTreeMap<String, KRelation<K>>, DatalogError> {
    eval_datalog_idb_limits_ctx(prog, edb, max_iters, ctx, deadline, None)
}

/// [`eval_datalog_idb_deadline_ctx`] with an optional memory budget
/// charged at the end of every semi-naive round with the round's
/// delta (one unit per derived tuple — the relational analog of a
/// logical tree node). A trip aborts the fixpoint with
/// [`DatalogError::memory`]; like the deadline, the granularity of
/// abandonment is one round.
pub fn eval_datalog_idb_limits_ctx<K: Semiring>(
    prog: &Program,
    edb: &Database<K>,
    max_iters: usize,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
    deadline: Option<std::time::Instant>,
    budget: Option<&axml_uxml::NodeBudget>,
) -> Result<BTreeMap<String, KRelation<K>>, DatalogError> {
    let compiled = compile(prog, edb)?;
    let n_idb = compiled.idb_names.len();
    // One schema per predicate for the whole run (Schema is Arc-shared;
    // rebuilding it would allocate column names every round).
    let schemas: Vec<Schema> = compiled
        .idb_arities
        .iter()
        .map(|&n| anon_schema(n))
        .collect();
    let empty = |schemas: &[Schema]| -> Vec<KRelation<K>> {
        schemas.iter().map(|s| KRelation::new(s.clone())).collect()
    };
    let mut full = empty(&schemas);
    let mut prev = empty(&schemas);
    // Invariant at the top of each round: `prev[p] == Iₙ₋₁[p]` for
    // every predicate with `needs_prev` — maintained lazily so linear
    // programs never copy an iterate.
    let mut prev_fresh = vec![true; n_idb];
    let mut delta = empty(&schemas);
    let edb_rels: Vec<&KRelation<K>> = edb.iter().map(|(_, r)| r).collect();

    // The EDB never changes: build each (relation, key-columns) probe
    // index exactly once for the whole evaluation.
    let mut edb_indexes: HashMap<(usize, Vec<usize>), RelIndex<'_, K>> = HashMap::new();
    for rule in &compiled.rules {
        for atom in &rule.atoms {
            if let Pred::Edb(i) = atom.pred {
                if !atom.key_cols.is_empty() {
                    edb_indexes
                        .entry((i, atom.key_cols.clone()))
                        .or_insert_with(|| edb_rels[i].index_on(&atom.key_cols));
                }
            }
        }
    }

    for iter in 0..max_iters {
        if let Some(d) = deadline {
            if std::time::Instant::now() >= d {
                return Err(DatalogError::deadline());
            }
        }
        // Derivations of the new depth, absorbed ones pruned at the
        // join (see [`Round::join`]): the next delta.
        let mut next_delta = empty(&schemas);
        {
            let mut round = Round {
                edb_rels: &edb_rels,
                edb_indexes: &edb_indexes,
                full: &full,
                prev: &prev,
                delta: &delta,
                idb_indexes: HashMap::new(),
            };
            // The round's work list: every (rule, source-vector)
            // variant that can fire. Round 0 fires only all-EDB bodies
            // (depth-1 derivations); later rounds fire one variant per
            // IDB position carrying the delta.
            let mut items: Vec<(usize, Vec<Src>)> = Vec::new();
            for (ri, rule) in compiled.rules.iter().enumerate() {
                if iter == 0 {
                    if rule.idb_positions.is_empty() {
                        items.push((ri, vec![Src::Edb; rule.atoms.len()]));
                    }
                } else {
                    for (vi, &dpos) in rule.idb_positions.iter().enumerate() {
                        let Pred::Idb(dp) = rule.atoms[dpos].pred else {
                            unreachable!("idb_positions index IDB atoms")
                        };
                        if round.delta[dp].is_empty() {
                            continue; // this variant cannot derive anything
                        }
                        let srcs: Vec<Src> = rule
                            .atoms
                            .iter()
                            .enumerate()
                            .map(|(pos, atom)| match atom.pred {
                                Pred::Edb(_) => Src::Edb,
                                Pred::Idb(_) if pos == dpos => Src::Delta,
                                Pred::Idb(_) if rule.idb_positions[..vi].contains(&pos) => {
                                    Src::Prev
                                }
                                Pred::Idb(_) => Src::Full,
                            })
                            .collect();
                        items.push((ri, srcs));
                    }
                }
            }
            // Build every index the work list needs up front, so the
            // round is immutable during the (possibly parallel) joins.
            for (ri, srcs) in &items {
                round.prepare(&compiled.rules[*ri], srcs);
            }
            let round = &round;
            match ctx.filter(|c| !c.is_sequential()) {
                None => {
                    for (ri, srcs) in &items {
                        let rule = &compiled.rules[*ri];
                        round.join(rule, srcs, None, &mut next_delta[rule.head_pred]);
                    }
                }
                Some(c) => {
                    // Fan out: one task per variant, and — when a
                    // variant's first atom is a full scan over a big
                    // relation — one task per probe chunk of that scan.
                    let degree = c.degree();
                    type Seeds<'r, K> = Option<Vec<(&'r Tuple, &'r K)>>;
                    let mut tasks: Vec<(usize, &[Src], Seeds<'_, K>)> = Vec::new();
                    for (ri, srcs) in &items {
                        let rule = &compiled.rules[*ri];
                        // Only rules whose first atom is a full scan
                        // can be probe-chunked (body-less fact rules
                        // and indexed first atoms run as one task).
                        if let Some(atom0) = rule.atoms.first().filter(|a| a.key_cols.is_empty()) {
                            let rel = round.rel(srcs[0], atom0.pred);
                            let want = (rel.len() / PAR_JOIN_MIN_TUPLES).min(degree);
                            if want >= 2 {
                                let tuples: Vec<(&Tuple, &K)> = rel.iter().collect();
                                let per = tuples.len().div_ceil(want);
                                for chunk in tuples.chunks(per) {
                                    tasks.push((*ri, srcs.as_slice(), Some(chunk.to_vec())));
                                }
                                continue;
                            }
                        }
                        tasks.push((*ri, srcs.as_slice(), None));
                    }
                    let partials: Vec<(usize, KRelation<K>)> =
                        c.pool.map_slice(&tasks, |_, (ri, srcs, seeds)| {
                            let rule = &compiled.rules[*ri];
                            let mut out = KRelation::new(schemas[rule.head_pred].clone());
                            round.join(rule, srcs, seeds.as_deref(), &mut out);
                            (rule.head_pred, out)
                        });
                    for (head, rel) in partials {
                        next_delta[head].union_with(rel);
                    }
                }
            }
        }
        if let Some(b) = budget {
            let derived: usize = next_delta.iter().map(|d| d.len()).sum();
            if b.charge(derived).is_err() {
                return Err(DatalogError::memory());
            }
        }
        let changed = next_delta.iter().any(|d| !d.is_empty());
        if !changed {
            return Ok(compiled
                .idb_names
                .iter()
                .cloned()
                .zip(full)
                .collect::<BTreeMap<_, _>>());
        }
        for p in 0..n_idb {
            if !next_delta[p].is_empty() {
                if compiled.needs_prev[p] {
                    prev[p] = full[p].clone();
                }
                if compiled.idb_in_body[p] {
                    for (t, k) in next_delta[p].iter() {
                        full[p].insert(t.clone(), k.clone());
                    }
                } else {
                    // Output-only predicate: no rule re-reads its
                    // delta, so hand the rows over instead of cloning.
                    let moved =
                        std::mem::replace(&mut next_delta[p], KRelation::new(schemas[p].clone()));
                    full[p].union_with(moved);
                }
                prev_fresh[p] = false;
            } else if compiled.needs_prev[p] && !prev_fresh[p] {
                // The iterate stabilized this round; catch `prev` up
                // once so later rounds read Iₙ₋₁ = Iₙ.
                prev[p] = full[p].clone();
                prev_fresh[p] = true;
            }
        }
        delta = next_delta;
    }
    err(format!(
        "no fixpoint after {max_iters} iterations (cyclic data with a non-idempotent semiring?)"
    ))
}

// ---------------------------------------------------------------------
// Naive reference evaluation (the original evaluator, kept verbatim
// for differential testing and the `datalog_seminaive` benchmark).
// ---------------------------------------------------------------------

/// Evaluate `prog` over the EDB `db` with the naïve fixpoint.
pub fn eval_datalog_naive<K: Semiring>(
    prog: &Program,
    db: &Database<K>,
) -> Result<Database<K>, DatalogError> {
    eval_datalog_naive_capped(prog, db, DEFAULT_MAX_ITERS)
}

/// Naïve evaluation with an explicit iteration cap: every IDB relation
/// is recomputed from the previous iterate (nested-scan joins, no
/// deltas) until nothing changes.
pub fn eval_datalog_naive_capped<K: Semiring>(
    prog: &Program,
    edb: &Database<K>,
    max_iters: usize,
) -> Result<Database<K>, DatalogError> {
    // Same validation as the semi-naive path (errors must agree).
    let _ = compile(prog, edb)?;
    let idb_arities = prog.idb_preds();

    // IDB iterate: start empty.
    let mut idb: BTreeMap<String, KRelation<K>> = idb_arities
        .iter()
        .map(|(p, &n)| (p.clone(), KRelation::new(anon_schema(n))))
        .collect();

    for _ in 0..max_iters {
        let mut next: BTreeMap<String, KRelation<K>> = idb_arities
            .iter()
            .map(|(p, &n)| (p.clone(), KRelation::new(anon_schema(n))))
            .collect();
        for rule in &prog.rules {
            apply_rule(
                rule,
                edb,
                &idb,
                next.get_mut(&rule.head.pred).expect("idb pred"),
            )?;
        }
        if next == idb {
            let mut out = edb.clone();
            for (p, r) in idb {
                out.insert(&p, r);
            }
            return Ok(out);
        }
        idb = next;
    }
    err(format!(
        "no fixpoint after {max_iters} iterations (cyclic data with a non-idempotent semiring?)"
    ))
}

type Subst = BTreeMap<String, RelValue>;

fn apply_rule<K: Semiring>(
    rule: &Rule,
    edb: &Database<K>,
    idb: &BTreeMap<String, KRelation<K>>,
    out: &mut KRelation<K>,
) -> Result<(), DatalogError> {
    let mut subst = Subst::new();
    search(rule, 0, edb, idb, &mut subst, K::one(), out)
}

/// Depth-first join over the body atoms.
fn search<K: Semiring>(
    rule: &Rule,
    i: usize,
    edb: &Database<K>,
    idb: &BTreeMap<String, KRelation<K>>,
    subst: &mut Subst,
    ann: K,
    out: &mut KRelation<K>,
) -> Result<(), DatalogError> {
    if i == rule.body.len() {
        let tuple: Result<Tuple, DatalogError> = rule
            .head
            .args
            .iter()
            .map(|t| ground_subst(t, subst))
            .collect();
        out.insert(tuple?, ann);
        return Ok(());
    }
    let body_atom = &rule.body[i];
    let rel = idb
        .get(&body_atom.pred)
        .or_else(|| edb.get(&body_atom.pred))
        .ok_or_else(|| DatalogError::new(format!("unknown predicate {:?}", body_atom.pred)))?;
    for (tuple, k) in rel.iter() {
        let mut bound: Vec<String> = Vec::new();
        let mut ok = true;
        for (term, value) in body_atom.args.iter().zip(tuple.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        ok = false;
                        break;
                    }
                }
                Term::Var(x) => match subst.get(x) {
                    Some(existing) => {
                        if existing != value {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(x.clone(), value.clone());
                        bound.push(x.clone());
                    }
                },
                Term::Skolem(..) => {
                    return err("Skolem terms may appear only in rule heads");
                }
            }
        }
        if ok {
            search(rule, i + 1, edb, idb, subst, ann.times(k), out)?;
        }
        for x in bound {
            subst.remove(&x);
        }
    }
    Ok(())
}

fn ground_subst(t: &Term, subst: &Subst) -> Result<RelValue, DatalogError> {
    match t {
        Term::Const(c) => Ok(c.clone()),
        Term::Var(x) => subst.get(x).cloned().ok_or_else(|| {
            DatalogError::new(format!(
                "unsafe rule: head variable {x:?} not bound by the body"
            ))
        }),
        Term::Skolem(f, args) => {
            let inner: Result<Vec<RelValue>, DatalogError> =
                args.iter().map(|a| ground_subst(a, subst)).collect();
            Ok(RelValue::Skolem(Label::new(f), inner?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_semiring::{Nat, NatPoly, PosBool, Tropical};

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    fn edge_db() -> Database<NatPoly> {
        // chain 1 →y1 2 →y2 3, annotated edges
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(vec![RelValue::Node(1), RelValue::Node(2)], np("y1"));
        e.insert(vec![RelValue::Node(2), RelValue::Node(3)], np("y2"));
        Database::new().with("E", e)
    }

    fn tc_prog() -> Program {
        Program::new([
            Rule::new(atom("T", [v("x"), v("y")]), [atom("E", [v("x"), v("y")])]),
            Rule::new(
                atom("T", [v("x"), v("z")]),
                [atom("T", [v("x"), v("y")]), atom("E", [v("y"), v("z")])],
            ),
        ])
    }

    #[test]
    fn transitive_closure_annotations() {
        let out = eval_datalog(&tc_prog(), &edge_db()).unwrap();
        let t = out.get("T").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.get(&vec![RelValue::Node(1), RelValue::Node(3)]),
            np("y1*y2")
        );
    }

    #[test]
    fn seminaive_matches_naive_on_closure() {
        let a = eval_datalog(&tc_prog(), &edge_db()).unwrap();
        let b = eval_datalog_naive(&tc_prog(), &edge_db()).unwrap();
        assert_eq!(a.get("T"), b.get("T"));
    }

    #[test]
    fn an_expired_deadline_trips_at_the_first_round_boundary() {
        let past = std::time::Instant::now();
        let err = eval_datalog_idb_deadline_ctx::<NatPoly>(
            &tc_prog(),
            &edge_db(),
            DEFAULT_MAX_ITERS,
            None,
            Some(past),
        )
        .unwrap_err();
        assert!(err.budget, "{err:?}");
        assert!(err.msg.contains("deadline"), "{}", err.msg);
    }

    #[test]
    fn a_generous_deadline_changes_nothing() {
        let far = std::time::Instant::now() + std::time::Duration::from_secs(3600);
        let with = eval_datalog_idb_deadline_ctx::<NatPoly>(
            &tc_prog(),
            &edge_db(),
            DEFAULT_MAX_ITERS,
            None,
            Some(far),
        )
        .unwrap();
        let without = eval_datalog_idb(&tc_prog(), &edge_db()).unwrap();
        assert_eq!(with.get("T"), without.get("T"));
    }

    #[test]
    fn alternatives_add() {
        // two edges between the same nodes via different relations
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(vec![RelValue::Node(1), RelValue::Node(2)], np("p"));
        let mut f = KRelation::new(Schema::new(["src", "dst"]));
        f.insert(vec![RelValue::Node(1), RelValue::Node(2)], np("q"));
        let db = Database::new().with("E", e).with("F", f);
        let prog = Program::new([
            Rule::new(atom("T", [v("x"), v("y")]), [atom("E", [v("x"), v("y")])]),
            Rule::new(atom("T", [v("x"), v("y")]), [atom("F", [v("x"), v("y")])]),
        ]);
        let out = eval_datalog(&prog, &db).unwrap();
        assert_eq!(
            out.get("T")
                .unwrap()
                .get(&vec![RelValue::Node(1), RelValue::Node(2)]),
            np("p + q")
        );
    }

    #[test]
    fn skolem_heads_invent_values() {
        let prog = Program::new([Rule::new(
            atom("Out", [sk("f", [v("x")]), v("y")]),
            [atom("E", [v("x"), v("y")])],
        )]);
        let out = eval_datalog(&prog, &edge_db()).unwrap();
        let o = out.get("Out").unwrap();
        assert_eq!(
            o.get(&vec![
                RelValue::Skolem("f".into(), vec![RelValue::Node(1)]),
                RelValue::Node(2)
            ]),
            np("y1")
        );
    }

    #[test]
    fn skolem_in_body_rejected() {
        let prog = Program::new([Rule::new(
            atom("Out", [v("x")]),
            [atom("E", [sk("f", [v("x")]), v("x")])],
        )]);
        for eval in [eval_datalog::<NatPoly>, eval_datalog_naive::<NatPoly>] {
            let e = eval(&prog, &edge_db()).unwrap_err();
            assert!(e.msg.contains("only in rule heads"), "{e}");
        }
    }

    #[test]
    fn unsafe_rule_rejected() {
        let prog = Program::new([Rule::new(
            atom("Out", [v("zzz")]),
            [atom("E", [v("x"), v("y")])],
        )]);
        for eval in [eval_datalog::<NatPoly>, eval_datalog_naive::<NatPoly>] {
            let e = eval(&prog, &edge_db()).unwrap_err();
            assert!(e.msg.contains("unsafe"), "{e}");
        }
    }

    #[test]
    fn cyclic_data_converges_for_idempotent_semirings() {
        // cycle 1 → 2 → 1 in PosBool: closure converges (idempotence)
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(
            vec![RelValue::Node(1), RelValue::Node(2)],
            PosBool::var_named("dl_a"),
        );
        e.insert(
            vec![RelValue::Node(2), RelValue::Node(1)],
            PosBool::var_named("dl_b"),
        );
        let db = Database::new().with("E", e);
        let out = eval_datalog(&tc_prog(), &db).unwrap();
        assert_eq!(out.get("T").unwrap().len(), 4);
        let naive = eval_datalog_naive(&tc_prog(), &db).unwrap();
        assert_eq!(out.get("T"), naive.get("T"));
    }

    #[test]
    fn cyclic_data_converges_for_tropical() {
        // min-plus closure over a cycle: absorption prunes longer paths
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(
            vec![RelValue::Node(1), RelValue::Node(2)],
            Tropical::cost(3),
        );
        e.insert(
            vec![RelValue::Node(2), RelValue::Node(1)],
            Tropical::cost(4),
        );
        let db = Database::new().with("E", e);
        let out = eval_datalog(&tc_prog(), &db).unwrap();
        let t = out.get("T").unwrap();
        assert_eq!(
            t.get(&vec![RelValue::Node(1), RelValue::Node(1)]),
            Tropical::cost(7)
        );
        let naive = eval_datalog_naive(&tc_prog(), &db).unwrap();
        assert_eq!(out.get("T"), naive.get("T"));
    }

    #[test]
    fn cyclic_data_hits_cap_for_nat() {
        // cycle with ℕ annotations: derivation count diverges
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(vec![RelValue::Node(1), RelValue::Node(1)], Nat(2));
        let db = Database::new().with("E", e);
        let err = eval_datalog_capped(&tc_prog(), &db, 50).unwrap_err();
        assert!(err.msg.contains("fixpoint"), "{err}");
        let err2 = eval_datalog_naive_capped(&tc_prog(), &db, 50).unwrap_err();
        assert!(err2.msg.contains("fixpoint"), "{err2}");
    }

    #[test]
    fn edb_idb_overlap_rejected() {
        let prog = Program::new([Rule::new(
            atom("E", [v("x"), v("y")]),
            [atom("E", [v("x"), v("y")])],
        )]);
        for eval in [eval_datalog::<NatPoly>, eval_datalog_naive::<NatPoly>] {
            let e = eval(&prog, &edge_db()).unwrap_err();
            assert!(e.msg.contains("both EDB and IDB"), "{e}");
        }
    }

    #[test]
    fn idb_arity_mismatch_rejected() {
        let prog = Program::new([
            Rule::new(atom("T", [v("x"), v("y")]), [atom("E", [v("x"), v("y")])]),
            Rule::new(atom("T", [v("x")]), [atom("E", [v("x"), v("x")])]),
        ]);
        for eval in [eval_datalog::<NatPoly>, eval_datalog_naive::<NatPoly>] {
            let e = eval(&prog, &edge_db()).unwrap_err();
            assert!(e.msg.contains("arity mismatch"), "{e}");
        }
    }

    #[test]
    fn body_arity_mismatch_rejected() {
        let prog = Program::new([Rule::new(
            atom("Out", [v("x")]),
            [atom("E", [v("x"), v("y"), v("z")])],
        )]);
        for eval in [eval_datalog::<NatPoly>, eval_datalog_naive::<NatPoly>] {
            let e = eval(&prog, &edge_db()).unwrap_err();
            assert!(e.msg.contains("arity mismatch"), "{e}");
        }
    }

    #[test]
    fn unknown_predicate_rejected() {
        let prog = Program::new([Rule::new(
            atom("Out", [v("x")]),
            [atom("Nope", [v("x"), v("y")])],
        )]);
        for eval in [eval_datalog::<NatPoly>, eval_datalog_naive::<NatPoly>] {
            let e = eval(&prog, &edge_db()).unwrap_err();
            assert!(e.msg.contains("unknown predicate"), "{e}");
        }
    }

    #[test]
    fn repeated_variables_within_an_atom() {
        // self-loops only: E(x, x)
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(vec![RelValue::Node(1), RelValue::Node(1)], np("a"));
        e.insert(vec![RelValue::Node(1), RelValue::Node(2)], np("b"));
        let db = Database::new().with("E", e);
        let prog = Program::new([Rule::new(
            atom("L", [v("x")]),
            [atom("E", [v("x"), v("x")])],
        )]);
        for eval in [eval_datalog::<NatPoly>, eval_datalog_naive::<NatPoly>] {
            let out = eval(&prog, &db).unwrap();
            let l = out.get("L").unwrap();
            assert_eq!(l.len(), 1);
            assert_eq!(l.get(&vec![RelValue::Node(1)]), np("a"));
        }
    }

    #[test]
    fn constants_filter() {
        let prog = Program::new([Rule::new(
            atom("FromOne", [v("y")]),
            [atom("E", [node(1), v("y")])],
        )]);
        let out = eval_datalog(&prog, &edge_db()).unwrap();
        let r = out.get("FromOne").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(&vec![RelValue::Node(2)]), np("y1"));
    }

    #[test]
    fn multiple_idb_atoms_in_one_body() {
        // P(x,z) :- T(x,y), T(y,z): quadratic use of a recursive IDB —
        // exercises the per-position delta variants without double
        // counting (checked against the naive reference).
        let prog = Program::new([
            Rule::new(atom("T", [v("x"), v("y")]), [atom("E", [v("x"), v("y")])]),
            Rule::new(
                atom("T", [v("x"), v("z")]),
                [atom("T", [v("x"), v("y")]), atom("E", [v("y"), v("z")])],
            ),
            Rule::new(
                atom("P", [v("x"), v("z")]),
                [atom("T", [v("x"), v("y")]), atom("T", [v("y"), v("z")])],
            ),
        ]);
        let a = eval_datalog(&prog, &edge_db()).unwrap();
        let b = eval_datalog_naive(&prog, &edge_db()).unwrap();
        assert_eq!(a.get("T"), b.get("T"));
        assert_eq!(a.get("P"), b.get("P"));
        assert_eq!(
            a.get("P")
                .unwrap()
                .get(&vec![RelValue::Node(1), RelValue::Node(3)]),
            np("y1*y2")
        );
    }

    #[test]
    fn display_rules() {
        let r = Rule::new(
            atom("E2", [sk("f", [v("p")]), sk("f", [v("n")]), v("l")]),
            [atom("E", [v("p"), v("n"), v("l")])],
        );
        assert_eq!(r.to_string(), "E2(f(p),f(n),l) :- E(p,n,l).");
    }
}
