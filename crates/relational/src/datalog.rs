//! Positive Datalog over K-relations, extended with Skolem functions in
//! rule heads (§7).
//!
//! Facts carry semiring annotations. The annotation of a derived fact
//! under one rule and one substitution is the *product* of the body
//! facts' annotations; alternatives (different rules or substitutions)
//! *add*. The iterate `Iₙ` therefore sums the annotations of all
//! derivation trees of depth ≤ n, and on tree-shaped data (like the §7
//! edge encoding) it stabilizes after at most `depth` iterations even
//! for ℕ\[X\]; a configurable iteration cap guards against
//! non-converging inputs (cyclic data with a non-idempotent semiring).
//!
//! Two evaluators compute that iterate:
//!
//! - [`eval_datalog`] — **semi-naive**: per-predicate delta relations
//!   and hash-indexed joins (see the crate-level "Performance"
//!   section). Each round derives only the annotations of derivation
//!   trees of the *new* depth, partitioned exactly (by the first body
//!   position of maximal depth) so nothing is double-counted in
//!   non-idempotent semirings; deltas absorbed by the accumulated
//!   iterate are pruned, which is what terminates recursion over
//!   cyclic data in idempotent semirings.
//! - [`eval_datalog_naive`] — the naïve fixpoint kept verbatim as an
//!   independent reference: every IDB relation is recomputed from the
//!   previous iterate until nothing changes. Property tests
//!   (`tests/seminaive.rs`) check the two agree on random programs.
//!
//! Both run the same upfront validation (the private `compile` pass), so malformed
//! programs (unsafe heads, Skolem terms in bodies, EDB/IDB overlap,
//! arity mismatches, unknown predicates) fail identically on either
//! path.

use crate::krel::{KRelation, RelIndex, RelValue, Schema, Tuple};
use crate::ra::Database;
use axml_semiring::Semiring;
use axml_uxml::Label;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A term in a rule: variable, constant, or Skolem application.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Term {
    /// A variable.
    Var(String),
    /// A constant value.
    Const(RelValue),
    /// A Skolem function applied to terms (head positions only).
    Skolem(String, Vec<Term>),
}

/// Variable term.
pub fn v(name: &str) -> Term {
    Term::Var(name.into())
}

/// Label-constant term.
pub fn lbl(name: &str) -> Term {
    Term::Const(RelValue::label(name))
}

/// Node-id constant term.
pub fn node(n: u64) -> Term {
    Term::Const(RelValue::Node(n))
}

/// Skolem application term.
pub fn sk<I: IntoIterator<Item = Term>>(f: &str, args: I) -> Term {
    Term::Skolem(f.into(), args.into_iter().collect())
}

/// An atom `P(t₁, …, tₙ)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

/// Build an atom.
pub fn atom<I: IntoIterator<Item = Term>>(pred: &str, args: I) -> Atom {
    Atom {
        pred: pred.into(),
        args: args.into_iter().collect(),
    }
}

/// A rule `head :- body₁, …, bodyₙ` (positive bodies only).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// The head atom (may contain Skolem terms).
    pub head: Atom,
    /// The body atoms (no Skolem terms).
    pub body: Vec<Atom>,
}

impl Rule {
    /// Build a rule.
    pub fn new<I: IntoIterator<Item = Atom>>(head: Atom, body: I) -> Self {
        Rule {
            head,
            body: body.into_iter().collect(),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_atom(&self.head))?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            let mut first = true;
            for a in &self.body {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{}", fmt_atom(a))?;
            }
        }
        write!(f, ".")
    }
}

fn fmt_atom(a: &Atom) -> String {
    let args: Vec<String> = a.args.iter().map(fmt_term).collect();
    format!("{}({})", a.pred, args.join(","))
}

fn fmt_term(t: &Term) -> String {
    match t {
        Term::Var(x) => x.clone(),
        Term::Const(c) => c.to_string(),
        Term::Skolem(f, args) => {
            let inner: Vec<String> = args.iter().map(fmt_term).collect();
            format!("{f}({})", inner.join(","))
        }
    }
}

/// A Datalog program: rules plus the declared arity of each IDB
/// predicate (needed to create empty relations).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Build from rules.
    pub fn new<I: IntoIterator<Item = Rule>>(rules: I) -> Self {
        Program {
            rules: rules.into_iter().collect(),
        }
    }

    /// IDB predicate names (those appearing in heads) with arities.
    pub fn idb_preds(&self) -> BTreeMap<String, usize> {
        self.rules
            .iter()
            .map(|r| (r.head.pred.clone(), r.head.args.len()))
            .collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Evaluation error (non-convergence, malformed rules, or an exceeded
/// wall-clock deadline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogError {
    /// Description.
    pub msg: String,
    /// `true` when the error is a caller-imposed resource limit
    /// tripping at a fixpoint round boundary (see
    /// [`eval_datalog_idb_limits_ctx`]), not a Datalog-level
    /// failure — the facade maps it to its typed budget error.
    pub budget: bool,
    /// For budget errors, `true` when the limit was the memory budget
    /// rather than the wall-clock deadline (the facade maps the two
    /// to different resource kinds).
    pub memory: bool,
}

impl DatalogError {
    /// A Datalog-level failure.
    pub fn new(msg: impl Into<String>) -> Self {
        DatalogError {
            msg: msg.into(),
            budget: false,
            memory: false,
        }
    }

    /// A wall-clock deadline trip.
    pub fn deadline() -> Self {
        DatalogError {
            msg: "wall-clock deadline exceeded during the fixpoint".into(),
            budget: true,
            memory: false,
        }
    }

    /// A memory budget trip.
    pub fn memory() -> Self {
        DatalogError {
            msg: "memory budget exceeded during the fixpoint".into(),
            budget: true,
            memory: true,
        }
    }
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "datalog error: {}", self.msg)
    }
}

impl std::error::Error for DatalogError {}

fn err<T>(msg: impl Into<String>) -> Result<T, DatalogError> {
    Err(DatalogError::new(msg))
}

/// Default iteration cap (far above any tree depth in this workspace).
pub const DEFAULT_MAX_ITERS: usize = 10_000;

// ---------------------------------------------------------------------
// Compilation: resolve predicates, number variables, split every body
// atom into probe-key columns / fresh bindings / equality checks.
// ---------------------------------------------------------------------

/// A resolved predicate: index into the EDB name table or the IDB
/// iterate vectors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Pred {
    Edb(usize),
    Idb(usize),
}

/// One component of an atom's probe key (a column whose value is known
/// before the atom is joined).
#[derive(Clone, Debug)]
enum KeyPart {
    Const(RelValue),
    Slot(usize),
}

/// A within-atom equality check: the column must equal a slot bound by
/// an *earlier column of the same atom* (repeated variables).
#[derive(Clone, Debug)]
struct SlotCheck {
    col: usize,
    slot: usize,
}

/// A body atom, join-ready.
#[derive(Clone, Debug)]
struct CAtom {
    pred: Pred,
    /// Columns with values known before this atom is reached, and how
    /// to produce them. Probed through a [`RelIndex`] on `key_cols`;
    /// empty = full scan.
    key_cols: Vec<usize>,
    key_parts: Vec<KeyPart>,
    /// `(column, slot)` first occurrences of variables: bound per row.
    binds: Vec<(usize, usize)>,
    /// Repeated variables within this atom.
    checks: Vec<SlotCheck>,
}

/// A head position: how to build the output value from the slots.
#[derive(Clone, Debug)]
enum HeadInstr {
    Const(RelValue),
    Slot(usize),
    Skolem(Label, Vec<HeadInstr>),
}

#[derive(Clone, Debug)]
struct CRule {
    head_pred: usize,
    head: Vec<HeadInstr>,
    atoms: Vec<CAtom>,
    /// Positions in `atoms` that read an IDB predicate.
    idb_positions: Vec<usize>,
    n_slots: usize,
}

/// A validated, join-ready program.
struct Compiled {
    idb_names: Vec<String>,
    idb_arities: Vec<usize>,
    rules: Vec<CRule>,
    /// Per IDB predicate: does any semi-naive variant read its
    /// *previous* iterate? Only predicates at a non-final IDB position
    /// of a multi-IDB body do; for linear programs (at most one IDB
    /// atom per body — every ψ output) this is all-false and the
    /// evaluator never copies an iterate.
    needs_prev: Vec<bool>,
    /// Per IDB predicate: does it occur in any rule body? Output-only
    /// predicates (ψ's `E2`) never have their delta re-read, so the
    /// delta is *moved* into the iterate instead of cloned.
    idb_in_body: Vec<bool>,
}

/// Validate and compile `prog` against the EDB's schemas. All rule
/// malformations are reported here, before any iteration runs, so the
/// semi-naive and naive evaluators fail identically.
fn compile<K: Semiring>(prog: &Program, edb: &Database<K>) -> Result<Compiled, DatalogError> {
    let edb_names: Vec<&String> = edb.iter().map(|(n, _)| n).collect();
    let edb_index: HashMap<&str, usize> = edb_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    // IDB predicates, with arity consistency across heads.
    let mut idb_names: Vec<String> = Vec::new();
    let mut idb_arities: Vec<usize> = Vec::new();
    let mut idb_index: HashMap<String, usize> = HashMap::new();
    for rule in &prog.rules {
        let pred = &rule.head.pred;
        if edb_index.contains_key(pred.as_str()) {
            return err(format!("predicate {pred:?} is both EDB and IDB"));
        }
        match idb_index.get(pred.as_str()) {
            Some(&i) => {
                if idb_arities[i] != rule.head.args.len() {
                    return err(format!("arity mismatch on {pred:?}"));
                }
            }
            None => {
                idb_index.insert(pred.clone(), idb_names.len());
                idb_names.push(pred.clone());
                idb_arities.push(rule.head.args.len());
            }
        }
    }

    let mut rules = Vec::with_capacity(prog.rules.len());
    for rule in &prog.rules {
        let mut slots: HashMap<&str, usize> = HashMap::new();
        let mut n_slots = 0usize;
        let mut atoms = Vec::with_capacity(rule.body.len());
        let mut idb_positions = Vec::new();
        for (pos, batom) in rule.body.iter().enumerate() {
            let (pred, arity) = match idb_index.get(batom.pred.as_str()) {
                Some(&i) => (Pred::Idb(i), idb_arities[i]),
                None => match edb_index.get(batom.pred.as_str()) {
                    Some(&i) => (
                        Pred::Edb(i),
                        edb.get(edb_names[i]).expect("edb name").schema().arity(),
                    ),
                    None => return err(format!("unknown predicate {:?}", batom.pred)),
                },
            };
            if batom.args.len() != arity {
                return err(format!("arity mismatch on {:?}", batom.pred));
            }
            if matches!(pred, Pred::Idb(_)) {
                idb_positions.push(pos);
            }
            let mut ca = CAtom {
                pred,
                key_cols: Vec::new(),
                key_parts: Vec::new(),
                binds: Vec::new(),
                checks: Vec::new(),
            };
            let mut bound_here: Vec<&str> = Vec::new();
            for (col, term) in batom.args.iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        ca.key_cols.push(col);
                        ca.key_parts.push(KeyPart::Const(c.clone()));
                    }
                    Term::Var(x) => match slots.get(x.as_str()) {
                        Some(&s) if !bound_here.contains(&x.as_str()) => {
                            // bound by an earlier atom: part of the key
                            ca.key_cols.push(col);
                            ca.key_parts.push(KeyPart::Slot(s));
                        }
                        Some(&s) => ca.checks.push(SlotCheck { col, slot: s }),
                        None => {
                            let s = n_slots;
                            n_slots += 1;
                            slots.insert(x.as_str(), s);
                            bound_here.push(x.as_str());
                            ca.binds.push((col, s));
                        }
                    },
                    Term::Skolem(..) => return err("Skolem terms may appear only in rule heads"),
                }
            }
            atoms.push(ca);
        }
        let head = rule
            .head
            .args
            .iter()
            .map(|t| compile_head_term(t, &slots))
            .collect::<Result<Vec<_>, _>>()?;
        rules.push(CRule {
            head_pred: idb_index[rule.head.pred.as_str()],
            head,
            atoms,
            idb_positions,
            n_slots,
        });
    }
    let mut needs_prev = vec![false; idb_names.len()];
    let mut idb_in_body = vec![false; idb_names.len()];
    for rule in &rules {
        if rule.idb_positions.len() >= 2 {
            for &pos in &rule.idb_positions[..rule.idb_positions.len() - 1] {
                if let Pred::Idb(i) = rule.atoms[pos].pred {
                    needs_prev[i] = true;
                }
            }
        }
        for atom in &rule.atoms {
            if let Pred::Idb(i) = atom.pred {
                idb_in_body[i] = true;
            }
        }
    }
    Ok(Compiled {
        idb_names,
        idb_arities,
        rules,
        needs_prev,
        idb_in_body,
    })
}

fn compile_head_term(t: &Term, slots: &HashMap<&str, usize>) -> Result<HeadInstr, DatalogError> {
    match t {
        Term::Const(c) => Ok(HeadInstr::Const(c.clone())),
        Term::Var(x) => match slots.get(x.as_str()) {
            Some(&s) => Ok(HeadInstr::Slot(s)),
            None => err(format!(
                "unsafe rule: head variable {x:?} not bound by the body"
            )),
        },
        Term::Skolem(f, args) => {
            let inner = args
                .iter()
                .map(|a| compile_head_term(a, slots))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(HeadInstr::Skolem(Label::new(f), inner))
        }
    }
}

// ---------------------------------------------------------------------
// Semi-naive evaluation.
// ---------------------------------------------------------------------

/// Which iterate a body atom reads during one join variant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Src {
    /// The fixed EDB relation.
    Edb,
    /// The current iterate `Iₙ`.
    Full,
    /// The previous iterate `Iₙ₋₁`.
    Prev,
    /// The last delta `Δₙ`.
    Delta,
}

/// The relations visible during one round, plus probe indexes. EDB
/// indexes are built once per evaluation (the EDB never changes) and
/// borrowed here; IDB indexes are built lazily per round. All
/// relations are immutable for the lifetime of the round.
struct Round<'a, K: Semiring> {
    edb_rels: &'a [&'a KRelation<K>],
    edb_indexes: &'a HashMap<(usize, Vec<usize>), RelIndex<'a, K>>,
    full: &'a [KRelation<K>],
    prev: &'a [KRelation<K>],
    delta: &'a [KRelation<K>],
    idb_indexes: HashMap<(Src, usize, Vec<usize>), RelIndex<'a, K>>,
}

impl<'a, K: Semiring> Round<'a, K> {
    fn rel(&self, src: Src, pred: Pred) -> &'a KRelation<K> {
        match (src, pred) {
            (Src::Edb, Pred::Edb(i)) => self.edb_rels[i],
            (Src::Full, Pred::Idb(i)) => &self.full[i],
            (Src::Prev, Pred::Idb(i)) => &self.prev[i],
            (Src::Delta, Pred::Idb(i)) => &self.delta[i],
            _ => unreachable!("EDB atoms always read Src::Edb"),
        }
    }

    /// Make sure every keyed IDB atom of the variant has its index
    /// built (indexes are shared across variants and rules within a
    /// round; EDB indexes are prebuilt). Variants driven by a tiny
    /// relation skip the builds — [`Round::join`] scan-probes keyed
    /// atoms whose index is absent (see [`SCAN_PROBE_MAX`]).
    fn prepare(&mut self, rule: &CRule, srcs: &[Src]) {
        let tiny_driver = rule
            .atoms
            .first()
            .map(|a0| self.rel(srcs[0], a0.pred).len() <= SCAN_PROBE_MAX)
            .unwrap_or(true);
        if tiny_driver {
            return;
        }
        for (atom, &src) in rule.atoms.iter().zip(srcs) {
            let Pred::Idb(p) = atom.pred else { continue };
            if atom.key_cols.is_empty() {
                continue;
            }
            let key = (src, p, atom.key_cols.clone());
            if !self.idb_indexes.contains_key(&key) {
                let idx = self.rel(src, atom.pred).index_on(&atom.key_cols);
                self.idb_indexes.insert(key, idx);
            }
        }
    }

    /// Depth-first indexed join over the rule body, one source per
    /// atom, accumulating derived tuples (with annotation products)
    /// into `out` — the head predicate's *delta*. Contributions
    /// already absorbed by the accumulated iterate
    /// (`I[t] + k = I[t]`) are pruned here, per derivation: sound
    /// because in every semiring of this workspace absorption of a
    /// sum and absorption of its parts coincide (zero-sum-free, and
    /// `+` restricted to absorbed elements is a join).
    /// [`Round::prepare`] must have run for this variant.
    /// `seed0`, when given, restricts the first atom's scan to the
    /// listed tuples — the probe-chunk hook the parallel round uses to
    /// split one variant's outer loop across workers (only full-scan
    /// first atoms are chunked; an indexed first atom probes as usual).
    fn join(
        &self,
        rule: &CRule,
        srcs: &[Src],
        seed0: Option<&[(&'a Tuple, &'a K)]>,
        out: &mut KRelation<K>,
    ) {
        // Resolve each atom's index once, not per probe. A keyed atom
        // may have no index (tiny-driver variant, see `prepare`) — the
        // recursion scan-probes it instead.
        let indexes: Vec<Option<&RelIndex<'a, K>>> = rule
            .atoms
            .iter()
            .zip(srcs)
            .map(|(atom, &src)| {
                if atom.key_cols.is_empty() {
                    return None;
                }
                match atom.pred {
                    Pred::Edb(i) => self.edb_indexes.get(&(i, atom.key_cols.clone())),
                    Pred::Idb(i) => self.idb_indexes.get(&(src, i, atom.key_cols.clone())),
                }
            })
            .collect();
        let mut slots: Vec<Option<RelValue>> = vec![None; rule.n_slots];
        self.join_from(rule, srcs, &indexes, seed0, 0, &mut slots, K::one(), out);
    }

    #[allow(clippy::too_many_arguments)] // internal recursion, all state is positional
    fn join_from(
        &self,
        rule: &CRule,
        srcs: &[Src],
        indexes: &[Option<&RelIndex<'a, K>>],
        seed0: Option<&[(&'a Tuple, &'a K)]>,
        i: usize,
        slots: &mut Vec<Option<RelValue>>,
        ann: K,
        out: &mut KRelation<K>,
    ) {
        if i == rule.atoms.len() {
            let tuple: Tuple = rule.head.iter().map(|h| ground(h, slots)).collect();
            let keep = match self.full[rule.head_pred].rows().get_ref(&tuple) {
                None => true,
                Some(cur) => cur.plus(&ann) != *cur,
            };
            if keep {
                out.insert(tuple, ann);
            }
            return;
        }
        let atom = &rule.atoms[i];
        let mut step = |tuple: &Tuple, k: &K, slots: &mut Vec<Option<RelValue>>| {
            for &(col, slot) in &atom.binds {
                slots[slot] = Some(tuple[col].clone());
            }
            let ok = atom
                .checks
                .iter()
                .all(|c| slots[c.slot].as_ref() == Some(&tuple[c.col]));
            if ok {
                let next_ann = if k.is_one() {
                    ann.clone()
                } else {
                    ann.times(k)
                };
                self.join_from(rule, srcs, indexes, seed0, i + 1, slots, next_ann, out);
            }
            for &(_, slot) in &atom.binds {
                slots[slot] = None;
            }
        };
        if i == 0 {
            if let Some(seeds) = seed0 {
                for &(tuple, k) in seeds {
                    step(tuple, k, slots);
                }
                return;
            }
        }
        let ground_key = |slots: &Vec<Option<RelValue>>| -> Vec<RelValue> {
            atom.key_parts
                .iter()
                .map(|p| match p {
                    KeyPart::Const(c) => c.clone(),
                    KeyPart::Slot(s) => slots[*s].clone().expect("key slot bound"),
                })
                .collect()
        };
        match indexes[i] {
            None if atom.key_cols.is_empty() => {
                for (tuple, k) in self.rel(srcs[i], atom.pred).iter() {
                    step(tuple, k, slots);
                }
            }
            None => {
                // Keyed atom without an index (tiny-driver variant):
                // scan the relation, filtering on the key columns.
                let key = ground_key(slots);
                for (tuple, k) in self.rel(srcs[i], atom.pred).iter() {
                    if atom.key_cols.iter().zip(&key).all(|(&c, v)| tuple[c] == *v) {
                        step(tuple, k, slots);
                    }
                }
            }
            Some(idx) => {
                let key = ground_key(slots);
                for &(tuple, k) in idx.probe(&key) {
                    step(tuple, k, slots);
                }
            }
        }
    }
}

fn ground(h: &HeadInstr, slots: &[Option<RelValue>]) -> RelValue {
    match h {
        HeadInstr::Const(c) => c.clone(),
        HeadInstr::Slot(s) => slots[*s].clone().expect("head slot bound (checked)"),
        HeadInstr::Skolem(f, args) => {
            RelValue::Skolem(*f, args.iter().map(|a| ground(a, slots)).collect())
        }
    }
}

/// Positional schema `c0, c1, …` for IDB relations.
fn anon_schema(arity: usize) -> Schema {
    Schema::new((0..arity).map(|i| format!("c{i}")))
}

/// Evaluate `prog` over the EDB `db` (semi-naive), returning EDB ∪ IDB.
pub fn eval_datalog<K: Semiring>(
    prog: &Program,
    db: &Database<K>,
) -> Result<Database<K>, DatalogError> {
    eval_datalog_capped(prog, db, DEFAULT_MAX_ITERS)
}

/// Like [`eval_datalog`], but return only the derived IDB relations
/// (callers that own the EDB skip a database copy).
pub fn eval_datalog_idb<K: Semiring>(
    prog: &Program,
    db: &Database<K>,
) -> Result<BTreeMap<String, KRelation<K>>, DatalogError> {
    eval_datalog_idb_capped(prog, db, DEFAULT_MAX_ITERS)
}

/// [`eval_datalog_idb`] with an execution context: with a
/// non-sequential context every semi-naive round fans its rule
/// variants — and, for variants whose first body atom is a full scan,
/// chunks of that scan — out over the context's pool, merging the
/// per-task deltas with [`KRelation::union_with`]. Identical iterates
/// and fixpoint (the absorption check reads the immutable previous
/// iterate, and delta merging is the same commutative `+`); `None` is
/// exactly the sequential evaluator.
pub fn eval_datalog_idb_ctx<K: Semiring>(
    prog: &Program,
    db: &Database<K>,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
) -> Result<BTreeMap<String, KRelation<K>>, DatalogError> {
    eval_datalog_idb_capped_ctx(prog, db, DEFAULT_MAX_ITERS, ctx)
}

/// Semi-naive evaluation with an explicit iteration cap.
///
/// Round n derives exactly the annotations of depth-n derivation
/// trees: every rule with m IDB body atoms is evaluated in m variants,
/// the j-th reading `Iₙ₋₂` before position j, `Δₙ₋₁` at j, and `Iₙ₋₁`
/// after it — a partition of the depth-n trees by their first
/// maximal-depth subderivation, so annotations are counted exactly
/// once. A delta entry whose addition would not change the iterate
/// (`I\[t\] + δ = I\[t\]`) is pruned; the fixpoint is reached when a
/// round's whole delta is pruned. In every semiring of this workspace
/// (all are zero-sum-free, and absorption distributes over `+`/`·`)
/// this computes the same iterate sequence and the same fixpoint as
/// [`eval_datalog_naive`].
pub fn eval_datalog_capped<K: Semiring>(
    prog: &Program,
    edb: &Database<K>,
    max_iters: usize,
) -> Result<Database<K>, DatalogError> {
    let idb = eval_datalog_idb_capped(prog, edb, max_iters)?;
    let mut out = edb.clone();
    for (p, r) in idb {
        out.insert(&p, r);
    }
    Ok(out)
}

/// [`eval_datalog_idb`] with an explicit iteration cap.
pub fn eval_datalog_idb_capped<K: Semiring>(
    prog: &Program,
    edb: &Database<K>,
    max_iters: usize,
) -> Result<BTreeMap<String, KRelation<K>>, DatalogError> {
    eval_datalog_idb_capped_ctx(prog, edb, max_iters, None)
}

/// A join variant's full scan is only worth chunking across workers
/// once the scanned relation reaches this many tuples per chunk.
const PAR_JOIN_MIN_TUPLES: usize = 64;

/// A variant whose driving (first) atom holds at most this many tuples
/// skips building hash indexes for its keyed atoms and scan-probes them
/// instead: a handful of O(n) filtered scans is far cheaper than an
/// O(n) *allocating* index build that only a handful of probes would
/// ever consult. This is what makes resumed fixpoints
/// ([`eval_datalog_idb_resume`]) cost O(Δ·n) comparisons instead of
/// O(n) allocations per round when the edit delta is tiny.
const SCAN_PROBE_MAX: usize = 16;

/// [`eval_datalog_idb_ctx`] with an explicit iteration cap.
pub fn eval_datalog_idb_capped_ctx<K: Semiring>(
    prog: &Program,
    edb: &Database<K>,
    max_iters: usize,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
) -> Result<BTreeMap<String, KRelation<K>>, DatalogError> {
    eval_datalog_idb_deadline_ctx(prog, edb, max_iters, ctx, None)
}

/// [`eval_datalog_idb_capped_ctx`] with a wall-clock deadline checked
/// at the top of every semi-naive round: a round that starts after
/// `deadline` has passed aborts the fixpoint with
/// [`DatalogError::deadline`] (rounds already running complete — the
/// check bounds the granularity of abandonment to one round).
pub fn eval_datalog_idb_deadline_ctx<K: Semiring>(
    prog: &Program,
    edb: &Database<K>,
    max_iters: usize,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
    deadline: Option<std::time::Instant>,
) -> Result<BTreeMap<String, KRelation<K>>, DatalogError> {
    eval_datalog_idb_limits_ctx(prog, edb, max_iters, ctx, deadline, None)
}

/// [`eval_datalog_idb_deadline_ctx`] with an optional memory budget
/// charged at the end of every semi-naive round with the round's
/// delta (one unit per derived tuple — the relational analog of a
/// logical tree node). A trip aborts the fixpoint with
/// [`DatalogError::memory`]; like the deadline, the granularity of
/// abandonment is one round.
pub fn eval_datalog_idb_limits_ctx<K: Semiring>(
    prog: &Program,
    edb: &Database<K>,
    max_iters: usize,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
    deadline: Option<std::time::Instant>,
    budget: Option<&axml_uxml::NodeBudget>,
) -> Result<BTreeMap<String, KRelation<K>>, DatalogError> {
    let compiled = compile(prog, edb)?;
    let n_idb = compiled.idb_names.len();
    // One schema per predicate for the whole run (Schema is Arc-shared;
    // rebuilding it would allocate column names every round).
    let schemas: Vec<Schema> = compiled
        .idb_arities
        .iter()
        .map(|&n| anon_schema(n))
        .collect();
    let full = empty_rels::<K>(&schemas);
    let prev = empty_rels::<K>(&schemas);
    let prev_fresh = vec![true; n_idb];
    let edb_rels: Vec<&KRelation<K>> = edb.iter().map(|(_, r)| r).collect();

    // The EDB never changes: build each (relation, key-columns) probe
    // index exactly once for the whole evaluation.
    let edb_indexes = build_edb_indexes(&compiled.rules, &edb_rels);

    if max_iters == 0 {
        return no_fixpoint(0);
    }
    if let Some(d) = deadline {
        if std::time::Instant::now() >= d {
            return Err(DatalogError::deadline());
        }
    }
    // Round 0: depth-1 derivations — all-EDB bodies only.
    let zero = empty_rels::<K>(&schemas);
    let mut next_delta;
    {
        let mut round = Round {
            edb_rels: &edb_rels,
            edb_indexes: &edb_indexes,
            full: &full,
            prev: &prev,
            delta: &zero,
            idb_indexes: HashMap::new(),
        };
        let items: Vec<(usize, Vec<Src>)> = compiled
            .rules
            .iter()
            .enumerate()
            .filter(|(_, rule)| rule.idb_positions.is_empty())
            .map(|(ri, rule)| (ri, vec![Src::Edb; rule.atoms.len()]))
            .collect();
        next_delta = execute_round(&compiled.rules, &schemas, &mut round, &items, ctx);
    }
    charge_round(budget, &next_delta)?;
    let mut full = full;
    let mut prev = prev;
    let mut prev_fresh = prev_fresh;
    if !merge_round(
        &compiled,
        &schemas,
        &mut full,
        &mut prev,
        &mut prev_fresh,
        &mut next_delta,
    ) {
        return Ok(named_idb(&compiled, full));
    }
    drive_rounds(
        &compiled,
        &schemas,
        &edb_rels,
        &edb_indexes,
        full,
        prev,
        prev_fresh,
        next_delta,
        max_iters - 1,
        max_iters,
        ctx,
        deadline,
        budget,
    )
}

/// Resume a semi-naive fixpoint after an EDB delta: given the retained
/// IDB fixpoint over `edb[changed] \ added` (the caller has already
/// removed every tuple invalidated by deletions — see
/// `crate::ivm`), derive exactly the contributions of derivation trees
/// that use at least one `added` fact, on top of the retained iterate.
///
/// Correctness requires the caller's two invariants:
/// - `retained` **is** the least fixpoint of `prog` over the EDB with
///   `added` removed from the `changed` relation (sums over derivation
///   trees that avoid every added fact), and
/// - `added` is tuple-disjoint from the old `changed` relation (no
///   annotation of a retained tuple needs revising in place).
///
/// The seeding round fires each rule that mentions `changed` once, with
/// that atom scanning only the added facts (bodies are re-planned so
/// the added-facts atom drives the join and everything else is probed),
/// IDB atoms reading the retained iterate. Later rounds are ordinary
/// semi-naive IDB-delta rounds over the full new EDB — the same
/// partition-by-first-maximal-depth argument as the fresh evaluator,
/// with "depth" counted from the resume point, so every tree using an
/// added fact is counted exactly once and no tree is counted twice.
///
/// Each rule body may mention `changed` at most once (ψ programs
/// guarantee this); two occurrences would need the pre-delta relation
/// for exact seeding, which semirings without subtraction cannot
/// recover, so that case is rejected.
#[allow(clippy::too_many_arguments)]
pub fn eval_datalog_idb_resume<K: Semiring>(
    prog: &Program,
    edb: &Database<K>,
    changed: &str,
    added: &KRelation<K>,
    retained: BTreeMap<String, KRelation<K>>,
    max_iters: usize,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
    deadline: Option<std::time::Instant>,
    budget: Option<&axml_uxml::NodeBudget>,
) -> Result<BTreeMap<String, KRelation<K>>, DatalogError> {
    let compiled = compile(prog, edb)?;
    let Some(changed_idx) = edb.iter().position(|(n, _)| n == changed) else {
        return err(format!("resume: unknown EDB relation {changed:?}"));
    };
    for rule in &prog.rules {
        if rule.body.iter().filter(|a| a.pred == changed).count() > 1 {
            return err(format!(
                "resume: rule {rule} mentions {changed:?} more than once \
                 (exact delta seeding needs the pre-delta relation)"
            ));
        }
    }
    // The seeding variants: each body rotated so the changed atom joins
    // first (the delta drives the join; everything else is probed).
    // Rules without the changed atom are kept verbatim — and never
    // fired in the seed round — purely so head order (and therefore
    // predicate numbering) matches `compiled` exactly.
    let mut seeded: Vec<bool> = Vec::with_capacity(prog.rules.len());
    let resume_prog =
        Program::new(prog.rules.iter().map(
            |r| match r.body.iter().position(|a| a.pred == changed) {
                Some(pos) => {
                    seeded.push(true);
                    let mut body = r.body.clone();
                    let a = body.remove(pos);
                    body.insert(0, a);
                    Rule::new(r.head.clone(), body)
                }
                None => {
                    seeded.push(false);
                    r.clone()
                }
            },
        ));
    let resumed = compile(&resume_prog, edb)?;
    debug_assert_eq!(resumed.idb_names, compiled.idb_names);

    let n_idb = compiled.idb_names.len();
    let schemas: Vec<Schema> = compiled
        .idb_arities
        .iter()
        .map(|&n| anon_schema(n))
        .collect();
    let mut retained = retained;
    let full: Vec<KRelation<K>> = compiled
        .idb_names
        .iter()
        .zip(&schemas)
        .map(|(n, s)| {
            retained
                .remove(n)
                .unwrap_or_else(|| KRelation::new(s.clone()))
        })
        .collect();
    // At the resume point the iterate is stable: Iₙ₋₁ = Iₙ = retained.
    let prev: Vec<KRelation<K>> = full
        .iter()
        .zip(&schemas)
        .zip(&compiled.needs_prev)
        .map(|((f, s), &np)| {
            if np {
                f.clone()
            } else {
                KRelation::new(s.clone())
            }
        })
        .collect();
    let prev_fresh = vec![true; n_idb];

    if max_iters == 0 {
        return no_fixpoint(0);
    }
    if let Some(d) = deadline {
        if std::time::Instant::now() >= d {
            return Err(DatalogError::deadline());
        }
    }
    // Seed round: the changed atom scans only the added facts.
    let mut seed_rels: Vec<&KRelation<K>> = edb.iter().map(|(_, r)| r).collect();
    seed_rels[changed_idx] = added;
    let seed_indexes = build_edb_indexes(&resumed.rules, &seed_rels);
    let zero = empty_rels::<K>(&schemas);
    let mut next_delta;
    {
        let mut round = Round {
            edb_rels: &seed_rels,
            edb_indexes: &seed_indexes,
            full: &full,
            prev: &prev,
            delta: &zero,
            idb_indexes: HashMap::new(),
        };
        let items: Vec<(usize, Vec<Src>)> = resumed
            .rules
            .iter()
            .enumerate()
            .filter(|(ri, _)| seeded[*ri])
            .map(|(ri, rule)| {
                let srcs = rule
                    .atoms
                    .iter()
                    .map(|a| match a.pred {
                        Pred::Edb(_) => Src::Edb,
                        Pred::Idb(_) => Src::Full,
                    })
                    .collect();
                (ri, srcs)
            })
            .collect();
        next_delta = execute_round(&resumed.rules, &schemas, &mut round, &items, ctx);
    }
    charge_round(budget, &next_delta)?;
    let mut full = full;
    let mut prev = prev;
    let mut prev_fresh = prev_fresh;
    if !merge_round(
        &compiled,
        &schemas,
        &mut full,
        &mut prev,
        &mut prev_fresh,
        &mut next_delta,
    ) {
        return Ok(named_idb(&compiled, full));
    }
    let edb_rels: Vec<&KRelation<K>> = edb.iter().map(|(_, r)| r).collect();
    // A tiny seed delta stays tiny through the remaining rounds (each
    // derives only from the last delta), so a full-EDB hash index
    // would cost more to build than every probe it would serve —
    // leave the map empty and let the rounds scan-probe instead.
    let delta_total: usize = next_delta.iter().map(KRelation::len).sum();
    let edb_indexes = if delta_total > SCAN_PROBE_MAX {
        build_edb_indexes(&compiled.rules, &edb_rels)
    } else {
        HashMap::new()
    };
    drive_rounds(
        &compiled,
        &schemas,
        &edb_rels,
        &edb_indexes,
        full,
        prev,
        prev_fresh,
        next_delta,
        max_iters - 1,
        max_iters,
        ctx,
        deadline,
        budget,
    )
}

fn empty_rels<K: Semiring>(schemas: &[Schema]) -> Vec<KRelation<K>> {
    schemas.iter().map(|s| KRelation::new(s.clone())).collect()
}

fn named_idb<K: Semiring>(
    compiled: &Compiled,
    full: Vec<KRelation<K>>,
) -> BTreeMap<String, KRelation<K>> {
    compiled.idb_names.iter().cloned().zip(full).collect()
}

fn no_fixpoint<T>(max_iters: usize) -> Result<T, DatalogError> {
    err(format!(
        "no fixpoint after {max_iters} iterations (cyclic data with a non-idempotent semiring?)"
    ))
}

/// Build each (EDB relation, key-columns) probe index the rules need,
/// exactly once per evaluation.
fn build_edb_indexes<'a, K: Semiring>(
    rules: &[CRule],
    edb_rels: &[&'a KRelation<K>],
) -> HashMap<(usize, Vec<usize>), RelIndex<'a, K>> {
    let mut edb_indexes: HashMap<(usize, Vec<usize>), RelIndex<'a, K>> = HashMap::new();
    for rule in rules {
        for atom in &rule.atoms {
            if let Pred::Edb(i) = atom.pred {
                if !atom.key_cols.is_empty() {
                    edb_indexes
                        .entry((i, atom.key_cols.clone()))
                        .or_insert_with(|| edb_rels[i].index_on(&atom.key_cols));
                }
            }
        }
    }
    edb_indexes
}

/// Execute one round's work list against an immutable [`Round`] view,
/// returning the per-predicate delta it derives. With a non-sequential
/// context the variants — and probe chunks of full-scan first atoms —
/// fan out over the pool and merge with the same commutative `+`.
fn execute_round<'a, K: Semiring>(
    rules: &[CRule],
    schemas: &[Schema],
    round: &mut Round<'a, K>,
    items: &[(usize, Vec<Src>)],
    ctx: Option<&axml_pool::ExecCtx<'_>>,
) -> Vec<KRelation<K>> {
    // Build every index the work list needs up front, so the round is
    // immutable during the (possibly parallel) joins.
    for (ri, srcs) in items {
        round.prepare(&rules[*ri], srcs);
    }
    let mut next_delta = empty_rels::<K>(schemas);
    let round = &*round;
    match ctx.filter(|c| !c.is_sequential()) {
        None => {
            for (ri, srcs) in items {
                let rule = &rules[*ri];
                round.join(rule, srcs, None, &mut next_delta[rule.head_pred]);
            }
        }
        Some(c) => {
            // Fan out: one task per variant, and — when a variant's
            // first atom is a full scan over a big relation — one task
            // per probe chunk of that scan.
            let degree = c.degree();
            type Seeds<'r, K> = Option<Vec<(&'r Tuple, &'r K)>>;
            let mut tasks: Vec<(usize, &[Src], Seeds<'_, K>)> = Vec::new();
            for (ri, srcs) in items {
                let rule = &rules[*ri];
                // Only rules whose first atom is a full scan can be
                // probe-chunked (body-less fact rules and indexed
                // first atoms run as one task).
                if let Some(atom0) = rule.atoms.first().filter(|a| a.key_cols.is_empty()) {
                    let rel = round.rel(srcs[0], atom0.pred);
                    let want = (rel.len() / PAR_JOIN_MIN_TUPLES).min(degree);
                    if want >= 2 {
                        let tuples: Vec<(&Tuple, &K)> = rel.iter().collect();
                        let per = tuples.len().div_ceil(want);
                        for chunk in tuples.chunks(per) {
                            tasks.push((*ri, srcs.as_slice(), Some(chunk.to_vec())));
                        }
                        continue;
                    }
                }
                tasks.push((*ri, srcs.as_slice(), None));
            }
            let partials: Vec<(usize, KRelation<K>)> =
                c.pool.map_slice(&tasks, |_, (ri, srcs, seeds)| {
                    let rule = &rules[*ri];
                    let mut out = KRelation::new(schemas[rule.head_pred].clone());
                    round.join(rule, srcs, seeds.as_deref(), &mut out);
                    (rule.head_pred, out)
                });
            for (head, rel) in partials {
                next_delta[head].union_with(rel);
            }
        }
    }
    next_delta
}

/// Charge one round's derived tuples against the memory budget.
fn charge_round<K: Semiring>(
    budget: Option<&axml_uxml::NodeBudget>,
    next_delta: &[KRelation<K>],
) -> Result<(), DatalogError> {
    if let Some(b) = budget {
        let derived: usize = next_delta.iter().map(|d| d.len()).sum();
        if b.charge(derived).is_err() {
            return Err(DatalogError::memory());
        }
    }
    Ok(())
}

/// Fold one round's delta into the iterate, maintaining the lazy
/// `prev` invariant (`prev[p] == Iₙ₋₁[p]` for every `needs_prev`
/// predicate at the top of the next round). Output-only predicates'
/// rows are *moved* into the iterate (their delta is never re-read).
/// Returns whether anything changed — `false` means fixpoint.
fn merge_round<K: Semiring>(
    compiled: &Compiled,
    schemas: &[Schema],
    full: &mut [KRelation<K>],
    prev: &mut [KRelation<K>],
    prev_fresh: &mut [bool],
    next_delta: &mut [KRelation<K>],
) -> bool {
    let changed = next_delta.iter().any(|d| !d.is_empty());
    if !changed {
        return false;
    }
    for p in 0..full.len() {
        if !next_delta[p].is_empty() {
            if compiled.needs_prev[p] {
                prev[p] = full[p].clone();
            }
            if compiled.idb_in_body[p] {
                for (t, k) in next_delta[p].iter() {
                    full[p].insert(t.clone(), k.clone());
                }
            } else {
                // Output-only predicate: no rule re-reads its delta,
                // so hand the rows over instead of cloning.
                let moved =
                    std::mem::replace(&mut next_delta[p], KRelation::new(schemas[p].clone()));
                full[p].union_with(moved);
            }
            prev_fresh[p] = false;
        } else if compiled.needs_prev[p] && !prev_fresh[p] {
            // The iterate stabilized this round; catch `prev` up once
            // so later rounds read Iₙ₋₁ = Iₙ.
            prev[p] = full[p].clone();
            prev_fresh[p] = true;
        }
    }
    true
}

/// The delta-driven rounds shared by the fresh and resumed fixpoints:
/// each fires one variant per IDB position carrying the last delta
/// (`Iₙ₋₂` before it, `Iₙ₋₁` after — the exact partition of new-depth
/// derivation trees), merging until a round derives nothing.
#[allow(clippy::too_many_arguments)]
fn drive_rounds<K: Semiring>(
    compiled: &Compiled,
    schemas: &[Schema],
    edb_rels: &[&KRelation<K>],
    edb_indexes: &HashMap<(usize, Vec<usize>), RelIndex<'_, K>>,
    mut full: Vec<KRelation<K>>,
    mut prev: Vec<KRelation<K>>,
    mut prev_fresh: Vec<bool>,
    mut delta: Vec<KRelation<K>>,
    rounds_left: usize,
    max_iters: usize,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
    deadline: Option<std::time::Instant>,
    budget: Option<&axml_uxml::NodeBudget>,
) -> Result<BTreeMap<String, KRelation<K>>, DatalogError> {
    for _ in 0..rounds_left {
        if let Some(d) = deadline {
            if std::time::Instant::now() >= d {
                return Err(DatalogError::deadline());
            }
        }
        // Derivations of the new depth, absorbed ones pruned at the
        // join (see [`Round::join`]): the next delta.
        let mut next_delta;
        {
            let mut round = Round {
                edb_rels,
                edb_indexes,
                full: &full,
                prev: &prev,
                delta: &delta,
                idb_indexes: HashMap::new(),
            };
            let mut items: Vec<(usize, Vec<Src>)> = Vec::new();
            for (ri, rule) in compiled.rules.iter().enumerate() {
                for (vi, &dpos) in rule.idb_positions.iter().enumerate() {
                    let Pred::Idb(dp) = rule.atoms[dpos].pred else {
                        unreachable!("idb_positions index IDB atoms")
                    };
                    if round.delta[dp].is_empty() {
                        continue; // this variant cannot derive anything
                    }
                    let srcs: Vec<Src> = rule
                        .atoms
                        .iter()
                        .enumerate()
                        .map(|(pos, atom)| match atom.pred {
                            Pred::Edb(_) => Src::Edb,
                            Pred::Idb(_) if pos == dpos => Src::Delta,
                            Pred::Idb(_) if rule.idb_positions[..vi].contains(&pos) => Src::Prev,
                            Pred::Idb(_) => Src::Full,
                        })
                        .collect();
                    items.push((ri, srcs));
                }
            }
            next_delta = execute_round(&compiled.rules, schemas, &mut round, &items, ctx);
        }
        charge_round(budget, &next_delta)?;
        if !merge_round(
            compiled,
            schemas,
            &mut full,
            &mut prev,
            &mut prev_fresh,
            &mut next_delta,
        ) {
            return Ok(named_idb(compiled, full));
        }
        delta = next_delta;
    }
    no_fixpoint(max_iters)
}

// ---------------------------------------------------------------------
// Naive reference evaluation (the original evaluator, kept verbatim
// for differential testing and the `datalog_seminaive` benchmark).
// ---------------------------------------------------------------------

/// Evaluate `prog` over the EDB `db` with the naïve fixpoint.
pub fn eval_datalog_naive<K: Semiring>(
    prog: &Program,
    db: &Database<K>,
) -> Result<Database<K>, DatalogError> {
    eval_datalog_naive_capped(prog, db, DEFAULT_MAX_ITERS)
}

/// Naïve evaluation with an explicit iteration cap: every IDB relation
/// is recomputed from the previous iterate (nested-scan joins, no
/// deltas) until nothing changes.
pub fn eval_datalog_naive_capped<K: Semiring>(
    prog: &Program,
    edb: &Database<K>,
    max_iters: usize,
) -> Result<Database<K>, DatalogError> {
    // Same validation as the semi-naive path (errors must agree).
    let _ = compile(prog, edb)?;
    let idb_arities = prog.idb_preds();

    // IDB iterate: start empty.
    let mut idb: BTreeMap<String, KRelation<K>> = idb_arities
        .iter()
        .map(|(p, &n)| (p.clone(), KRelation::new(anon_schema(n))))
        .collect();

    for _ in 0..max_iters {
        let mut next: BTreeMap<String, KRelation<K>> = idb_arities
            .iter()
            .map(|(p, &n)| (p.clone(), KRelation::new(anon_schema(n))))
            .collect();
        for rule in &prog.rules {
            apply_rule(
                rule,
                edb,
                &idb,
                next.get_mut(&rule.head.pred).expect("idb pred"),
            )?;
        }
        if next == idb {
            let mut out = edb.clone();
            for (p, r) in idb {
                out.insert(&p, r);
            }
            return Ok(out);
        }
        idb = next;
    }
    err(format!(
        "no fixpoint after {max_iters} iterations (cyclic data with a non-idempotent semiring?)"
    ))
}

type Subst = BTreeMap<String, RelValue>;

fn apply_rule<K: Semiring>(
    rule: &Rule,
    edb: &Database<K>,
    idb: &BTreeMap<String, KRelation<K>>,
    out: &mut KRelation<K>,
) -> Result<(), DatalogError> {
    let mut subst = Subst::new();
    search(rule, 0, edb, idb, &mut subst, K::one(), out)
}

/// Depth-first join over the body atoms.
fn search<K: Semiring>(
    rule: &Rule,
    i: usize,
    edb: &Database<K>,
    idb: &BTreeMap<String, KRelation<K>>,
    subst: &mut Subst,
    ann: K,
    out: &mut KRelation<K>,
) -> Result<(), DatalogError> {
    if i == rule.body.len() {
        let tuple: Result<Tuple, DatalogError> = rule
            .head
            .args
            .iter()
            .map(|t| ground_subst(t, subst))
            .collect();
        out.insert(tuple?, ann);
        return Ok(());
    }
    let body_atom = &rule.body[i];
    let rel = idb
        .get(&body_atom.pred)
        .or_else(|| edb.get(&body_atom.pred))
        .ok_or_else(|| DatalogError::new(format!("unknown predicate {:?}", body_atom.pred)))?;
    for (tuple, k) in rel.iter() {
        let mut bound: Vec<String> = Vec::new();
        let mut ok = true;
        for (term, value) in body_atom.args.iter().zip(tuple.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        ok = false;
                        break;
                    }
                }
                Term::Var(x) => match subst.get(x) {
                    Some(existing) => {
                        if existing != value {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(x.clone(), value.clone());
                        bound.push(x.clone());
                    }
                },
                Term::Skolem(..) => {
                    return err("Skolem terms may appear only in rule heads");
                }
            }
        }
        if ok {
            search(rule, i + 1, edb, idb, subst, ann.times(k), out)?;
        }
        for x in bound {
            subst.remove(&x);
        }
    }
    Ok(())
}

fn ground_subst(t: &Term, subst: &Subst) -> Result<RelValue, DatalogError> {
    match t {
        Term::Const(c) => Ok(c.clone()),
        Term::Var(x) => subst.get(x).cloned().ok_or_else(|| {
            DatalogError::new(format!(
                "unsafe rule: head variable {x:?} not bound by the body"
            ))
        }),
        Term::Skolem(f, args) => {
            let inner: Result<Vec<RelValue>, DatalogError> =
                args.iter().map(|a| ground_subst(a, subst)).collect();
            Ok(RelValue::Skolem(Label::new(f), inner?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_semiring::{Nat, NatPoly, PosBool, Tropical};

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    fn edge_db() -> Database<NatPoly> {
        // chain 1 →y1 2 →y2 3, annotated edges
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(vec![RelValue::Node(1), RelValue::Node(2)], np("y1"));
        e.insert(vec![RelValue::Node(2), RelValue::Node(3)], np("y2"));
        Database::new().with("E", e)
    }

    fn tc_prog() -> Program {
        Program::new([
            Rule::new(atom("T", [v("x"), v("y")]), [atom("E", [v("x"), v("y")])]),
            Rule::new(
                atom("T", [v("x"), v("z")]),
                [atom("T", [v("x"), v("y")]), atom("E", [v("y"), v("z")])],
            ),
        ])
    }

    #[test]
    fn transitive_closure_annotations() {
        let out = eval_datalog(&tc_prog(), &edge_db()).unwrap();
        let t = out.get("T").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.get(&vec![RelValue::Node(1), RelValue::Node(3)]),
            np("y1*y2")
        );
    }

    #[test]
    fn seminaive_matches_naive_on_closure() {
        let a = eval_datalog(&tc_prog(), &edge_db()).unwrap();
        let b = eval_datalog_naive(&tc_prog(), &edge_db()).unwrap();
        assert_eq!(a.get("T"), b.get("T"));
    }

    #[test]
    fn an_expired_deadline_trips_at_the_first_round_boundary() {
        let past = std::time::Instant::now();
        let err = eval_datalog_idb_deadline_ctx::<NatPoly>(
            &tc_prog(),
            &edge_db(),
            DEFAULT_MAX_ITERS,
            None,
            Some(past),
        )
        .unwrap_err();
        assert!(err.budget, "{err:?}");
        assert!(err.msg.contains("deadline"), "{}", err.msg);
    }

    #[test]
    fn a_generous_deadline_changes_nothing() {
        let far = std::time::Instant::now() + std::time::Duration::from_secs(3600);
        let with = eval_datalog_idb_deadline_ctx::<NatPoly>(
            &tc_prog(),
            &edge_db(),
            DEFAULT_MAX_ITERS,
            None,
            Some(far),
        )
        .unwrap();
        let without = eval_datalog_idb(&tc_prog(), &edge_db()).unwrap();
        assert_eq!(with.get("T"), without.get("T"));
    }

    #[test]
    fn alternatives_add() {
        // two edges between the same nodes via different relations
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(vec![RelValue::Node(1), RelValue::Node(2)], np("p"));
        let mut f = KRelation::new(Schema::new(["src", "dst"]));
        f.insert(vec![RelValue::Node(1), RelValue::Node(2)], np("q"));
        let db = Database::new().with("E", e).with("F", f);
        let prog = Program::new([
            Rule::new(atom("T", [v("x"), v("y")]), [atom("E", [v("x"), v("y")])]),
            Rule::new(atom("T", [v("x"), v("y")]), [atom("F", [v("x"), v("y")])]),
        ]);
        let out = eval_datalog(&prog, &db).unwrap();
        assert_eq!(
            out.get("T")
                .unwrap()
                .get(&vec![RelValue::Node(1), RelValue::Node(2)]),
            np("p + q")
        );
    }

    #[test]
    fn skolem_heads_invent_values() {
        let prog = Program::new([Rule::new(
            atom("Out", [sk("f", [v("x")]), v("y")]),
            [atom("E", [v("x"), v("y")])],
        )]);
        let out = eval_datalog(&prog, &edge_db()).unwrap();
        let o = out.get("Out").unwrap();
        assert_eq!(
            o.get(&vec![
                RelValue::Skolem("f".into(), vec![RelValue::Node(1)]),
                RelValue::Node(2)
            ]),
            np("y1")
        );
    }

    #[test]
    fn skolem_in_body_rejected() {
        let prog = Program::new([Rule::new(
            atom("Out", [v("x")]),
            [atom("E", [sk("f", [v("x")]), v("x")])],
        )]);
        for eval in [eval_datalog::<NatPoly>, eval_datalog_naive::<NatPoly>] {
            let e = eval(&prog, &edge_db()).unwrap_err();
            assert!(e.msg.contains("only in rule heads"), "{e}");
        }
    }

    #[test]
    fn unsafe_rule_rejected() {
        let prog = Program::new([Rule::new(
            atom("Out", [v("zzz")]),
            [atom("E", [v("x"), v("y")])],
        )]);
        for eval in [eval_datalog::<NatPoly>, eval_datalog_naive::<NatPoly>] {
            let e = eval(&prog, &edge_db()).unwrap_err();
            assert!(e.msg.contains("unsafe"), "{e}");
        }
    }

    #[test]
    fn cyclic_data_converges_for_idempotent_semirings() {
        // cycle 1 → 2 → 1 in PosBool: closure converges (idempotence)
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(
            vec![RelValue::Node(1), RelValue::Node(2)],
            PosBool::var_named("dl_a"),
        );
        e.insert(
            vec![RelValue::Node(2), RelValue::Node(1)],
            PosBool::var_named("dl_b"),
        );
        let db = Database::new().with("E", e);
        let out = eval_datalog(&tc_prog(), &db).unwrap();
        assert_eq!(out.get("T").unwrap().len(), 4);
        let naive = eval_datalog_naive(&tc_prog(), &db).unwrap();
        assert_eq!(out.get("T"), naive.get("T"));
    }

    #[test]
    fn cyclic_data_converges_for_tropical() {
        // min-plus closure over a cycle: absorption prunes longer paths
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(
            vec![RelValue::Node(1), RelValue::Node(2)],
            Tropical::cost(3),
        );
        e.insert(
            vec![RelValue::Node(2), RelValue::Node(1)],
            Tropical::cost(4),
        );
        let db = Database::new().with("E", e);
        let out = eval_datalog(&tc_prog(), &db).unwrap();
        let t = out.get("T").unwrap();
        assert_eq!(
            t.get(&vec![RelValue::Node(1), RelValue::Node(1)]),
            Tropical::cost(7)
        );
        let naive = eval_datalog_naive(&tc_prog(), &db).unwrap();
        assert_eq!(out.get("T"), naive.get("T"));
    }

    #[test]
    fn cyclic_data_hits_cap_for_nat() {
        // cycle with ℕ annotations: derivation count diverges
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(vec![RelValue::Node(1), RelValue::Node(1)], Nat(2));
        let db = Database::new().with("E", e);
        let err = eval_datalog_capped(&tc_prog(), &db, 50).unwrap_err();
        assert!(err.msg.contains("fixpoint"), "{err}");
        let err2 = eval_datalog_naive_capped(&tc_prog(), &db, 50).unwrap_err();
        assert!(err2.msg.contains("fixpoint"), "{err2}");
    }

    #[test]
    fn edb_idb_overlap_rejected() {
        let prog = Program::new([Rule::new(
            atom("E", [v("x"), v("y")]),
            [atom("E", [v("x"), v("y")])],
        )]);
        for eval in [eval_datalog::<NatPoly>, eval_datalog_naive::<NatPoly>] {
            let e = eval(&prog, &edge_db()).unwrap_err();
            assert!(e.msg.contains("both EDB and IDB"), "{e}");
        }
    }

    #[test]
    fn idb_arity_mismatch_rejected() {
        let prog = Program::new([
            Rule::new(atom("T", [v("x"), v("y")]), [atom("E", [v("x"), v("y")])]),
            Rule::new(atom("T", [v("x")]), [atom("E", [v("x"), v("x")])]),
        ]);
        for eval in [eval_datalog::<NatPoly>, eval_datalog_naive::<NatPoly>] {
            let e = eval(&prog, &edge_db()).unwrap_err();
            assert!(e.msg.contains("arity mismatch"), "{e}");
        }
    }

    #[test]
    fn body_arity_mismatch_rejected() {
        let prog = Program::new([Rule::new(
            atom("Out", [v("x")]),
            [atom("E", [v("x"), v("y"), v("z")])],
        )]);
        for eval in [eval_datalog::<NatPoly>, eval_datalog_naive::<NatPoly>] {
            let e = eval(&prog, &edge_db()).unwrap_err();
            assert!(e.msg.contains("arity mismatch"), "{e}");
        }
    }

    #[test]
    fn unknown_predicate_rejected() {
        let prog = Program::new([Rule::new(
            atom("Out", [v("x")]),
            [atom("Nope", [v("x"), v("y")])],
        )]);
        for eval in [eval_datalog::<NatPoly>, eval_datalog_naive::<NatPoly>] {
            let e = eval(&prog, &edge_db()).unwrap_err();
            assert!(e.msg.contains("unknown predicate"), "{e}");
        }
    }

    #[test]
    fn repeated_variables_within_an_atom() {
        // self-loops only: E(x, x)
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(vec![RelValue::Node(1), RelValue::Node(1)], np("a"));
        e.insert(vec![RelValue::Node(1), RelValue::Node(2)], np("b"));
        let db = Database::new().with("E", e);
        let prog = Program::new([Rule::new(
            atom("L", [v("x")]),
            [atom("E", [v("x"), v("x")])],
        )]);
        for eval in [eval_datalog::<NatPoly>, eval_datalog_naive::<NatPoly>] {
            let out = eval(&prog, &db).unwrap();
            let l = out.get("L").unwrap();
            assert_eq!(l.len(), 1);
            assert_eq!(l.get(&vec![RelValue::Node(1)]), np("a"));
        }
    }

    #[test]
    fn constants_filter() {
        let prog = Program::new([Rule::new(
            atom("FromOne", [v("y")]),
            [atom("E", [node(1), v("y")])],
        )]);
        let out = eval_datalog(&prog, &edge_db()).unwrap();
        let r = out.get("FromOne").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(&vec![RelValue::Node(2)]), np("y1"));
    }

    #[test]
    fn multiple_idb_atoms_in_one_body() {
        // P(x,z) :- T(x,y), T(y,z): quadratic use of a recursive IDB —
        // exercises the per-position delta variants without double
        // counting (checked against the naive reference).
        let prog = Program::new([
            Rule::new(atom("T", [v("x"), v("y")]), [atom("E", [v("x"), v("y")])]),
            Rule::new(
                atom("T", [v("x"), v("z")]),
                [atom("T", [v("x"), v("y")]), atom("E", [v("y"), v("z")])],
            ),
            Rule::new(
                atom("P", [v("x"), v("z")]),
                [atom("T", [v("x"), v("y")]), atom("T", [v("y"), v("z")])],
            ),
        ]);
        let a = eval_datalog(&prog, &edge_db()).unwrap();
        let b = eval_datalog_naive(&prog, &edge_db()).unwrap();
        assert_eq!(a.get("T"), b.get("T"));
        assert_eq!(a.get("P"), b.get("P"));
        assert_eq!(
            a.get("P")
                .unwrap()
                .get(&vec![RelValue::Node(1), RelValue::Node(3)]),
            np("y1*y2")
        );
    }

    #[test]
    fn display_rules() {
        let r = Rule::new(
            atom("E2", [sk("f", [v("p")]), sk("f", [v("n")]), v("l")]),
            [atom("E", [v("p"), v("n"), v("l")])],
        );
        assert_eq!(r.to_string(), "E2(f(p),f(n),l) :- E(p,n,l).");
    }
}
