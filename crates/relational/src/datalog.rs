//! Positive Datalog over K-relations, extended with Skolem functions in
//! rule heads (§7).
//!
//! Facts carry semiring annotations. The annotation of a derived fact
//! under one rule and one substitution is the *product* of the body
//! facts' annotations; alternatives (different rules or substitutions)
//! *add*. Evaluation is a naïve fixpoint: IDB relations are recomputed
//! from the previous iterate until nothing changes. On tree-shaped data
//! (like the §7 edge encoding) every derivation is finite and the
//! fixpoint is reached in at most `depth` iterations even for ℕ\[X\]; a
//! configurable iteration cap guards against non-converging inputs
//! (cyclic data with a non-idempotent semiring).

use crate::krel::{KRelation, RelValue, Schema, Tuple};
use crate::ra::Database;
use axml_semiring::Semiring;
use std::collections::BTreeMap;
use std::fmt;

/// A term in a rule: variable, constant, or Skolem application.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Term {
    /// A variable.
    Var(String),
    /// A constant value.
    Const(RelValue),
    /// A Skolem function applied to terms (head positions only).
    Skolem(String, Vec<Term>),
}

/// Variable term.
pub fn v(name: &str) -> Term {
    Term::Var(name.into())
}

/// Label-constant term.
pub fn lbl(name: &str) -> Term {
    Term::Const(RelValue::label(name))
}

/// Node-id constant term.
pub fn node(n: u64) -> Term {
    Term::Const(RelValue::Node(n))
}

/// Skolem application term.
pub fn sk<I: IntoIterator<Item = Term>>(f: &str, args: I) -> Term {
    Term::Skolem(f.into(), args.into_iter().collect())
}

/// An atom `P(t₁, …, tₙ)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

/// Build an atom.
pub fn atom<I: IntoIterator<Item = Term>>(pred: &str, args: I) -> Atom {
    Atom {
        pred: pred.into(),
        args: args.into_iter().collect(),
    }
}

/// A rule `head :- body₁, …, bodyₙ` (positive bodies only).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// The head atom (may contain Skolem terms).
    pub head: Atom,
    /// The body atoms (no Skolem terms).
    pub body: Vec<Atom>,
}

impl Rule {
    /// Build a rule.
    pub fn new<I: IntoIterator<Item = Atom>>(head: Atom, body: I) -> Self {
        Rule {
            head,
            body: body.into_iter().collect(),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_atom(&self.head))?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            let mut first = true;
            for a in &self.body {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{}", fmt_atom(a))?;
            }
        }
        write!(f, ".")
    }
}

fn fmt_atom(a: &Atom) -> String {
    let args: Vec<String> = a.args.iter().map(fmt_term).collect();
    format!("{}({})", a.pred, args.join(","))
}

fn fmt_term(t: &Term) -> String {
    match t {
        Term::Var(x) => x.clone(),
        Term::Const(c) => c.to_string(),
        Term::Skolem(f, args) => {
            let inner: Vec<String> = args.iter().map(fmt_term).collect();
            format!("{f}({})", inner.join(","))
        }
    }
}

/// A Datalog program: rules plus the declared arity of each IDB
/// predicate (needed to create empty relations).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Build from rules.
    pub fn new<I: IntoIterator<Item = Rule>>(rules: I) -> Self {
        Program {
            rules: rules.into_iter().collect(),
        }
    }

    /// IDB predicate names (those appearing in heads) with arities.
    pub fn idb_preds(&self) -> BTreeMap<String, usize> {
        self.rules
            .iter()
            .map(|r| (r.head.pred.clone(), r.head.args.len()))
            .collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Evaluation error (non-convergence or malformed rules).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "datalog error: {}", self.msg)
    }
}

impl std::error::Error for DatalogError {}

/// Default iteration cap (far above any tree depth in this workspace).
pub const DEFAULT_MAX_ITERS: usize = 10_000;

/// Evaluate `prog` over the EDB `db`, returning EDB ∪ IDB.
pub fn eval_datalog<K: Semiring>(
    prog: &Program,
    db: &Database<K>,
) -> Result<Database<K>, DatalogError> {
    eval_datalog_capped(prog, db, DEFAULT_MAX_ITERS)
}

/// Evaluate with an explicit iteration cap.
pub fn eval_datalog_capped<K: Semiring>(
    prog: &Program,
    edb: &Database<K>,
    max_iters: usize,
) -> Result<Database<K>, DatalogError> {
    let idb_arities = prog.idb_preds();
    for pred in idb_arities.keys() {
        if edb.get(pred).is_some() {
            return Err(DatalogError {
                msg: format!("predicate {pred:?} is both EDB and IDB"),
            });
        }
    }

    // IDB iterate: start empty.
    let mut idb: BTreeMap<String, KRelation<K>> = idb_arities
        .iter()
        .map(|(p, &n)| (p.clone(), KRelation::new(anon_schema(n))))
        .collect();

    for _ in 0..max_iters {
        let mut next: BTreeMap<String, KRelation<K>> = idb_arities
            .iter()
            .map(|(p, &n)| (p.clone(), KRelation::new(anon_schema(n))))
            .collect();
        for rule in &prog.rules {
            apply_rule(
                rule,
                edb,
                &idb,
                next.get_mut(&rule.head.pred).expect("idb pred"),
            )?;
        }
        if next == idb {
            let mut out = edb.clone();
            for (p, r) in idb {
                out.insert(&p, r);
            }
            return Ok(out);
        }
        idb = next;
    }
    Err(DatalogError {
        msg: format!("no fixpoint after {max_iters} iterations (cyclic data with a non-idempotent semiring?)"),
    })
}

/// Positional schema `c0, c1, …` for IDB relations.
fn anon_schema(arity: usize) -> Schema {
    Schema::new((0..arity).map(|i| format!("c{i}")))
}

type Subst = BTreeMap<String, RelValue>;

fn apply_rule<K: Semiring>(
    rule: &Rule,
    edb: &Database<K>,
    idb: &BTreeMap<String, KRelation<K>>,
    out: &mut KRelation<K>,
) -> Result<(), DatalogError> {
    let mut subst = Subst::new();
    search(rule, 0, edb, idb, &mut subst, K::one(), out)
}

/// Depth-first join over the body atoms.
fn search<K: Semiring>(
    rule: &Rule,
    i: usize,
    edb: &Database<K>,
    idb: &BTreeMap<String, KRelation<K>>,
    subst: &mut Subst,
    ann: K,
    out: &mut KRelation<K>,
) -> Result<(), DatalogError> {
    if i == rule.body.len() {
        let tuple: Result<Tuple, DatalogError> =
            rule.head.args.iter().map(|t| ground(t, subst)).collect();
        out.insert(tuple?, ann);
        return Ok(());
    }
    let body_atom = &rule.body[i];
    let rel = idb
        .get(&body_atom.pred)
        .or_else(|| edb.get(&body_atom.pred))
        .ok_or_else(|| DatalogError {
            msg: format!("unknown predicate {:?}", body_atom.pred),
        })?;
    // clone the rows (cheap: Arc’d labels) to release the borrow on idb
    for (tuple, k) in rel.iter() {
        if tuple.len() != body_atom.args.len() {
            return Err(DatalogError {
                msg: format!("arity mismatch on {:?}", body_atom.pred),
            });
        }
        let mut bound: Vec<String> = Vec::new();
        let mut ok = true;
        for (term, value) in body_atom.args.iter().zip(tuple.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        ok = false;
                        break;
                    }
                }
                Term::Var(x) => match subst.get(x) {
                    Some(existing) => {
                        if existing != value {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(x.clone(), value.clone());
                        bound.push(x.clone());
                    }
                },
                Term::Skolem(..) => {
                    return Err(DatalogError {
                        msg: "Skolem terms may appear only in rule heads".into(),
                    })
                }
            }
        }
        if ok {
            search(rule, i + 1, edb, idb, subst, ann.times(k), out)?;
        }
        for x in bound {
            subst.remove(&x);
        }
    }
    Ok(())
}

fn ground(t: &Term, subst: &Subst) -> Result<RelValue, DatalogError> {
    match t {
        Term::Const(c) => Ok(c.clone()),
        Term::Var(x) => subst.get(x).cloned().ok_or_else(|| DatalogError {
            msg: format!("unsafe rule: head variable {x:?} not bound by the body"),
        }),
        Term::Skolem(f, args) => {
            let inner: Result<Vec<RelValue>, DatalogError> =
                args.iter().map(|a| ground(a, subst)).collect();
            Ok(RelValue::Skolem(f.clone(), inner?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_semiring::{Nat, NatPoly, PosBool};

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    fn edge_db() -> Database<NatPoly> {
        // chain 1 →y1 2 →y2 3, annotated edges
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(vec![RelValue::Node(1), RelValue::Node(2)], np("y1"));
        e.insert(vec![RelValue::Node(2), RelValue::Node(3)], np("y2"));
        Database::new().with("E", e)
    }

    #[test]
    fn transitive_closure_annotations() {
        // T(x,y) :- E(x,y).  T(x,z) :- T(x,y), E(y,z).
        let prog = Program::new([
            Rule::new(atom("T", [v("x"), v("y")]), [atom("E", [v("x"), v("y")])]),
            Rule::new(
                atom("T", [v("x"), v("z")]),
                [atom("T", [v("x"), v("y")]), atom("E", [v("y"), v("z")])],
            ),
        ]);
        let out = eval_datalog(&prog, &edge_db()).unwrap();
        let t = out.get("T").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.get(&vec![RelValue::Node(1), RelValue::Node(3)]),
            np("y1*y2")
        );
    }

    #[test]
    fn alternatives_add() {
        // two edges between the same nodes via different relations
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(vec![RelValue::Node(1), RelValue::Node(2)], np("p"));
        let mut f = KRelation::new(Schema::new(["src", "dst"]));
        f.insert(vec![RelValue::Node(1), RelValue::Node(2)], np("q"));
        let db = Database::new().with("E", e).with("F", f);
        let prog = Program::new([
            Rule::new(atom("T", [v("x"), v("y")]), [atom("E", [v("x"), v("y")])]),
            Rule::new(atom("T", [v("x"), v("y")]), [atom("F", [v("x"), v("y")])]),
        ]);
        let out = eval_datalog(&prog, &db).unwrap();
        assert_eq!(
            out.get("T")
                .unwrap()
                .get(&vec![RelValue::Node(1), RelValue::Node(2)]),
            np("p + q")
        );
    }

    #[test]
    fn skolem_heads_invent_values() {
        let prog = Program::new([Rule::new(
            atom("Out", [sk("f", [v("x")]), v("y")]),
            [atom("E", [v("x"), v("y")])],
        )]);
        let out = eval_datalog(&prog, &edge_db()).unwrap();
        let o = out.get("Out").unwrap();
        assert_eq!(
            o.get(&vec![
                RelValue::Skolem("f".into(), vec![RelValue::Node(1)]),
                RelValue::Node(2)
            ]),
            np("y1")
        );
    }

    #[test]
    fn skolem_in_body_rejected() {
        let prog = Program::new([Rule::new(
            atom("Out", [v("x")]),
            [atom("E", [sk("f", [v("x")]), v("x")])],
        )]);
        let e = eval_datalog(&prog, &edge_db()).unwrap_err();
        assert!(e.msg.contains("only in rule heads"), "{e}");
    }

    #[test]
    fn unsafe_rule_rejected() {
        let prog = Program::new([Rule::new(
            atom("Out", [v("zzz")]),
            [atom("E", [v("x"), v("y")])],
        )]);
        let e = eval_datalog(&prog, &edge_db()).unwrap_err();
        assert!(e.msg.contains("unsafe"), "{e}");
    }

    #[test]
    fn cyclic_data_converges_for_idempotent_semirings() {
        // cycle 1 → 2 → 1 in PosBool: closure converges (idempotence)
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(
            vec![RelValue::Node(1), RelValue::Node(2)],
            PosBool::var_named("dl_a"),
        );
        e.insert(
            vec![RelValue::Node(2), RelValue::Node(1)],
            PosBool::var_named("dl_b"),
        );
        let db = Database::new().with("E", e);
        let prog = Program::new([
            Rule::new(atom("T", [v("x"), v("y")]), [atom("E", [v("x"), v("y")])]),
            Rule::new(
                atom("T", [v("x"), v("z")]),
                [atom("T", [v("x"), v("y")]), atom("E", [v("y"), v("z")])],
            ),
        ]);
        let out = eval_datalog(&prog, &db).unwrap();
        assert_eq!(out.get("T").unwrap().len(), 4);
    }

    #[test]
    fn cyclic_data_hits_cap_for_nat() {
        // cycle with ℕ annotations: derivation count diverges
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        e.insert(vec![RelValue::Node(1), RelValue::Node(1)], Nat(2));
        let db = Database::new().with("E", e);
        let prog = Program::new([
            Rule::new(atom("T", [v("x"), v("y")]), [atom("E", [v("x"), v("y")])]),
            Rule::new(
                atom("T", [v("x"), v("z")]),
                [atom("T", [v("x"), v("y")]), atom("E", [v("y"), v("z")])],
            ),
        ]);
        let err = eval_datalog_capped(&prog, &db, 50).unwrap_err();
        assert!(err.msg.contains("fixpoint"), "{err}");
    }

    #[test]
    fn edb_idb_overlap_rejected() {
        let prog = Program::new([Rule::new(
            atom("E", [v("x"), v("y")]),
            [atom("E", [v("x"), v("y")])],
        )]);
        let e = eval_datalog(&prog, &edge_db()).unwrap_err();
        assert!(e.msg.contains("both EDB and IDB"), "{e}");
    }

    #[test]
    fn constants_filter() {
        let prog = Program::new([Rule::new(
            atom("FromOne", [v("y")]),
            [atom("E", [node(1), v("y")])],
        )]);
        let out = eval_datalog(&prog, &edge_db()).unwrap();
        let r = out.get("FromOne").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(&vec![RelValue::Node(2)]), np("y1"));
    }

    #[test]
    fn display_rules() {
        let r = Rule::new(
            atom("E2", [sk("f", [v("p")]), sk("f", [v("n")]), v("l")]),
            [atom("E", [v("p"), v("n"), v("l")])],
        );
        assert_eq!(r.to_string(), "E2(f(p),f(n),l) :- E(p,n,l).");
    }
}
