//! Shredding: the relational semantics of §7.
//!
//! - [`shred`] is the paper's φ: encode a K-UXML forest as a single
//!   K-relation `E(pid, nid, label)`, one tuple per node, carrying the
//!   node's annotation; `pid = 0` marks top-level roots.
//! - [`path_to_datalog`] is ψ: translate a query in the §7 XPath
//!   fragment ([`PathQuery`] — step chains, composition, union, and
//!   branching predicates) into a Datalog program with Skolem
//!   functions, whose `E'` relation encodes the result forest (the
//!   fresh `f(·)` ids keep result nodes distinct from source nodes).
//!   [`xpath_to_datalog`] is the step-chain special case.
//! - [`garbage_collect`] removes the tuples unreachable from any root
//!   ("an additional step is required to remove these tuples").
//! - [`decode`] inverts φ, merging value-identical siblings (relational
//!   node identity is *by id*; UXML identity is *by value* — decoding
//!   is where the two reconcile).
//!
//! Theorem 2 — `φ(p(v)) = ψ(φ(p))` up to node-id renaming, i.e.
//! `decode(ψ-result) =` direct evaluation — is verified in this
//! module's tests on Fig 4 and in `tests/theorems.rs` on random
//! forests and step chains.
//!
//! ## How ψ handles the full fragment
//!
//! Every translated subpath gets a fresh IDB predicate holding its
//! matches as `(…ctx, nid, label)` tuples. The `…ctx` prefix is empty
//! at the top level; each **branching predicate** `p[q]` extends it:
//! the qualifier `q` is evaluated from *every* match `n` of `p` at
//! once, through a seed rule `S(…ctx, n, l, n, l) :- P(…ctx, n, l)`
//! that carries the match (and its annotation) in extra columns. The
//! final projection `F(…ctx, n, l) :- Q(…ctx, n, l, m, ml)` *sums*
//! over the qualifier's matches `m` — annotated Datalog's projection
//! is exactly the scaling the K-semantics of `p[q]` asks for. Unions
//! become pairs of copy rules into a shared predicate (annotations
//! add), and the virtual root is a single fact `V(0, #vroot)` so the
//! whole translation stays uniform.

use crate::datalog::{atom, lbl, node, sk, v, Atom, DatalogError, Program, Rule, Term};
use crate::krel::{KRelation, RelValue, Schema};
use crate::ra::Database;
use axml_core::ast::{Axis, NodeTest, Step};
use axml_core::path::PathQuery;
use axml_semiring::Semiring;
use axml_uxml::{Forest, Tree};
use std::collections::BTreeMap;

/// The schema of the edge relation `E(pid, nid, label)`.
pub fn edge_schema() -> Schema {
    Schema::new(["pid", "nid", "label"])
}

/// φ: encode a forest as the edge relation. Node ids are assigned in
/// depth-first document order starting at 1 (0 is the virtual root).
pub fn shred<K: Semiring>(forest: &Forest<K>) -> KRelation<K> {
    let mut rel = KRelation::new(edge_schema());
    let mut next_id = 1u64;
    // Document order keeps the assigned ids stable across processes
    // (the forest's internal order is fingerprint-based).
    for (t, k) in forest.iter_document() {
        shred_tree(t, k, 0, &mut next_id, &mut rel);
    }
    rel
}

fn shred_tree<K: Semiring>(
    t: &Tree<K>,
    ann: &K,
    pid: u64,
    next_id: &mut u64,
    rel: &mut KRelation<K>,
) {
    // Pre-order DFS on an explicit stack — one linear scan emitting one
    // EDB fact per node; document depth costs heap, never Rust stack.
    // Children are pushed in reverse document order so pop order (and
    // therefore every assigned nid) matches the recursive encoding
    // exactly.
    let mut stack: Vec<(&Tree<K>, &K, u64)> = vec![(t, ann, pid)];
    while let Some((t, ann, pid)) = stack.pop() {
        let nid = *next_id;
        *next_id += 1;
        rel.insert(
            vec![
                RelValue::Node(pid),
                RelValue::Node(nid),
                RelValue::Label(t.label()),
            ],
            ann.clone(),
        );
        for (c, k) in t.children_document().iter().rev() {
            stack.push((c, k, nid));
        }
    }
}

/// ψ on a step chain: the special case the paper's `descendant::a`
/// example shows, now a thin wrapper over [`path_to_datalog`].
pub fn xpath_to_datalog(steps: &[Step]) -> Program {
    path_to_datalog(&PathQuery::from_steps(steps))
}

/// The reserved label of the virtual-root fact `V(0, #vroot)`.
const VROOT_LABEL: &str = "#vroot";

/// ψ: translate a [`PathQuery`] (the full §7 XPath fragment) into a
/// Datalog program over the edge relation `E` whose `E2` relation
/// encodes the result forest:
///
/// ```text
/// E2(f(p), f(n), l) :- E(p, n, l).          (copy the structure)
/// E2(0, f(n), l)    :- F(n, l).             (matched nodes become roots)
/// ```
///
/// `F` is the predicate holding the query's matches; see the module
/// docs for how steps, unions and branching predicates build it.
pub fn path_to_datalog(p: &PathQuery) -> Program {
    let mut gen = PsiGen {
        rules: vec![
            // V(0, #vroot). — the virtual root, annotated 1.
            Rule::new(atom("V", [node(0), lbl(VROOT_LABEL)]), []),
            // E2(f(p), f(n), l) :- E(p, n, l).
            Rule::new(
                atom("E2", [sk("f", [v("p")]), sk("f", [v("n")]), v("l")]),
                [atom("E", [v("p"), v("n"), v("l")])],
            ),
        ],
        counter: 0,
    };
    if let Some(matches) = gen.translate(p, "V", 0) {
        // E2(0, f(n), l) :- F(n, l).
        gen.rules.push(Rule::new(
            atom("E2", [node(0), sk("f", [v("n")]), v("l")]),
            [gen_atom(&matches, 0, [v("n"), v("l")])],
        ));
    }
    Program::new(gen.rules)
}

/// An atom `P(g0, …, g_{ctx-1}, tail…)` with the context prefix spelled
/// out.
fn gen_atom<I: IntoIterator<Item = Term>>(pred: &str, ctx: usize, tail: I) -> Atom {
    let args: Vec<Term> = (0..ctx).map(|i| v(&format!("g{i}"))).chain(tail).collect();
    atom(pred, args)
}

/// Rule generator for [`path_to_datalog`].
struct PsiGen {
    rules: Vec<Rule>,
    counter: usize,
}

impl PsiGen {
    fn fresh(&mut self, hint: &str) -> String {
        let n = self.counter;
        self.counter += 1;
        format!("{hint}{n}")
    }

    /// Translate `p` against the context predicate `in_pred` (arity
    /// `ctx + 2`: the pass-through prefix plus `(nid, label)`).
    /// Returns the predicate holding `p`'s matches, or `None` when `p`
    /// provably has none ([`PathQuery::Empty`] anywhere on the spine).
    fn translate(&mut self, p: &PathQuery, in_pred: &str, ctx: usize) -> Option<String> {
        match p {
            PathQuery::Root => Some(in_pred.to_owned()),
            PathQuery::Empty => None,
            PathQuery::Step(inner, step) => {
                let q = self.translate(inner, in_pred, ctx)?;
                Some(self.step_rules(&q, *step, ctx))
            }
            PathQuery::Union(a, b) => {
                let qa = self.translate(a, in_pred, ctx);
                let qb = self.translate(b, in_pred, ctx);
                match (qa, qb) {
                    (None, x) => x,
                    (x, None) => x,
                    (Some(qa), Some(qb)) => {
                        let out = self.fresh("U");
                        for q in [qa, qb] {
                            // U(…, n, l) :- Q(…, n, l).
                            self.rules.push(Rule::new(
                                gen_atom(&out, ctx, [v("n"), v("l")]),
                                [gen_atom(&q, ctx, [v("n"), v("l")])],
                            ));
                        }
                        Some(out)
                    }
                }
            }
            PathQuery::Filter(inner, qualifier) => {
                let q = self.translate(inner, in_pred, ctx)?;
                // Seed the qualifier from every match at once, carrying
                // the match (and its annotation) in two extra context
                // columns: S(…, n, l, n, l) :- Q(…, n, l).
                let seed = self.fresh("S");
                self.rules.push(Rule::new(
                    gen_atom(&seed, ctx, [v("n"), v("l"), v("n"), v("l")]),
                    [gen_atom(&q, ctx, [v("n"), v("l")])],
                ));
                let f = self.translate(qualifier, &seed, ctx + 2)?;
                // Project the qualifier's matches away; annotated
                // projection sums them — exactly the `p[q]` scaling.
                // F(…, n, l) :- Qual(…, n, l, m, ml).
                let out = self.fresh("F");
                self.rules.push(Rule::new(
                    gen_atom(&out, ctx, [v("n"), v("l")]),
                    [gen_atom(&f, ctx, [v("n"), v("l"), v("m"), v("ml")])],
                ));
                Some(out)
            }
        }
    }

    /// Emit the rules for one navigation step from `q`'s matches.
    fn step_rules(&mut self, q: &str, step: Step, ctx: usize) -> String {
        let test_term = match step.test {
            NodeTest::Wildcard => v("l"),
            NodeTest::Label(l) => lbl(l.name()),
        };
        let out = self.fresh("C");
        match step.axis {
            Axis::SelfAxis => {
                // C(…, n, t) :- Q(…, n, t).
                self.rules.push(Rule::new(
                    gen_atom(&out, ctx, [v("n"), test_term.clone()]),
                    [gen_atom(q, ctx, [v("n"), test_term])],
                ));
            }
            Axis::Child => {
                // C(…, n, t) :- Q(…, p, _), E(p, n, t).
                self.rules.push(Rule::new(
                    gen_atom(&out, ctx, [v("n"), test_term.clone()]),
                    [
                        gen_atom(q, ctx, [v("p"), v("pl")]),
                        atom("E", [v("p"), v("n"), test_term]),
                    ],
                ));
            }
            Axis::Descendant | Axis::StrictDescendant => {
                // D seeded from the matches themselves (descendant-or-
                // self, the paper's semantics) or from their children
                // (the strict extension), then the edge recursion. A
                // wildcard test needs no filter pass, so D *is* the
                // output predicate (one predicate and one delta round
                // saved); a label test gets a final filter rule.
                let d = if step.test == NodeTest::Wildcard {
                    out.clone()
                } else {
                    self.fresh("D")
                };
                let seed = if step.axis == Axis::Descendant {
                    Rule::new(
                        gen_atom(&d, ctx, [v("n"), v("l")]),
                        [gen_atom(q, ctx, [v("n"), v("l")])],
                    )
                } else {
                    Rule::new(
                        gen_atom(&d, ctx, [v("n"), v("l")]),
                        [
                            gen_atom(q, ctx, [v("p"), v("pl")]),
                            atom("E", [v("p"), v("n"), v("l")]),
                        ],
                    )
                };
                self.rules.push(seed);
                // D(…, n, l) :- D(…, p, _), E(p, n, l).
                self.rules.push(Rule::new(
                    gen_atom(&d, ctx, [v("n"), v("l")]),
                    [
                        gen_atom(&d, ctx, [v("p"), v("pl")]),
                        atom("E", [v("p"), v("n"), v("l")]),
                    ],
                ));
                if d != out {
                    // C(…, n, t) :- D(…, n, t).
                    self.rules.push(Rule::new(
                        gen_atom(&out, ctx, [v("n"), test_term.clone()]),
                        [gen_atom(&d, ctx, [v("n"), test_term])],
                    ));
                }
            }
        }
        out
    }
}

/// Run ψ(φ(v)) for a step chain: shred, evaluate the program, return
/// the raw `E'` relation (including garbage, as in the paper's table).
pub fn shredded_eval<K: Semiring>(
    forest: &Forest<K>,
    steps: &[Step],
) -> Result<KRelation<K>, DatalogError> {
    shredded_eval_path(forest, &PathQuery::from_steps(steps))
}

/// Run ψ(φ(v)) for any fragment query: shred, evaluate the program,
/// return the raw `E'` relation (garbage included).
pub fn shredded_eval_path<K: Semiring>(
    forest: &Forest<K>,
    p: &PathQuery,
) -> Result<KRelation<K>, DatalogError> {
    shredded_eval_path_ctx(forest, p, None)
}

/// [`shredded_eval_path`] with an execution context: the semi-naive
/// Datalog rounds fan out over the context's pool (see
/// [`crate::datalog::eval_datalog_idb_ctx`]); `None` is the sequential
/// pipeline unchanged.
pub fn shredded_eval_path_ctx<K: Semiring>(
    forest: &Forest<K>,
    p: &PathQuery,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
) -> Result<KRelation<K>, DatalogError> {
    shredded_eval_path_deadline_ctx(forest, p, ctx, None)
}

/// [`shredded_eval_path_ctx`] with a wall-clock deadline checked at
/// every semi-naive round boundary (see
/// [`crate::datalog::eval_datalog_idb_deadline_ctx`]).
pub fn shredded_eval_path_deadline_ctx<K: Semiring>(
    forest: &Forest<K>,
    p: &PathQuery,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
    deadline: Option<std::time::Instant>,
) -> Result<KRelation<K>, DatalogError> {
    shredded_eval_path_limits_ctx(forest, p, ctx, deadline, None)
}

/// [`shredded_eval_path_deadline_ctx`] with an optional memory budget
/// charged per semi-naive round with the round's derived tuples (see
/// [`crate::datalog::eval_datalog_idb_limits_ctx`]).
pub fn shredded_eval_path_limits_ctx<K: Semiring>(
    forest: &Forest<K>,
    p: &PathQuery,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
    deadline: Option<std::time::Instant>,
    budget: Option<&axml_uxml::NodeBudget>,
) -> Result<KRelation<K>, DatalogError> {
    let e = shred(forest);
    let db = Database::new().with("E", e);
    let prog = path_to_datalog(p);
    let mut idb = crate::datalog::eval_datalog_idb_limits_ctx(
        &prog,
        &db,
        crate::datalog::DEFAULT_MAX_ITERS,
        ctx,
        deadline,
        budget,
    )?;
    Ok(idb
        .remove("E2")
        .unwrap_or_else(|| KRelation::new(edge_schema())))
}

/// Remove tuples not reachable from a root (pid 0) tuple.
pub fn garbage_collect<K: Semiring>(rel: &KRelation<K>) -> KRelation<K> {
    use std::collections::{HashMap, HashSet};
    // children-by-pid index over the support
    let mut by_pid: HashMap<&RelValue, Vec<&Vec<RelValue>>> = HashMap::new();
    for (t, _) in rel.iter() {
        by_pid.entry(&t[0]).or_default().push(t);
    }
    let mut reachable: HashSet<&RelValue> = HashSet::new();
    let zero = RelValue::Node(0);
    let mut stack: Vec<&RelValue> = vec![&zero];
    while let Some(pid) = stack.pop() {
        if let Some(children) = by_pid.get(pid) {
            for t in children {
                if reachable.insert(&t[1]) {
                    stack.push(&t[1]);
                }
            }
        }
    }
    let mut out = KRelation::new(rel.schema().clone());
    for (t, k) in rel.iter() {
        if t[0] == zero || reachable.contains(&t[0]) {
            out.insert(t.clone(), k.clone());
        }
    }
    out
}

/// Invert φ: rebuild the forest from an edge relation. Value-identical
/// siblings merge (their annotations add). A node id reachable through
/// several parents is *duplicated* at each occurrence (the ψ output is
/// a DAG: a matched node appears both as a result root and inside any
/// enclosing match's copied subtree). Returns `None` on a cycle or a
/// non-label in the label column. An empty relation decodes to the
/// empty forest.
pub fn decode<K: Semiring>(rel: &KRelation<K>) -> Option<Forest<K>> {
    let mut children: BTreeMap<RelValue, Vec<(RelValue, axml_uxml::Label, K)>> = BTreeMap::new();
    for (t, k) in rel.iter() {
        let (pid, nid, label) = (&t[0], &t[1], t[2].as_label()?);
        children
            .entry(pid.clone())
            .or_default()
            .push((nid.clone(), label, k.clone()));
    }
    let mut out = Forest::new();
    let Some(roots) = children.get(&RelValue::Node(0)) else {
        return Some(out);
    };
    let mut on_path = std::collections::BTreeSet::new();
    for (nid, label, k) in roots.clone() {
        let t = decode_tree(&nid, label, &children, &mut on_path)?;
        out.insert(t, k);
    }
    Some(out)
}

fn decode_tree<K: Semiring>(
    nid: &RelValue,
    label: axml_uxml::Label,
    children: &BTreeMap<RelValue, Vec<(RelValue, axml_uxml::Label, K)>>,
    on_path: &mut std::collections::BTreeSet<RelValue>,
) -> Option<Tree<K>> {
    if !on_path.insert(nid.clone()) {
        return None; // cycle through nid
    }
    let mut forest = Forest::new();
    if let Some(kids) = children.get(nid) {
        for (cid, clabel, k) in kids.clone() {
            let sub = decode_tree(&cid, clabel, children, on_path)?;
            forest.insert(sub, k);
        }
    }
    on_path.remove(nid);
    Some(Tree::new(label, forest))
}

/// End-to-end shredded evaluation of a step chain, GC'd and decoded to
/// a forest — the object Theorem 2 equates with direct evaluation.
pub fn eval_steps_via_shredding<K: Semiring>(
    forest: &Forest<K>,
    steps: &[Step],
) -> Result<Forest<K>, DatalogError> {
    eval_path_via_shredding(forest, &PathQuery::from_steps(steps))
}

/// End-to-end shredded evaluation of any §7-fragment query: shred,
/// run ψ, garbage-collect, decode back to a forest.
pub fn eval_path_via_shredding<K: Semiring>(
    forest: &Forest<K>,
    p: &PathQuery,
) -> Result<Forest<K>, DatalogError> {
    eval_path_via_shredding_ctx(forest, p, None)
}

/// [`eval_path_via_shredding`] with an execution context (parallel
/// semi-naive rounds); `None` is the sequential pipeline unchanged.
pub fn eval_path_via_shredding_ctx<K: Semiring>(
    forest: &Forest<K>,
    p: &PathQuery,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
) -> Result<Forest<K>, DatalogError> {
    eval_path_via_shredding_deadline_ctx(forest, p, ctx, None)
}

/// [`eval_path_via_shredding_ctx`] with a wall-clock deadline checked
/// at every semi-naive round boundary.
pub fn eval_path_via_shredding_deadline_ctx<K: Semiring>(
    forest: &Forest<K>,
    p: &PathQuery,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
    deadline: Option<std::time::Instant>,
) -> Result<Forest<K>, DatalogError> {
    eval_path_via_shredding_limits_ctx(forest, p, ctx, deadline, None)
}

/// [`eval_path_via_shredding_deadline_ctx`] with an optional memory
/// budget charged per fixpoint round (one unit per derived tuple).
pub fn eval_path_via_shredding_limits_ctx<K: Semiring>(
    forest: &Forest<K>,
    p: &PathQuery,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
    deadline: Option<std::time::Instant>,
    budget: Option<&axml_uxml::NodeBudget>,
) -> Result<Forest<K>, DatalogError> {
    let raw = shredded_eval_path_limits_ctx(forest, p, ctx, deadline, budget)?;
    let clean = garbage_collect(&raw);
    decode(&clean).ok_or_else(|| DatalogError::new("shredded result is not forest-shaped"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_core::ast::{Axis, NodeTest, Step};
    use axml_semiring::{NatPoly, Var};
    use axml_uxml::{parse_forest, Label};

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    fn fig4_source() -> Forest<NatPoly> {
        parse_forest(
            "<a> <b {x1}> <a> c {y3} d </a> </b> <c {y1}> <d> <a> c {y2} b {x2} </a> </d> </c> </a>",
        )
        .unwrap()
    }

    fn dsc(l: &str) -> Step {
        Step {
            axis: Axis::Descendant,
            test: NodeTest::Label(Label::new(l)),
        }
    }

    #[test]
    fn shred_assigns_dfs_ids() {
        let f = parse_forest::<NatPoly>("<a> b {q} </a> c {r}").unwrap();
        let e = shred(&f);
        assert_eq!(e.len(), 3);
        // root a = nid 1 (pid 0), child b = nid 2, root c = nid 3
        assert_eq!(
            e.get(&vec![
                RelValue::Node(0),
                RelValue::Node(1),
                RelValue::label("a")
            ]),
            NatPoly::one()
        );
        assert_eq!(
            e.get(&vec![
                RelValue::Node(1),
                RelValue::Node(2),
                RelValue::label("b")
            ]),
            np("q")
        );
        assert_eq!(
            e.get(&vec![
                RelValue::Node(0),
                RelValue::Node(3),
                RelValue::label("c")
            ]),
            np("r")
        );
    }

    #[test]
    fn paper_section7_table_with_x1_zero() {
        // The paper evaluates //c on the Fig 4 source with x1 := 0 and
        // lists the E′ tuples (up to its node numbering). We substitute
        // x1 ↦ 0 (keeping y1, y2 symbolic) and check the two root
        // tuples and the overall counts.
        let subst = std::collections::BTreeMap::from([(Var::new("x1"), NatPoly::zero())]);
        let f = axml_uxml::hom::substitute_forest(&fig4_source(), &subst);
        let e2 = shredded_eval(&f, &[dsc("c")]).unwrap();

        // Root tuples: (0, f(nc), c)^{y1} and (0, f(nc2), c)^{y1·y2}.
        let roots: Vec<(&Vec<RelValue>, &NatPoly)> = e2
            .iter()
            .filter(|(t, _)| t[0] == RelValue::Node(0))
            .collect();
        assert_eq!(roots.len(), 2);
        let anns: Vec<String> = roots.iter().map(|(_, k)| k.to_string()).collect();
        assert!(anns.contains(&"y1".to_owned()), "{anns:?}");
        assert!(anns.contains(&"y1*y2".to_owned()), "{anns:?}");

        // Copied structure: with the b-branch zeroed at its root edge,
        // E retains the b-subtree's inner tuples but drops the b tuple
        // itself; after GC only the c{y1}-subtree copies survive.
        let clean = garbage_collect(&e2);
        assert!(clean.len() < e2.len(), "garbage must exist and be removed");
    }

    #[test]
    fn theorem2_on_fig4() {
        // decode(ψ(φ(v))) equals direct evaluation of //c (Fig 4).
        let f = fig4_source();
        let shredded = eval_steps_via_shredding(&f, &[dsc("c")]).unwrap();
        let direct = axml_core::eval_step(&f, dsc("c"));
        assert_eq!(shredded, direct);
        // and the Fig 4 annotation q1 = x1·y3 + y1·y2 on the leaf c
        assert_eq!(shredded.get(&axml_uxml::leaf("c")), np("x1*y3 + y1*y2"));
    }

    #[test]
    fn theorem2_on_step_chains() {
        let f = fig4_source();
        let chains: Vec<Vec<Step>> = vec![
            vec![Step {
                axis: Axis::Child,
                test: NodeTest::Wildcard,
            }],
            vec![
                Step {
                    axis: Axis::Child,
                    test: NodeTest::Wildcard,
                },
                Step {
                    axis: Axis::Child,
                    test: NodeTest::Wildcard,
                },
            ],
            vec![
                dsc("a"),
                Step {
                    axis: Axis::Child,
                    test: NodeTest::Label(Label::new("c")),
                },
            ],
            vec![Step {
                axis: Axis::SelfAxis,
                test: NodeTest::Label(Label::new("a")),
            }],
            vec![Step {
                axis: Axis::StrictDescendant,
                test: NodeTest::Label(Label::new("c")),
            }],
            vec![dsc("c"), dsc("b")],
        ];
        for steps in chains {
            let shredded = eval_steps_via_shredding(&f, &steps).unwrap();
            let mut direct = f.clone();
            for s in &steps {
                direct = axml_core::eval_step(&direct, *s);
            }
            assert_eq!(shredded, direct, "mismatch on {steps:?}");
        }
    }

    #[test]
    fn garbage_collect_keeps_reachable_only() {
        let mut rel = KRelation::<NatPoly>::new(edge_schema());
        rel.insert(
            vec![RelValue::Node(0), RelValue::Node(1), RelValue::label("a")],
            NatPoly::one(),
        );
        rel.insert(
            vec![RelValue::Node(1), RelValue::Node(2), RelValue::label("b")],
            NatPoly::one(),
        );
        // orphan: parent 99 never reachable
        rel.insert(
            vec![
                RelValue::Node(99),
                RelValue::Node(100),
                RelValue::label("z"),
            ],
            NatPoly::one(),
        );
        let clean = garbage_collect(&rel);
        assert_eq!(clean.len(), 2);
    }

    #[test]
    fn decode_merges_value_identical_siblings() {
        // two distinct nodes, same value, same parent → one UXML child
        let mut rel = KRelation::<NatPoly>::new(edge_schema());
        rel.insert(
            vec![RelValue::Node(0), RelValue::Node(1), RelValue::label("r")],
            NatPoly::one(),
        );
        rel.insert(
            vec![RelValue::Node(1), RelValue::Node(2), RelValue::label("c")],
            np("p"),
        );
        rel.insert(
            vec![RelValue::Node(1), RelValue::Node(3), RelValue::label("c")],
            np("q"),
        );
        let f = decode(&rel).unwrap();
        let root = f.trees().next().unwrap();
        assert_eq!(root.children().len(), 1);
        assert_eq!(root.children().get(&axml_uxml::leaf("c")), np("p + q"));
    }

    #[test]
    fn decode_duplicates_shared_nodes() {
        // nid 1 is both a root and a child of node 2 (the ψ-output DAG
        // shape): the subtree is materialized at both positions.
        let mut rel = KRelation::<NatPoly>::new(edge_schema());
        rel.insert(
            vec![RelValue::Node(0), RelValue::Node(1), RelValue::label("a")],
            np("p"),
        );
        rel.insert(
            vec![RelValue::Node(0), RelValue::Node(2), RelValue::label("b")],
            NatPoly::one(),
        );
        rel.insert(
            vec![RelValue::Node(2), RelValue::Node(1), RelValue::label("a")],
            np("q"),
        );
        let f = decode(&rel).unwrap();
        assert_eq!(f.get(&axml_uxml::leaf("a")), np("p"));
        let b = parse_forest::<NatPoly>("<b> a {q} </b>")
            .unwrap()
            .trees()
            .next()
            .unwrap()
            .clone();
        assert_eq!(f.get(&b), NatPoly::one());
    }

    #[test]
    fn decode_rejects_cycles() {
        let mut rel = KRelation::<NatPoly>::new(edge_schema());
        rel.insert(
            vec![RelValue::Node(0), RelValue::Node(1), RelValue::label("a")],
            NatPoly::one(),
        );
        rel.insert(
            vec![RelValue::Node(1), RelValue::Node(2), RelValue::label("b")],
            NatPoly::one(),
        );
        rel.insert(
            vec![RelValue::Node(2), RelValue::Node(1), RelValue::label("a")],
            NatPoly::one(),
        );
        assert!(decode(&rel).is_none());
    }

    #[test]
    fn shred_decode_roundtrip() {
        let f = fig4_source();
        let rt = decode(&shred(&f)).unwrap();
        assert_eq!(rt, f);
    }

    /// Theorem-2-style check on the *full* fragment: ψ followed by
    /// GC + decode equals the direct path-algebra evaluation.
    fn check_path(p: &PathQuery, f: &Forest<NatPoly>) {
        let shredded = eval_path_via_shredding(f, p).unwrap();
        let direct = axml_core::eval_path(f, p);
        assert_eq!(shredded, direct, "ψ disagrees with direct eval on {p}");
    }

    fn step(axis: Axis, test: NodeTest) -> Step {
        Step { axis, test }
    }

    #[test]
    fn theorem2_on_unions() {
        let f = fig4_source();
        // //c | //b
        let p = PathQuery::Union(
            Box::new(PathQuery::from_steps(&[dsc("c")])),
            Box::new(PathQuery::from_steps(&[dsc("b")])),
        );
        check_path(&p, &f);
        // overlapping branches: //c | child::*/child::* (annotations add)
        let q = PathQuery::Union(
            Box::new(PathQuery::from_steps(&[dsc("c")])),
            Box::new(PathQuery::from_steps(&[
                step(Axis::Child, NodeTest::Wildcard),
                step(Axis::Child, NodeTest::Wildcard),
            ])),
        );
        check_path(&q, &f);
    }

    #[test]
    fn theorem2_on_branching_predicates() {
        let f = fig4_source();
        // //a[child::c] — scaled by the c-children total
        let p = PathQuery::Filter(
            Box::new(PathQuery::from_steps(&[dsc("a")])),
            Box::new(PathQuery::Step(
                Box::new(PathQuery::Root),
                step(Axis::Child, NodeTest::Label(Label::new("c"))),
            )),
        );
        check_path(&p, &f);
        // //a[child::c]/child::d — navigation after a qualifier
        let q = PathQuery::Step(
            Box::new(p),
            step(Axis::Child, NodeTest::Label(Label::new("d"))),
        );
        check_path(&q, &f);
        // //d[descendant::c] — recursive qualifier
        let r = PathQuery::Filter(
            Box::new(PathQuery::from_steps(&[dsc("d")])),
            Box::new(PathQuery::Step(Box::new(PathQuery::Root), dsc("c"))),
        );
        check_path(&r, &f);
    }

    #[test]
    fn theorem2_on_nested_filters_and_unions() {
        let f = fig4_source();
        // //a[child::c | child::d] — union inside a qualifier
        let union_qual = PathQuery::Union(
            Box::new(PathQuery::Step(
                Box::new(PathQuery::Root),
                step(Axis::Child, NodeTest::Label(Label::new("c"))),
            )),
            Box::new(PathQuery::Step(
                Box::new(PathQuery::Root),
                step(Axis::Child, NodeTest::Label(Label::new("d"))),
            )),
        );
        let p = PathQuery::Filter(
            Box::new(PathQuery::from_steps(&[dsc("a")])),
            Box::new(union_qual),
        );
        check_path(&p, &f);
        // //a[child::*[child::c]] — a qualifier inside a qualifier
        let inner = PathQuery::Filter(
            Box::new(PathQuery::Step(
                Box::new(PathQuery::Root),
                step(Axis::Child, NodeTest::Wildcard),
            )),
            Box::new(PathQuery::Step(
                Box::new(PathQuery::Root),
                step(Axis::Child, NodeTest::Label(Label::new("c"))),
            )),
        );
        let q = PathQuery::Filter(
            Box::new(PathQuery::from_steps(&[dsc("a")])),
            Box::new(inner),
        );
        check_path(&q, &f);
    }

    #[test]
    fn empty_path_yields_empty_forest() {
        let f = fig4_source();
        let out = eval_path_via_shredding(&f, &PathQuery::Empty).unwrap();
        assert!(out.is_empty());
        // an empty qualifier annihilates its input
        let p = PathQuery::Filter(
            Box::new(PathQuery::from_steps(&[dsc("c")])),
            Box::new(PathQuery::Empty),
        );
        let out2 = eval_path_via_shredding(&f, &p).unwrap();
        assert!(out2.is_empty());
    }

    #[test]
    fn filter_annotation_is_the_qualifier_total() {
        // <r> <a {p}> b {q} b {q2}? ... check the scaling precisely
        let f: Forest<NatPoly> = parse_forest("<r> <a {w1}> b {u1} c {u2} </a> </r>").unwrap();
        // //a[child::b]
        let p = PathQuery::Filter(
            Box::new(PathQuery::from_steps(&[dsc("a")])),
            Box::new(PathQuery::Step(
                Box::new(PathQuery::Root),
                step(Axis::Child, NodeTest::Label(Label::new("b"))),
            )),
        );
        let out = eval_path_via_shredding(&f, &p).unwrap();
        assert_eq!(out.len(), 1);
        let (_, k) = out.iter().next().unwrap();
        assert_eq!(k, &np("w1*u1"));
    }
}
