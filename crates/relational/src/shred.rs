//! Shredding: the relational semantics of §7.
//!
//! - [`shred`] is the paper's φ: encode a K-UXML forest as a single
//!   K-relation `E(pid, nid, label)`, one tuple per node, carrying the
//!   node's annotation; `pid = 0` marks top-level roots.
//! - [`xpath_to_datalog`] is ψ: translate an XPath step chain into a
//!   Datalog program with Skolem functions, whose `E'` relation encodes
//!   the result forest (the fresh `f(·)` ids keep result nodes distinct
//!   from source nodes).
//! - [`garbage_collect`] removes the tuples unreachable from any root
//!   ("an additional step is required to remove these tuples").
//! - [`decode`] inverts φ, merging value-identical siblings (relational
//!   node identity is *by id*; UXML identity is *by value* — decoding
//!   is where the two reconcile).
//!
//! Theorem 2 — `φ(p(v)) = ψ(φ(p))` up to node-id renaming, i.e.
//! `decode(ψ-result) =` direct evaluation — is verified in this
//! module's tests on Fig 4 and in `tests/theorems.rs` on random
//! forests and step chains.

use crate::datalog::{atom, lbl, node, sk, v, DatalogError, Program, Rule};
use crate::krel::{KRelation, RelValue, Schema};
use crate::ra::Database;
use axml_core::ast::{Axis, NodeTest, Step};
use axml_semiring::Semiring;
use axml_uxml::{Forest, Tree};
use std::collections::BTreeMap;

/// The schema of the edge relation `E(pid, nid, label)`.
pub fn edge_schema() -> Schema {
    Schema::new(["pid", "nid", "label"])
}

/// φ: encode a forest as the edge relation. Node ids are assigned in
/// depth-first document order starting at 1 (0 is the virtual root).
pub fn shred<K: Semiring>(forest: &Forest<K>) -> KRelation<K> {
    let mut rel = KRelation::new(edge_schema());
    let mut next_id = 1u64;
    // Document order keeps the assigned ids stable across processes
    // (the forest's internal order is fingerprint-based).
    for (t, k) in forest.iter_document() {
        shred_tree(t, k, 0, &mut next_id, &mut rel);
    }
    rel
}

fn shred_tree<K: Semiring>(
    t: &Tree<K>,
    ann: &K,
    pid: u64,
    next_id: &mut u64,
    rel: &mut KRelation<K>,
) {
    let nid = *next_id;
    *next_id += 1;
    rel.insert(
        vec![
            RelValue::Node(pid),
            RelValue::Node(nid),
            RelValue::Label(t.label()),
        ],
        ann.clone(),
    );
    for (c, k) in t.children_document() {
        shred_tree(c, k, nid, next_id, rel);
    }
}

/// ψ: translate a chain of XPath steps into a Datalog program.
///
/// The program defines context predicates `C0 … Cn(nid, label)` — `C0`
/// holds the top-level roots with their annotations, each step extends
/// the chain — and the output relation:
///
/// ```text
/// E'(f(p), f(n), l) :- E(p, n, l).          (copy the structure)
/// E'(0, f(n), l)    :- Cn(n, l).            (matched nodes become roots)
/// ```
///
/// exactly the shape of the paper's `descendant::a` example.
pub fn xpath_to_datalog(steps: &[Step]) -> Program {
    let mut rules = Vec::new();
    // C0(n, l) :- E(0, n, l).
    rules.push(Rule::new(
        atom("C0", [v("n"), v("l")]),
        [atom("E", [node(0), v("n"), v("l")])],
    ));
    let mut ctx = "C0".to_owned();
    for (i, step) in steps.iter().enumerate() {
        let next = format!("C{}", i + 1);
        let test_term = match step.test {
            NodeTest::Wildcard => v("l"),
            NodeTest::Label(l) => lbl(l.name()),
        };
        match step.axis {
            Axis::SelfAxis => {
                // Ci+1(n, a) :- Ci(n, a).
                rules.push(Rule::new(
                    atom(&next, [v("n"), test_term.clone()]),
                    [atom(&ctx, [v("n"), test_term])],
                ));
            }
            Axis::Child => {
                // Ci+1(n, a) :- Ci(p, _), E(p, n, a).
                rules.push(Rule::new(
                    atom(&next, [v("n"), test_term.clone()]),
                    [
                        atom(&ctx, [v("p"), v("pl")]),
                        atom("E", [v("p"), v("n"), test_term]),
                    ],
                ));
            }
            Axis::Descendant => {
                // D(n,l) :- Ci(n,l).    D(n,l) :- D(p,_), E(p,n,l).
                // Ci+1(n,a) :- D(n,a).
                let d = format!("D{}", i + 1);
                rules.push(Rule::new(
                    atom(&d, [v("n"), v("l")]),
                    [atom(&ctx, [v("n"), v("l")])],
                ));
                rules.push(Rule::new(
                    atom(&d, [v("n"), v("l")]),
                    [
                        atom(&d, [v("p"), v("pl")]),
                        atom("E", [v("p"), v("n"), v("l")]),
                    ],
                ));
                rules.push(Rule::new(
                    atom(&next, [v("n"), test_term.clone()]),
                    [atom(&d, [v("n"), test_term])],
                ));
            }
            Axis::StrictDescendant => {
                // seed with the children, then the same recursion
                let d = format!("D{}", i + 1);
                rules.push(Rule::new(
                    atom(&d, [v("n"), v("l")]),
                    [
                        atom(&ctx, [v("p"), v("pl")]),
                        atom("E", [v("p"), v("n"), v("l")]),
                    ],
                ));
                rules.push(Rule::new(
                    atom(&d, [v("n"), v("l")]),
                    [
                        atom(&d, [v("p"), v("pl")]),
                        atom("E", [v("p"), v("n"), v("l")]),
                    ],
                ));
                rules.push(Rule::new(
                    atom(&next, [v("n"), test_term.clone()]),
                    [atom(&d, [v("n"), test_term])],
                ));
            }
        }
        ctx = next;
    }
    // E'(f(p), f(n), l) :- E(p, n, l).
    rules.push(Rule::new(
        atom("E2", [sk("f", [v("p")]), sk("f", [v("n")]), v("l")]),
        [atom("E", [v("p"), v("n"), v("l")])],
    ));
    // E'(0, f(n), l) :- Cn(n, l).
    rules.push(Rule::new(
        atom("E2", [node(0), sk("f", [v("n")]), v("l")]),
        [atom(&ctx, [v("n"), v("l")])],
    ));
    Program::new(rules)
}

/// Run ψ(φ(v)) for a step chain: shred, evaluate the program, return
/// the raw `E'` relation (including garbage, as in the paper's table).
pub fn shredded_eval<K: Semiring>(
    forest: &Forest<K>,
    steps: &[Step],
) -> Result<KRelation<K>, DatalogError> {
    let e = shred(forest);
    let db = Database::new().with("E", e);
    let prog = xpath_to_datalog(steps);
    let out = crate::datalog::eval_datalog(&prog, &db)?;
    Ok(out
        .get("E2")
        .cloned()
        .unwrap_or_else(|| KRelation::new(edge_schema())))
}

/// Remove tuples not reachable from a root (pid 0) tuple.
pub fn garbage_collect<K: Semiring>(rel: &KRelation<K>) -> KRelation<K> {
    // children-by-pid index over the support
    let mut by_pid: BTreeMap<&RelValue, Vec<&Vec<RelValue>>> = BTreeMap::new();
    for (t, _) in rel.iter() {
        by_pid.entry(&t[0]).or_default().push(t);
    }
    let mut reachable: std::collections::BTreeSet<&RelValue> = std::collections::BTreeSet::new();
    let zero = RelValue::Node(0);
    let mut stack: Vec<&RelValue> = vec![&zero];
    while let Some(pid) = stack.pop() {
        if let Some(children) = by_pid.get(pid) {
            for t in children {
                if reachable.insert(&t[1]) {
                    stack.push(&t[1]);
                }
            }
        }
    }
    let mut out = KRelation::new(rel.schema().clone());
    for (t, k) in rel.iter() {
        if t[0] == zero || reachable.contains(&t[0]) {
            out.insert(t.clone(), k.clone());
        }
    }
    out
}

/// Invert φ: rebuild the forest from an edge relation. Value-identical
/// siblings merge (their annotations add). A node id reachable through
/// several parents is *duplicated* at each occurrence (the ψ output is
/// a DAG: a matched node appears both as a result root and inside any
/// enclosing match's copied subtree). Returns `None` on a cycle or a
/// non-label in the label column. An empty relation decodes to the
/// empty forest.
pub fn decode<K: Semiring>(rel: &KRelation<K>) -> Option<Forest<K>> {
    let mut children: BTreeMap<RelValue, Vec<(RelValue, axml_uxml::Label, K)>> = BTreeMap::new();
    for (t, k) in rel.iter() {
        let (pid, nid, label) = (&t[0], &t[1], t[2].as_label()?);
        children
            .entry(pid.clone())
            .or_default()
            .push((nid.clone(), label, k.clone()));
    }
    let mut out = Forest::new();
    let Some(roots) = children.get(&RelValue::Node(0)) else {
        return Some(out);
    };
    let mut on_path = std::collections::BTreeSet::new();
    for (nid, label, k) in roots.clone() {
        let t = decode_tree(&nid, label, &children, &mut on_path)?;
        out.insert(t, k);
    }
    Some(out)
}

fn decode_tree<K: Semiring>(
    nid: &RelValue,
    label: axml_uxml::Label,
    children: &BTreeMap<RelValue, Vec<(RelValue, axml_uxml::Label, K)>>,
    on_path: &mut std::collections::BTreeSet<RelValue>,
) -> Option<Tree<K>> {
    if !on_path.insert(nid.clone()) {
        return None; // cycle through nid
    }
    let mut forest = Forest::new();
    if let Some(kids) = children.get(nid) {
        for (cid, clabel, k) in kids.clone() {
            let sub = decode_tree(&cid, clabel, children, on_path)?;
            forest.insert(sub, k);
        }
    }
    on_path.remove(nid);
    Some(Tree::new(label, forest))
}

/// End-to-end shredded evaluation of a step chain, GC'd and decoded to
/// a forest — the object Theorem 2 equates with direct evaluation.
pub fn eval_steps_via_shredding<K: Semiring>(
    forest: &Forest<K>,
    steps: &[Step],
) -> Result<Forest<K>, DatalogError> {
    let raw = shredded_eval(forest, steps)?;
    let clean = garbage_collect(&raw);
    decode(&clean).ok_or_else(|| DatalogError {
        msg: "shredded result is not forest-shaped".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_core::ast::{Axis, NodeTest, Step};
    use axml_semiring::{NatPoly, Var};
    use axml_uxml::{parse_forest, Label};

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    fn fig4_source() -> Forest<NatPoly> {
        parse_forest(
            "<a> <b {x1}> <a> c {y3} d </a> </b> <c {y1}> <d> <a> c {y2} b {x2} </a> </d> </c> </a>",
        )
        .unwrap()
    }

    fn dsc(l: &str) -> Step {
        Step {
            axis: Axis::Descendant,
            test: NodeTest::Label(Label::new(l)),
        }
    }

    #[test]
    fn shred_assigns_dfs_ids() {
        let f = parse_forest::<NatPoly>("<a> b {q} </a> c {r}").unwrap();
        let e = shred(&f);
        assert_eq!(e.len(), 3);
        // root a = nid 1 (pid 0), child b = nid 2, root c = nid 3
        assert_eq!(
            e.get(&vec![
                RelValue::Node(0),
                RelValue::Node(1),
                RelValue::label("a")
            ]),
            NatPoly::one()
        );
        assert_eq!(
            e.get(&vec![
                RelValue::Node(1),
                RelValue::Node(2),
                RelValue::label("b")
            ]),
            np("q")
        );
        assert_eq!(
            e.get(&vec![
                RelValue::Node(0),
                RelValue::Node(3),
                RelValue::label("c")
            ]),
            np("r")
        );
    }

    #[test]
    fn paper_section7_table_with_x1_zero() {
        // The paper evaluates //c on the Fig 4 source with x1 := 0 and
        // lists the E′ tuples (up to its node numbering). We substitute
        // x1 ↦ 0 (keeping y1, y2 symbolic) and check the two root
        // tuples and the overall counts.
        let subst = std::collections::BTreeMap::from([(Var::new("x1"), NatPoly::zero())]);
        let f = axml_uxml::hom::substitute_forest(&fig4_source(), &subst);
        let e2 = shredded_eval(&f, &[dsc("c")]).unwrap();

        // Root tuples: (0, f(nc), c)^{y1} and (0, f(nc2), c)^{y1·y2}.
        let roots: Vec<(&Vec<RelValue>, &NatPoly)> = e2
            .iter()
            .filter(|(t, _)| t[0] == RelValue::Node(0))
            .collect();
        assert_eq!(roots.len(), 2);
        let anns: Vec<String> = roots.iter().map(|(_, k)| k.to_string()).collect();
        assert!(anns.contains(&"y1".to_owned()), "{anns:?}");
        assert!(anns.contains(&"y1*y2".to_owned()), "{anns:?}");

        // Copied structure: with the b-branch zeroed at its root edge,
        // E retains the b-subtree's inner tuples but drops the b tuple
        // itself; after GC only the c{y1}-subtree copies survive.
        let clean = garbage_collect(&e2);
        assert!(clean.len() < e2.len(), "garbage must exist and be removed");
    }

    #[test]
    fn theorem2_on_fig4() {
        // decode(ψ(φ(v))) equals direct evaluation of //c (Fig 4).
        let f = fig4_source();
        let shredded = eval_steps_via_shredding(&f, &[dsc("c")]).unwrap();
        let direct = axml_core::eval_step(&f, dsc("c"));
        assert_eq!(shredded, direct);
        // and the Fig 4 annotation q1 = x1·y3 + y1·y2 on the leaf c
        assert_eq!(shredded.get(&axml_uxml::leaf("c")), np("x1*y3 + y1*y2"));
    }

    #[test]
    fn theorem2_on_step_chains() {
        let f = fig4_source();
        let chains: Vec<Vec<Step>> = vec![
            vec![Step {
                axis: Axis::Child,
                test: NodeTest::Wildcard,
            }],
            vec![
                Step {
                    axis: Axis::Child,
                    test: NodeTest::Wildcard,
                },
                Step {
                    axis: Axis::Child,
                    test: NodeTest::Wildcard,
                },
            ],
            vec![
                dsc("a"),
                Step {
                    axis: Axis::Child,
                    test: NodeTest::Label(Label::new("c")),
                },
            ],
            vec![Step {
                axis: Axis::SelfAxis,
                test: NodeTest::Label(Label::new("a")),
            }],
            vec![Step {
                axis: Axis::StrictDescendant,
                test: NodeTest::Label(Label::new("c")),
            }],
            vec![dsc("c"), dsc("b")],
        ];
        for steps in chains {
            let shredded = eval_steps_via_shredding(&f, &steps).unwrap();
            let mut direct = f.clone();
            for s in &steps {
                direct = axml_core::eval_step(&direct, *s);
            }
            assert_eq!(shredded, direct, "mismatch on {steps:?}");
        }
    }

    #[test]
    fn garbage_collect_keeps_reachable_only() {
        let mut rel = KRelation::<NatPoly>::new(edge_schema());
        rel.insert(
            vec![RelValue::Node(0), RelValue::Node(1), RelValue::label("a")],
            NatPoly::one(),
        );
        rel.insert(
            vec![RelValue::Node(1), RelValue::Node(2), RelValue::label("b")],
            NatPoly::one(),
        );
        // orphan: parent 99 never reachable
        rel.insert(
            vec![
                RelValue::Node(99),
                RelValue::Node(100),
                RelValue::label("z"),
            ],
            NatPoly::one(),
        );
        let clean = garbage_collect(&rel);
        assert_eq!(clean.len(), 2);
    }

    #[test]
    fn decode_merges_value_identical_siblings() {
        // two distinct nodes, same value, same parent → one UXML child
        let mut rel = KRelation::<NatPoly>::new(edge_schema());
        rel.insert(
            vec![RelValue::Node(0), RelValue::Node(1), RelValue::label("r")],
            NatPoly::one(),
        );
        rel.insert(
            vec![RelValue::Node(1), RelValue::Node(2), RelValue::label("c")],
            np("p"),
        );
        rel.insert(
            vec![RelValue::Node(1), RelValue::Node(3), RelValue::label("c")],
            np("q"),
        );
        let f = decode(&rel).unwrap();
        let root = f.trees().next().unwrap();
        assert_eq!(root.children().len(), 1);
        assert_eq!(root.children().get(&axml_uxml::leaf("c")), np("p + q"));
    }

    #[test]
    fn decode_duplicates_shared_nodes() {
        // nid 1 is both a root and a child of node 2 (the ψ-output DAG
        // shape): the subtree is materialized at both positions.
        let mut rel = KRelation::<NatPoly>::new(edge_schema());
        rel.insert(
            vec![RelValue::Node(0), RelValue::Node(1), RelValue::label("a")],
            np("p"),
        );
        rel.insert(
            vec![RelValue::Node(0), RelValue::Node(2), RelValue::label("b")],
            NatPoly::one(),
        );
        rel.insert(
            vec![RelValue::Node(2), RelValue::Node(1), RelValue::label("a")],
            np("q"),
        );
        let f = decode(&rel).unwrap();
        assert_eq!(f.get(&axml_uxml::leaf("a")), np("p"));
        let b = parse_forest::<NatPoly>("<b> a {q} </b>")
            .unwrap()
            .trees()
            .next()
            .unwrap()
            .clone();
        assert_eq!(f.get(&b), NatPoly::one());
    }

    #[test]
    fn decode_rejects_cycles() {
        let mut rel = KRelation::<NatPoly>::new(edge_schema());
        rel.insert(
            vec![RelValue::Node(0), RelValue::Node(1), RelValue::label("a")],
            NatPoly::one(),
        );
        rel.insert(
            vec![RelValue::Node(1), RelValue::Node(2), RelValue::label("b")],
            NatPoly::one(),
        );
        rel.insert(
            vec![RelValue::Node(2), RelValue::Node(1), RelValue::label("a")],
            NatPoly::one(),
        );
        assert!(decode(&rel).is_none());
    }

    #[test]
    fn shred_decode_roundtrip() {
        let f = fig4_source();
        let rt = decode(&shred(&f)).unwrap();
        assert_eq!(rt, f);
    }
}
