//! Incremental view maintenance for the shredded route (document
//! churn, PR 9).
//!
//! The shredded pipeline is `shred → ψ-Datalog fixpoint → gc → decode`
//! (Theorem 2). Under document *edits* most of that work is wasted:
//! the edge relation `E` of the new document differs from the old one
//! in O(edited subtree + spine) facts. This module maintains the
//! correspondence between a document and its shredding across edits:
//!
//! - [`ShadowDoc`] mirrors the value forest one node per forest entry,
//!   remembering the shred node id assigned to each entry. Forests are
//!   keyed on tree *value* (value-identical siblings merge at
//!   construction), so the mirror is exact: entry ↔ shadow node.
//! - [`ShadowDoc::sync`] diffs the mirror against the edited forest
//!   level by level and emits an [`OwnedDelta`]: facts to retire and
//!   facts to add. Unchanged subtrees keep their ids and produce no
//!   delta (a no-op edit yields an empty delta); a changed entry whose
//!   label and annotation survive keeps its id (its own `E` fact is
//!   unchanged) and recurses; everything else retires its whole old
//!   subtree and re-shreds the replacement with *fresh* ids.
//!
//! Fresh ids never collide with ids ever used before (`next_id` is
//! monotone), which gives the **deletion exactness** property the
//! incremental solver relies on: every retired fact mentions a retired
//! id in a node position, retired ids occur in *no* retained fact, and
//! — for ψ programs without filters, whose every rule head retains
//! every body node variable — any IDB tuple derived using a retired
//! fact mentions a retired id (possibly inside a Skolem term). Pruning
//! IDB tuples that mention retired ids (see [`prune_retired`])
//! therefore yields exactly the fixpoint over the retained EDB, and
//! [`crate::datalog::eval_datalog_idb_resume`] can continue the
//! semi-naive fixpoint from the added facts alone. Filter queries drop
//! a body node variable in ψ's qualifier projection, so their cached
//! IDB state cannot be pruned exactly — callers fall back to a full
//! re-solve over the (still incrementally maintained) edge relation.

use crate::krel::{KRelation, RelValue, Tuple};
use crate::shred::edge_schema;
use axml_semiring::{Semiring, SemiringHom};
use axml_uxml::{Forest, Label, Tree};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One forest entry in the mirror: the value tree it corresponds to,
/// its annotation in the containing forest, the shred node id assigned
/// to it, and mirrors of its children.
#[derive(Clone, Debug)]
pub struct ShadowNode<K: Semiring> {
    /// The shred node id (`E(parent, id, label)` carries it).
    pub id: u64,
    /// The value subtree this entry mirrors.
    pub tree: Tree<K>,
    /// The entry's annotation in its containing forest.
    pub ann: K,
    /// Mirrors of `tree.children()`, one per entry.
    pub kids: Vec<ShadowNode<K>>,
}

/// A document's shredding mirror: node-id assignment for every forest
/// entry, plus the monotone id allocator.
#[derive(Clone, Debug)]
pub struct ShadowDoc<K: Semiring> {
    next_id: u64,
    roots: Vec<ShadowNode<K>>,
}

/// One added edge fact `E(pid, nid, label)`; the annotation is kept
/// alongside in [`OwnedDelta::added`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AddedFact {
    /// Parent node id (0 = top level).
    pub pid: u64,
    /// The new node's id.
    pub nid: u64,
    /// The new node's label.
    pub label: Label,
}

/// The edge-relation delta produced by one [`ShadowDoc::sync`]: ids to
/// retire plus added facts with their annotations. Every old `E` fact
/// mentioning a retired id (as parent or child) is gone from the new
/// shredding; no retained or added fact mentions any retired id.
#[derive(Clone, Debug)]
pub struct OwnedDelta<K: Semiring> {
    /// Ids retired by the edit.
    pub retired: Vec<u64>,
    /// Added facts with their annotations.
    pub added: Vec<(AddedFact, K)>,
}

impl<K: Semiring> OwnedDelta<K> {
    /// True when the edit changed nothing in the edge relation.
    pub fn is_empty(&self) -> bool {
        self.retired.is_empty() && self.added.is_empty()
    }

    /// Map the added annotations through a homomorphism (retired ids
    /// are annotation-free).
    pub fn map_annotations<S: Semiring, H: SemiringHom<K, S>>(&self, h: &H) -> OwnedDelta<S> {
        OwnedDelta {
            retired: self.retired.clone(),
            added: self
                .added
                .iter()
                .map(|(f, k)| (f.clone(), h.apply(k)))
                .collect(),
        }
    }

    /// Apply this delta to an edge relation: drop facts mentioning
    /// retired ids, insert the added facts. `rel` must be the edge
    /// relation of the pre-edit document (in the same semiring).
    pub fn apply_to_edges(&self, rel: &KRelation<K>) -> KRelation<K> {
        let retired: HashSet<u64> = self.retired.iter().copied().collect();
        let mut out = KRelation::new(rel.schema().clone());
        for (t, k) in rel.iter() {
            if !tuple_mentions(t, &retired) {
                out.insert(t.clone(), k.clone());
            }
        }
        for (f, k) in &self.added {
            out.insert(fact_tuple(f), k.clone());
        }
        out
    }

    /// [`OwnedDelta::apply_to_edges`] without the rebuild: retain the
    /// surviving facts in place and insert the added ones — O(n)
    /// predicate checks but O(Δ) allocation, which is what the
    /// maintained edge relation on the churn path wants.
    pub fn apply_to_edges_in_place(&self, rel: &mut KRelation<K>) {
        let retired: HashSet<u64> = self.retired.iter().copied().collect();
        rel.retain(|t, _| !tuple_mentions(t, &retired));
        for (f, k) in &self.added {
            rel.insert(fact_tuple(f), k.clone());
        }
    }
}

fn fact_tuple(f: &AddedFact) -> Tuple {
    vec![
        RelValue::Node(f.pid),
        RelValue::Node(f.nid),
        RelValue::Label(f.label),
    ]
}

/// Does `v` mention any of the given node ids (recursively through
/// Skolem terms)?
pub fn value_mentions(v: &RelValue, ids: &HashSet<u64>) -> bool {
    match v {
        RelValue::Label(_) => false,
        RelValue::Node(n) => ids.contains(n),
        RelValue::Skolem(_, args) => args.iter().any(|a| value_mentions(a, ids)),
    }
}

/// Does any value of `t` mention any of the given node ids?
pub fn tuple_mentions(t: &Tuple, ids: &HashSet<u64>) -> bool {
    t.iter().any(|v| value_mentions(v, ids))
}

/// Rebuild a relation without the tuples that mention retired ids
/// (recursively through Skolem arguments). For filter-free ψ programs
/// this is *exactly* the IDB fixpoint over the retained EDB — see the
/// module docs for the argument.
pub fn prune_retired<K: Semiring>(rel: &KRelation<K>, retired: &HashSet<u64>) -> KRelation<K> {
    let mut out = KRelation::new(rel.schema().clone());
    for (t, k) in rel.iter() {
        if !tuple_mentions(t, retired) {
            out.insert(t.clone(), k.clone());
        }
    }
    out
}

/// Build the added-facts seed relation for
/// [`crate::datalog::eval_datalog_idb_resume`] from the net additions
/// of a delta span. Facts whose parent was itself retired later in the
/// span must be filtered out by the caller (net additions only).
pub fn added_facts_relation<K: Semiring>(added: &[(AddedFact, K)]) -> KRelation<K> {
    let mut rel = KRelation::new(edge_schema());
    for (f, k) in added {
        rel.insert(fact_tuple(f), k.clone());
    }
    rel
}

/// The decoded result forest of one tier-A (filter-free) shredded
/// query, maintained incrementally across edits. Replaces the
/// per-evaluation `garbage_collect` + `decode` passes — both O(|E2|) —
/// with an O(Δ) patch.
///
/// Soundness rests on the same id discipline as the IDB pruning (see
/// the module docs): a retained id keeps its label, annotation, and
/// ancestor chain across an edit, so a cached result root whose
/// subtree mentions **no** retired id and **no** attach point of an
/// added fact decodes to the identical tree with the identical
/// annotation. Every other root — removed, interior-edited, or brand
/// new — lives entirely inside the retired ∪ fresh id region, so its
/// replacement decodes from tuples whose parent mentions one of those
/// ids. Any observation outside this model (a cached root vanishing
/// while clean, an annotation moving on a clean root, a walk escaping
/// the delta region) makes [`ResultCache::apply_delta`] return `None`
/// and the caller falls back to [`ResultCache::rebuild`].
pub struct ResultCache<K: Semiring> {
    roots: BTreeMap<Tuple, CachedRoot<K>>,
}

struct CachedRoot<K: Semiring> {
    tree: Tree<K>,
    ann: K,
    /// Every document node id mentioned in the root's subtree tuples
    /// (through Skolem arguments) — the dirtiness probe.
    ids: Vec<u64>,
}

impl<K: Semiring> Default for ResultCache<K> {
    fn default() -> Self {
        ResultCache {
            roots: BTreeMap::new(),
        }
    }
}

impl<K: Semiring> ResultCache<K> {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild the cache from a raw (pre-gc) `E2` relation and return
    /// the result forest — `garbage_collect` + `decode` fused into one
    /// pass (walking only from the pid-0 roots never visits garbage).
    /// `None` mirrors `decode`'s failure cases (cycle, non-label in
    /// the label column).
    pub fn rebuild(&mut self, raw_e2: &KRelation<K>) -> Option<Forest<K>> {
        self.roots.clear();
        let zero = RelValue::Node(0);
        let mut children: HashMap<&RelValue, Vec<(&Tuple, &K)>> = HashMap::new();
        let mut live: Vec<(&Tuple, &K)> = Vec::new();
        for (t, k) in raw_e2.iter() {
            if t[0] == zero {
                live.push((t, k));
            } else {
                children.entry(&t[0]).or_default().push((t, k));
            }
        }
        for (t, k) in live {
            let mut ids = Vec::new();
            let mut on_path = HashSet::new();
            let tree = decode_reachable(t, &children, &mut on_path, &mut ids, None)?;
            self.roots.insert(
                t.clone(),
                CachedRoot {
                    tree,
                    ann: k.clone(),
                    ids,
                },
            );
        }
        Some(self.assemble())
    }

    /// Patch the cache after an edit delta and return the new result
    /// forest. `new_e2` is the raw post-edit `E2` fixpoint; `retired`
    /// and `fresh` are the edit's net id sets; `touched` holds the
    /// parent ids of the net added edge facts (the attach points —
    /// retained ids whose copied subtree gained children). `None`
    /// means the delta did not behave like a tier-A edit — the caller
    /// must [`ResultCache::rebuild`].
    pub fn apply_delta(
        &mut self,
        new_e2: &KRelation<K>,
        retired: &HashSet<u64>,
        fresh: &HashSet<u64>,
        touched: &HashSet<u64>,
    ) -> Option<Forest<K>> {
        // 1. Dirty roots: any overlap with retired ids or attach
        //    points. Their replacements decode from the need region.
        let mut need: HashSet<u64> = fresh.clone();
        let dirty: Vec<Tuple> = self
            .roots
            .iter()
            .filter(|(_, r)| {
                r.ids
                    .iter()
                    .any(|i| retired.contains(i) || touched.contains(i))
            })
            .map(|(t, _)| t.clone())
            .collect();
        for t in &dirty {
            if let Some(r) = self.roots.remove(t) {
                need.extend(r.ids);
            }
        }
        // 2. One scan: live roots, plus children of the need region.
        let zero = RelValue::Node(0);
        let mut children: HashMap<&RelValue, Vec<(&Tuple, &K)>> = HashMap::new();
        let mut live: Vec<(&Tuple, &K)> = Vec::new();
        for (t, k) in new_e2.iter() {
            if t[0] == zero {
                live.push((t, k));
            } else if value_mentions(&t[0], &need) {
                children.entry(&t[0]).or_default().push((t, k));
            }
        }
        // 3. Clean cached roots must all still be live with their
        //    annotation intact; anything else breaks the model.
        let mut seen = 0usize;
        for (t, k) in live {
            match self.roots.get(t) {
                Some(r) => {
                    if r.ann != *k {
                        return None;
                    }
                    seen += 1;
                }
                None => {
                    let mut ids = Vec::new();
                    let mut on_path = HashSet::new();
                    let tree = decode_reachable(t, &children, &mut on_path, &mut ids, Some(&need))?;
                    self.roots.insert(
                        t.clone(),
                        CachedRoot {
                            tree,
                            ann: k.clone(),
                            ids,
                        },
                    );
                    seen += 1;
                }
            }
        }
        if seen != self.roots.len() {
            return None; // a clean cached root vanished from the fixpoint
        }
        Some(self.assemble())
    }

    /// The cached result forest (value-identical roots merge, exactly
    /// as `decode` merges them).
    pub fn assemble(&self) -> Forest<K> {
        let mut out = Forest::new();
        for r in self.roots.values() {
            out.insert(r.tree.clone(), r.ann.clone());
        }
        out
    }
}

/// Decode the subtree hanging off one `E2` tuple from a children-by-pid
/// map, collecting every mentioned document id into `ids`. With
/// `need = Some(set)`, bail (`None`) if the walk mentions an id outside
/// the set — the caller's children map only covers that region, so an
/// escape would silently truncate the tree.
fn decode_reachable<'a, K: Semiring>(
    t: &'a Tuple,
    children: &HashMap<&'a RelValue, Vec<(&'a Tuple, &'a K)>>,
    on_path: &mut HashSet<&'a RelValue>,
    ids: &mut Vec<u64>,
    need: Option<&HashSet<u64>>,
) -> Option<Tree<K>> {
    let nid = &t[1];
    let label = t[2].as_label()?;
    if !on_path.insert(nid) {
        return None; // cycle through nid
    }
    let before = ids.len();
    collect_ids(nid, ids);
    if let Some(need) = need {
        if ids[before..].iter().any(|i| !need.contains(i)) {
            return None;
        }
    }
    let mut forest = Forest::new();
    if let Some(kids) = children.get(nid) {
        for &(ct, ck) in kids {
            let sub = decode_reachable(ct, children, on_path, ids, need)?;
            forest.insert(sub, ck.clone());
        }
    }
    on_path.remove(nid);
    Some(Tree::new(label, forest))
}

/// Append every `Node` id mentioned by `v` (through Skolem arguments).
fn collect_ids(v: &RelValue, out: &mut Vec<u64>) {
    match v {
        RelValue::Label(_) => {}
        RelValue::Node(n) => out.push(*n),
        RelValue::Skolem(_, args) => {
            for a in args {
                collect_ids(a, out);
            }
        }
    }
}

impl<K: Semiring> ShadowDoc<K> {
    /// Mirror a forest, assigning fresh ids in document order (ids
    /// start at 1; 0 is the virtual root, as in [`crate::shred::shred`]).
    pub fn from_forest(forest: &Forest<K>) -> Self {
        let mut doc = ShadowDoc {
            next_id: 1,
            roots: Vec::new(),
        };
        doc.roots = forest
            .iter_document()
            .into_iter()
            .map(|(t, k)| mirror_fresh(&mut doc.next_id, t, k))
            .collect();
        doc
    }

    /// The edge relation of the mirrored document, with annotations
    /// mapped through `h` — byte-equivalent (up to node-id choice) to
    /// `shred(map(forest))`. Used to (re)build per-semiring edge
    /// relations from the canonical mirror.
    pub fn edges_mapped<S: Semiring, H: SemiringHom<K, S>>(&self, h: &H) -> KRelation<S> {
        let mut rel = KRelation::new(edge_schema());
        self.for_each_fact(&mut |pid, nid, label, ann| {
            rel.insert(
                vec![
                    RelValue::Node(pid),
                    RelValue::Node(nid),
                    RelValue::Label(label),
                ],
                h.apply(ann),
            );
        });
        rel
    }

    /// Visit every edge fact `E(pid, nid, label) @ ann` of the mirror.
    pub fn for_each_fact(&self, f: &mut impl FnMut(u64, u64, Label, &K)) {
        fn walk<K: Semiring>(pid: u64, n: &ShadowNode<K>, f: &mut impl FnMut(u64, u64, Label, &K)) {
            f(pid, n.id, n.tree.label(), &n.ann);
            for kid in &n.kids {
                walk(n.id, kid, f);
            }
        }
        for r in &self.roots {
            walk(0, r, f);
        }
    }

    /// Total number of mirrored entries (diagnostics).
    pub fn node_count(&self) -> usize {
        fn count<K: Semiring>(n: &ShadowNode<K>) -> usize {
            1 + n.kids.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    /// Diff the mirror against the edited forest and update it in
    /// place, returning the net edge delta. Matching per level, in
    /// document order:
    ///
    /// 1. a new entry value- and annotation-identical to an old kid
    ///    keeps that kid's entire mirror subtree (no delta);
    /// 2. otherwise, a new entry whose label and annotation match an
    ///    old kid *adopts* its id — the kid's own `E` fact is
    ///    unchanged — and the diff recurses into the children;
    /// 3. old kids left unmatched retire their whole subtree; new
    ///    entries left unmatched shred fresh with brand-new ids.
    ///
    /// Ambiguous matches resolve first-to-first in document order: any
    /// resolution is correct (ids are opaque), only delta size varies.
    pub fn sync(&mut self, new: &Forest<K>) -> OwnedDelta<K> {
        let mut delta = OwnedDelta {
            retired: Vec::new(),
            added: Vec::new(),
        };
        let old_roots = std::mem::take(&mut self.roots);
        self.roots = sync_level(&mut self.next_id, 0, old_roots, new, &mut delta);
        delta
    }
}

/// Freshly mirror `t @ ann` without recording facts (initial build).
fn mirror_fresh<K: Semiring>(next_id: &mut u64, t: &Tree<K>, ann: &K) -> ShadowNode<K> {
    let id = *next_id;
    *next_id += 1;
    let kids = t
        .children_document()
        .iter()
        .map(|(c, ck)| mirror_fresh(next_id, c, ck))
        .collect();
    ShadowNode {
        id,
        tree: t.clone(),
        ann: ann.clone(),
        kids,
    }
}

/// Freshly mirror `t @ ann` under parent `pid`, recording each new
/// fact in `added`.
fn shred_fresh<K: Semiring>(
    next_id: &mut u64,
    pid: u64,
    t: &Tree<K>,
    ann: &K,
    added: &mut Vec<(AddedFact, K)>,
) -> ShadowNode<K> {
    let id = *next_id;
    *next_id += 1;
    added.push((
        AddedFact {
            pid,
            nid: id,
            label: t.label(),
        },
        ann.clone(),
    ));
    let kids = t
        .children_document()
        .iter()
        .map(|(c, ck)| shred_fresh(next_id, id, c, ck, added))
        .collect();
    ShadowNode {
        id,
        tree: t.clone(),
        ann: ann.clone(),
        kids,
    }
}

fn retire_subtree<K: Semiring>(n: ShadowNode<K>, retired: &mut Vec<u64>) {
    retired.push(n.id);
    for kid in n.kids {
        retire_subtree(kid, retired);
    }
}

fn sync_level<K: Semiring>(
    next_id: &mut u64,
    pid: u64,
    old: Vec<ShadowNode<K>>,
    new: &Forest<K>,
    delta: &mut OwnedDelta<K>,
) -> Vec<ShadowNode<K>> {
    let new_entries = new.iter_document();
    // Pass 1: exact (tree, ann) matches keep their subtree untouched.
    // Tree values are unique within a forest (the forest is keyed on
    // them), so a value-keyed index has one slot per old kid.
    let mut by_tree: HashMap<&Tree<K>, usize> = HashMap::with_capacity(old.len());
    for (i, kid) in old.iter().enumerate() {
        by_tree.insert(&kid.tree, i);
    }
    let mut taken: Vec<Option<usize>> = vec![None; new_entries.len()];
    let mut used = vec![false; old.len()];
    for (j, (t, a)) in new_entries.iter().enumerate() {
        if let Some(&i) = by_tree.get(*t) {
            if !used[i] && old[i].ann == **a {
                used[i] = true;
                taken[j] = Some(i);
            }
        }
    }
    drop(by_tree);
    // Pass 2: label+annotation matches adopt the old id and recurse.
    let mut by_label: HashMap<Label, Vec<usize>> = HashMap::new();
    for (i, kid) in old.iter().enumerate() {
        if !used[i] {
            by_label.entry(kid.tree.label()).or_default().push(i);
        }
    }
    for (j, (t, a)) in new_entries.iter().enumerate() {
        if taken[j].is_some() {
            continue;
        }
        if let Some(cands) = by_label.get_mut(&t.label()) {
            if let Some(pos) = cands.iter().position(|&i| !used[i] && old[i].ann == **a) {
                let i = cands.remove(pos);
                used[i] = true;
                taken[j] = Some(i);
            }
        }
    }
    // Move matched old kids out; retire the rest.
    let mut slots: Vec<Option<ShadowNode<K>>> = old.into_iter().map(Some).collect();
    let mut result: Vec<ShadowNode<K>> = Vec::with_capacity(new_entries.len());
    for (j, (t, a)) in new_entries.iter().enumerate() {
        match taken[j] {
            Some(i) => {
                let mut kid = slots[i].take().expect("matched old kid taken twice");
                if kid.tree != **t {
                    // Adopted: same id, same fact; children differ.
                    let old_kids = std::mem::take(&mut kid.kids);
                    kid.kids = sync_level(next_id, kid.id, old_kids, t.children(), delta);
                    kid.tree = (*t).clone();
                }
                result.push(kid);
            }
            None => {
                result.push(shred_fresh(next_id, pid, t, a, &mut delta.added));
            }
        }
    }
    for kid in slots.into_iter().flatten() {
        retire_subtree(kid, &mut delta.retired);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shred::shred;
    use axml_semiring::{IdentityHom, NatPoly};
    use std::collections::BTreeMap;

    fn parse(src: &str) -> Forest<NatPoly> {
        axml_uxml::parse_forest::<NatPoly>(src).expect("parse")
    }

    /// Canonical multiset of (pid-label-path–independent) edge facts
    /// can't be compared across different id assignments directly;
    /// instead compare decoded forests — ids are opaque.
    fn facts_by_id<K: Semiring>(rel: &KRelation<K>) -> BTreeMap<Tuple, K> {
        rel.iter().map(|(t, k)| (t.clone(), k.clone())).collect()
    }

    #[test]
    fn mirror_matches_shred_shape() {
        let f = parse("<a> <b/> <c {x}> <d/> </c> </a> <e/>");
        let doc = ShadowDoc::from_forest(&f);
        let mirrored = doc.edges_mapped(&IdentityHom);
        let shredded = shred(&f);
        // Same number of facts; same multiset of (label, ann) pairs.
        assert_eq!(mirrored.len(), shredded.len());
        assert_eq!(doc.node_count(), shredded.len());
    }

    #[test]
    fn noop_sync_is_empty() {
        let f = parse("<a> <b/> <c {x}> <d/> </c> </a>");
        let mut doc = ShadowDoc::from_forest(&f);
        let before = facts_by_id(&doc.edges_mapped(&IdentityHom));
        let delta = doc.sync(&f);
        assert!(delta.is_empty());
        assert_eq!(before, facts_by_id(&doc.edges_mapped(&IdentityHom)));
    }

    #[test]
    fn sync_delta_reconstructs_edges() {
        let old = parse("<a> <b/> <c {x}> <d/> </c> </a> <e/>");
        let new = parse("<a> <b/> <c {x}> <q/> <d2/> </c> </a> <e/>");
        let mut doc = ShadowDoc::from_forest(&old);
        let e_old = doc.edges_mapped(&IdentityHom);
        let delta = doc.sync(&new);
        assert!(!delta.is_empty());
        // Applying the delta to the old edges gives the new mirror's
        // edges exactly.
        let patched = delta.apply_to_edges(&e_old);
        let rebuilt = doc.edges_mapped(&IdentityHom);
        assert_eq!(facts_by_id(&patched), facts_by_id(&rebuilt));
        // Unchanged subtrees kept their ids: <b/>, <e/> facts intact.
        let old_facts = facts_by_id(&e_old);
        let new_facts = facts_by_id(&rebuilt);
        let kept = old_facts
            .iter()
            .filter(|(t, _)| new_facts.contains_key(*t))
            .count();
        assert!(kept >= 3, "spine reuse: kept {kept} of {}", old_facts.len());
    }

    #[test]
    fn retired_and_added_are_disjoint() {
        let old = parse("<a> <b> <x/> </b> </a>");
        let new = parse("<a> <b> <y/> </b> </a>");
        let mut doc = ShadowDoc::from_forest(&old);
        let delta = doc.sync(&new);
        let retired: HashSet<u64> = delta.retired.iter().copied().collect();
        for (f, _) in &delta.added {
            assert!(!retired.contains(&f.nid), "fresh id collides with retired");
        }
        // <a> and <b> keep their ids (label+ann adoption), only <x/>
        // retires and <y/> is fresh.
        assert_eq!(delta.retired.len(), 1);
        assert_eq!(delta.added.len(), 1);
    }
}
