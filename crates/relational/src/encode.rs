//! Encoding K-relations as K-UXML and translating RA⁺ into K-UXQuery
//! (Prop 1): "Let Q be a query in positive relational algebra, and I a
//! K-relational database instance. Let v be the K-UXML encoding of I,
//! and p the translation of Q into K-UXQuery. Then p(v) encodes Q(I)."
//!
//! The encoding is the Fig 5 layout:
//!
//! ```text
//! <D> <R> <t {x1}> <A> a </A> <B> b </B> <C> c </C> </t> … </R>
//!     <S> … </S> </D>
//! ```
//!
//! — one `t`-node per tuple carrying the tuple's annotation; attribute
//! nodes and value leaves carry `1` (the richer Fig 6 annotations are a
//! feature of UXML the relational model cannot express; Prop 1 concerns
//! the standard encoding).

use crate::krel::KRelation;
use crate::ra::{Database, RaExpr};
use axml_core::ast::{Axis, ElementName, NodeTest, Step, SurfaceExpr};
use axml_semiring::Semiring;
use axml_uxml::{Forest, Label, Tree};
use std::fmt;

/// Encode one K-relation as the forest of its `t`-nodes.
pub fn encode_relation<K: Semiring>(rel: &KRelation<K>) -> Forest<K> {
    let mut out = Forest::new();
    for (tuple, k) in rel.iter() {
        let mut fields = Forest::new();
        for (attr, value) in rel.schema().attrs().iter().zip(tuple.iter()) {
            let leaf = Tree::leaf(Label::new(&value.to_string()));
            fields.insert(Tree::new(Label::new(attr), Forest::unit(leaf)), K::one());
        }
        out.insert(Tree::new("t", fields), k.clone());
    }
    out
}

/// Encode a database as the singleton forest `{<D> <R1>…</R1> … </D>}`.
pub fn encode_database<K: Semiring>(db: &Database<K>) -> Forest<K> {
    let mut rels = Forest::new();
    for (name, rel) in db.iter() {
        rels.insert(Tree::new(Label::new(name), encode_relation(rel)), K::one());
    }
    Forest::unit(Tree::new("D", rels))
}

/// Errors from reading a UXML value back as a K-relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "relation decode error: {}", self.msg)
    }
}

impl std::error::Error for DecodeError {}

/// Decode a forest of `t`-nodes back into a K-relation with the given
/// attribute order. Each `t`-node must have exactly the schema's
/// attribute children, each wrapping one leaf value annotated `1`.
pub fn decode_relation<K: Semiring>(
    forest: &Forest<K>,
    attrs: &[&str],
) -> Result<KRelation<K>, DecodeError> {
    let schema = crate::krel::Schema::new(attrs.iter().map(|s| s.to_string()));
    let mut rel = KRelation::new(schema);
    for (t, k) in forest.iter() {
        if t.label().name() != "t" {
            return Err(DecodeError {
                msg: format!("expected a t-node, found <{}>", t.label()),
            });
        }
        let mut tuple = Vec::with_capacity(attrs.len());
        for attr in attrs {
            let attr_label = Label::new(attr);
            let mut found = None;
            for (field, fk) in t.children().iter() {
                if field.label() == attr_label {
                    if !fk.is_one() {
                        return Err(DecodeError {
                            msg: format!("attribute {attr} carries a non-1 annotation"),
                        });
                    }
                    let mut values = field.children().iter();
                    match (values.next(), values.next()) {
                        (Some((leafv, vk)), None) if vk.is_one() && leafv.is_leaf() => {
                            found = Some(crate::krel::RelValue::Label(leafv.label()));
                        }
                        _ => {
                            return Err(DecodeError {
                                msg: format!("attribute {attr} is not a single plain leaf"),
                            })
                        }
                    }
                }
            }
            match found {
                Some(v) => tuple.push(v),
                None => {
                    return Err(DecodeError {
                        msg: format!("tuple is missing attribute {attr}"),
                    })
                }
            }
        }
        rel.insert(tuple, k.clone());
    }
    Ok(rel)
}

/// Translate an RA⁺ expression into a K-UXQuery over the encoded
/// database bound to `$d`. The result query produces the forest of
/// `t`-nodes encoding the result relation (annotations included).
pub fn ra_to_uxquery<K: Semiring>(
    e: &RaExpr,
    db: &Database<K>,
) -> Result<SurfaceExpr<K>, DecodeError> {
    let (q, _schema) = translate(e, db)?;
    Ok(q)
}

/// The output schema of an RA⁺ expression (attribute names in order).
pub fn ra_schema<K: Semiring>(e: &RaExpr, db: &Database<K>) -> Result<Vec<String>, DecodeError> {
    translate(e, db).map(|(_, s)| s)
}

fn translate<K: Semiring>(
    e: &RaExpr,
    db: &Database<K>,
) -> Result<(SurfaceExpr<K>, Vec<String>), DecodeError> {
    use SurfaceExpr as S;
    let fresh = |hint: &str| -> String {
        use std::sync::atomic::{AtomicU64, Ordering};
        static C: AtomicU64 = AtomicU64::new(0);
        format!("{hint}%r{}", C.fetch_add(1, Ordering::Relaxed))
    };
    let path = |e: S<K>, axis: Axis, test: NodeTest| S::Path(Box::new(e), Step { axis, test });
    let child = |e: S<K>, name: &str| path(e, Axis::Child, NodeTest::Label(Label::new(name)));
    let kids = |e: S<K>| path(e, Axis::Child, NodeTest::Wildcard);
    let var = |x: &str| S::Var(x.to_owned());
    // rebuild <t>{ $x/A1, …, $y/B1, … }</t> from attr sources
    let t_node = |parts: Vec<S<K>>| {
        let content = parts
            .into_iter()
            .reduce(|a, b| S::Seq(Box::new(a), Box::new(b)))
            .unwrap_or(S::Empty);
        S::Element {
            name: ElementName::Static(Label::new("t")),
            content: Box::new(content),
        }
    };

    match e {
        RaExpr::Rel(name) => {
            let rel = db.get(name).ok_or_else(|| DecodeError {
                msg: format!("unknown relation {name:?}"),
            })?;
            // $d/R/*
            let q = kids(child(var("d"), name));
            Ok((q, rel.schema().attrs().to_vec()))
        }
        RaExpr::Project { input, attrs } => {
            let (src, in_schema) = translate(input, db)?;
            for a in attrs {
                if !in_schema.contains(a) {
                    return Err(DecodeError {
                        msg: format!("unknown attribute {a:?} in projection"),
                    });
                }
            }
            let t = fresh("t");
            let parts: Vec<S<K>> = attrs
                .iter()
                .map(|a| child(S::Paren(Box::new(var(&t))), a))
                .collect();
            let q = S::For {
                binders: vec![(t.clone(), src)],
                where_eq: None,
                body: Box::new(S::Paren(Box::new(t_node(parts)))),
            };
            Ok((q, attrs.clone()))
        }
        RaExpr::Union(l, r) => {
            let (ql, sl) = translate(l, db)?;
            let (qr, sr) = translate(r, db)?;
            if sl != sr {
                return Err(DecodeError {
                    msg: format!("union of incompatible schemas {sl:?} / {sr:?}"),
                });
            }
            Ok((S::Seq(Box::new(ql), Box::new(qr)), sl))
        }
        RaExpr::SelectConst { input, attr, value } => {
            let (src, schema) = translate(input, db)?;
            if !schema.contains(attr) {
                return Err(DecodeError {
                    msg: format!("unknown attribute {attr:?} in selection"),
                });
            }
            let t = fresh("t");
            let a = fresh("a");
            // for $t in src return for $a in $t/attr/* return
            //   if (name($a) = value) then ($t) else ()
            let inner = S::For {
                binders: vec![(a.clone(), kids(child(S::Paren(Box::new(var(&t))), attr)))],
                where_eq: None,
                body: Box::new(S::If {
                    l: Box::new(S::Name(Box::new(var(&a)))),
                    r: Box::new(S::LabelLit(Label::new(&value.to_string()))),
                    then: Box::new(S::Paren(Box::new(var(&t)))),
                    els: Box::new(S::Empty),
                }),
            };
            let q = S::For {
                binders: vec![(t, src)],
                where_eq: None,
                body: Box::new(inner),
            };
            Ok((q, schema))
        }
        RaExpr::SelectEq { input, a1, a2 } => {
            let (src, schema) = translate(input, db)?;
            for a in [a1, a2] {
                if !schema.contains(a) {
                    return Err(DecodeError {
                        msg: format!("unknown attribute {a:?} in selection"),
                    });
                }
            }
            let t = fresh("t");
            let q = S::For {
                binders: vec![(t.clone(), src)],
                where_eq: Some((
                    Box::new(child(S::Paren(Box::new(var(&t))), a1)),
                    Box::new(child(S::Paren(Box::new(var(&t))), a2)),
                )),
                body: Box::new(S::Paren(Box::new(var(&t)))),
            };
            Ok((q, schema))
        }
        RaExpr::Join(l, r) => {
            let (ql, sl) = translate(l, db)?;
            let (qr, sr) = translate(r, db)?;
            let common: Vec<String> = sl.iter().filter(|a| sr.contains(a)).cloned().collect();
            let r_only: Vec<String> = sr.iter().filter(|a| !common.contains(a)).cloned().collect();
            let mut out_schema = sl.clone();
            out_schema.extend(r_only.iter().cloned());

            let x = fresh("x");
            let y = fresh("y");
            let mut parts: Vec<S<K>> = sl
                .iter()
                .map(|a| child(S::Paren(Box::new(var(&x))), a))
                .collect();
            parts.extend(r_only.iter().map(|a| child(S::Paren(Box::new(var(&y))), a)));
            // innermost body
            let mut body = S::Paren(Box::new(t_node(parts)));
            // one where-style equality wrapper per common attribute,
            // generated in the paper's desugared form
            for attr in common.iter().rev() {
                let a = fresh("a");
                let b = fresh("b");
                body = S::For {
                    binders: vec![(a.clone(), kids(child(S::Paren(Box::new(var(&x))), attr)))],
                    where_eq: None,
                    body: Box::new(S::For {
                        binders: vec![(b.clone(), kids(child(S::Paren(Box::new(var(&y))), attr)))],
                        where_eq: None,
                        body: Box::new(S::If {
                            l: Box::new(S::Name(Box::new(var(&a)))),
                            r: Box::new(S::Name(Box::new(var(&b)))),
                            then: Box::new(body),
                            els: Box::new(S::Empty),
                        }),
                    }),
                };
            }
            let q = S::For {
                binders: vec![(x, ql), (y, qr)],
                where_eq: None,
                body: Box::new(body),
            };
            Ok((q, out_schema))
        }
        RaExpr::Rename { input, from, to } => {
            let (src, schema) = translate(input, db)?;
            if !schema.contains(from) {
                return Err(DecodeError {
                    msg: format!("unknown attribute {from:?} in rename"),
                });
            }
            let out_schema: Vec<String> = schema
                .iter()
                .map(|a| if a == from { to.clone() } else { a.clone() })
                .collect();
            let t = fresh("t");
            let parts: Vec<S<K>> = schema
                .iter()
                .zip(out_schema.iter())
                .map(|(old, new)| {
                    if old == new {
                        child(S::Paren(Box::new(var(&t))), old)
                    } else {
                        // element NEW { $t/OLD/* } — rebuild under the new name
                        S::Element {
                            name: ElementName::Static(Label::new(new)),
                            content: Box::new(kids(child(S::Paren(Box::new(var(&t))), old))),
                        }
                    }
                })
                .collect();
            let q = S::For {
                binders: vec![(t.clone(), src)],
                where_eq: None,
                body: Box::new(S::Paren(Box::new(t_node(parts)))),
            };
            Ok((q, out_schema))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::krel::Schema;
    use crate::ra::{eval_ra, fig5_query};
    use axml_core::eval_query;
    use axml_semiring::{Nat, NatPoly};
    use axml_uxml::Value;

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    fn fig5_db() -> Database<NatPoly> {
        let r = KRelation::from_label_rows(
            Schema::new(["A", "B", "C"]),
            [
                (vec!["a", "b", "c"], np("x1")),
                (vec!["d", "b", "e"], np("x2")),
                (vec!["f", "g", "e"], np("x3")),
            ],
        );
        let s = KRelation::from_label_rows(
            Schema::new(["B", "C"]),
            [(vec!["b", "c"], np("x4")), (vec!["g", "c"], np("x5"))],
        );
        Database::new().with("R", r).with("S", s)
    }

    /// Run the Prop-1 round: translate Q, evaluate over the encoding,
    /// decode, compare with RA⁺ evaluation.
    fn check_prop1(q: &RaExpr, db: &Database<NatPoly>) {
        let expected = eval_ra(q, db).expect("RA+ evaluates");
        let v = encode_database(db);
        let uxq = ra_to_uxquery(q, db).expect("translates");
        let out = eval_query(&uxq, &[("d", Value::Set(v))]).expect("UXQuery evaluates");
        let Value::Set(forest) = out else {
            panic!("expected a set")
        };
        let attrs: Vec<&str> = expected
            .schema()
            .attrs()
            .iter()
            .map(|s| s.as_str())
            .collect();
        let decoded = decode_relation(&forest, &attrs).expect("decodes");
        assert_eq!(
            decoded, expected,
            "Prop 1 violated for {q:?}:\nUXQuery gave\n{decoded}\nRA+ gave\n{expected}"
        );
    }

    #[test]
    fn prop1_fig5() {
        check_prop1(&fig5_query(), &fig5_db());
    }

    #[test]
    fn prop1_projections_and_selections() {
        let db = fig5_db();
        check_prop1(&RaExpr::rel("R").project(["A"]), &db);
        check_prop1(&RaExpr::rel("R").project(["B", "C"]), &db);
        check_prop1(&RaExpr::rel("R").select_label("B", "b"), &db);
        check_prop1(&RaExpr::rel("R").select_label("B", "nonexistent"), &db);
    }

    #[test]
    fn prop1_join_on_two_attrs() {
        let db = fig5_db();
        // R ⋈ R' where R' = ρ duplicates — join on B and C simultaneously
        let q = RaExpr::rel("R").project(["B", "C"]).join(RaExpr::rel("S"));
        check_prop1(&q, &db);
    }

    #[test]
    fn prop1_rename_and_union() {
        let db = fig5_db();
        let q = RaExpr::rel("R").project(["B", "C"]).union(RaExpr::rel("S"));
        check_prop1(&q, &db);
        check_prop1(&RaExpr::rel("S").rename("B", "X"), &db);
    }

    #[test]
    fn prop1_select_eq() {
        // build a relation with two comparable columns
        let r = KRelation::from_label_rows(
            Schema::new(["A", "B"]),
            [(vec!["u", "u"], np("k1")), (vec!["u", "w"], np("k2"))],
        );
        let db = Database::new().with("T", r);
        check_prop1(&RaExpr::rel("T").select_eq("A", "B"), &db);
    }

    #[test]
    fn encode_database_shape() {
        let db = fig5_db();
        let f = encode_database(&db);
        assert_eq!(f.len(), 1);
        let d = f.trees().next().unwrap();
        assert_eq!(d.label().name(), "D");
        assert_eq!(d.children().len(), 2); // R and S
    }

    #[test]
    fn decode_rejects_malformed() {
        let f = axml_uxml::parse_forest::<Nat>("<x> </x>").unwrap();
        assert!(decode_relation(&f, &["A"]).is_err());
        let f2 = axml_uxml::parse_forest::<Nat>("<t> <A> a b </A> </t>").unwrap();
        assert!(decode_relation(&f2, &["A"]).is_err());
        let f3 = axml_uxml::parse_forest::<Nat>("<t> <B> b </B> </t>").unwrap();
        assert!(decode_relation(&f3, &["A"]).is_err());
    }

    #[test]
    fn relation_encode_decode_roundtrip() {
        let db = fig5_db();
        let rel = db.get("R").unwrap();
        let f = encode_relation(rel);
        let back = decode_relation(&f, &["A", "B", "C"]).unwrap();
        assert_eq!(&back, rel);
    }
}
