//! K-relations: relations whose tuples are annotated with elements of a
//! commutative semiring (Green, Karvounarakis & Tannen, PODS 2007 —
//! the substrate the paper builds on and compares against in §3/§7).

use axml_semiring::{KSet, Semiring};
use axml_uxml::Label;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A value in a relational tuple: a label, a node id, or a Skolem term
/// (§7 uses Skolem functions to invent node ids in query results).
///
/// Skolem function names are interned [`Label`]s: ψ materializes one
/// `f(·)` value per copied node, so the name must be `Copy`-cheap to
/// clone and id-fast to compare (`BTreeMap` keys compare on every
/// insert).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RelValue {
    /// An atomic label.
    Label(Label),
    /// A node identifier (0 is reserved for "root of a top-level
    /// tree"; see §7).
    Node(u64),
    /// A Skolem term `f(v₁, …, vₙ)`.
    Skolem(Label, Vec<RelValue>),
}

impl RelValue {
    /// Label constructor.
    pub fn label(name: &str) -> Self {
        RelValue::Label(Label::new(name))
    }

    /// The label, if this is one.
    pub fn as_label(&self) -> Option<Label> {
        match self {
            RelValue::Label(l) => Some(*l),
            _ => None,
        }
    }
}

impl fmt::Display for RelValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelValue::Label(l) => write!(f, "{l}"),
            RelValue::Node(n) => write!(f, "{n}"),
            RelValue::Skolem(name, args) => {
                write!(f, "{name}(")?;
                let mut first = true;
                for a in args {
                    if !first {
                        write!(f, ",")?;
                    }
                    first = false;
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A tuple of relational values.
pub type Tuple = Vec<RelValue>;

/// A named-attribute schema. Shared (`Arc`) because every row operation
/// consults it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schema {
    attrs: Arc<Vec<String>>,
}

impl Schema {
    /// Build from attribute names (must be distinct).
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(attrs: I) -> Self {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        for (i, a) in attrs.iter().enumerate() {
            assert!(
                !attrs[..i].contains(a),
                "duplicate attribute {a:?} in schema"
            );
        }
        Schema {
            attrs: Arc::new(attrs),
        }
    }

    /// Attribute names in order.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Index of an attribute.
    pub fn index_of(&self, attr: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }

    /// Attributes shared with another schema (in this schema's order).
    pub fn common(&self, other: &Schema) -> Vec<String> {
        self.attrs
            .iter()
            .filter(|a| other.index_of(a).is_some())
            .cloned()
            .collect()
    }
}

/// A K-relation: a schema plus a [`KSet`] of tuples. Zero-annotated
/// tuples are never stored (the tuple "is not in the relation").
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KRelation<K: Semiring> {
    schema: Schema,
    rows: KSet<Tuple, K>,
}

impl<K: Semiring> KRelation<K> {
    /// An empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        KRelation {
            schema,
            rows: KSet::new(),
        }
    }

    /// Build from rows of labels (convenience for tests/figures).
    pub fn from_label_rows<I>(schema: Schema, rows: I) -> Self
    where
        I: IntoIterator<Item = (Vec<&'static str>, K)>,
    {
        let mut rel = KRelation::new(schema);
        for (cols, k) in rows {
            let tuple: Tuple = cols.iter().map(|c| RelValue::label(c)).collect();
            rel.insert(tuple, k);
        }
        rel
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Add `k` to the annotation of `tuple`.
    pub fn insert(&mut self, tuple: Tuple, k: K) {
        assert_eq!(
            tuple.len(),
            self.schema.arity(),
            "tuple arity does not match schema"
        );
        self.rows.insert(tuple, k);
    }

    /// The annotation of a tuple (0 if absent).
    pub fn get(&self, tuple: &Tuple) -> K {
        self.rows.get(tuple)
    }

    /// Keep only the rows satisfying the predicate, in place.
    pub fn retain<F: FnMut(&Tuple, &K) -> bool>(&mut self, f: F) {
        self.rows.retain(f);
    }

    /// Pointwise union in place, consuming `other` (annotations add).
    /// Schemas must agree; callers check and report, this asserts.
    pub fn union_with(&mut self, other: KRelation<K>) {
        assert_eq!(self.schema, other.schema, "union of incompatible schemas");
        self.rows.union_with(other.rows);
    }

    /// Annotation lookup by labels (convenience).
    pub fn get_labels(&self, cols: &[&str]) -> K {
        let tuple: Tuple = cols.iter().map(|c| RelValue::label(c)).collect();
        self.get(&tuple)
    }

    /// Number of tuples with nonzero annotation.
    pub fn len(&self) -> usize {
        self.rows.support_len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate `(tuple, annotation)` in tuple order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &K)> + '_ {
        self.rows.iter()
    }

    /// The underlying K-set of rows.
    pub fn rows(&self) -> &KSet<Tuple, K> {
        &self.rows
    }

    /// Project a tuple onto attribute indices.
    pub(crate) fn project_tuple(tuple: &[RelValue], idxs: &[usize]) -> Tuple {
        idxs.iter().map(|&i| tuple[i].clone()).collect()
    }

    /// Apply a semiring homomorphism to every annotation.
    pub fn map_annotations<K2: Semiring>(&self, mut h: impl FnMut(&K) -> K2) -> KRelation<K2> {
        KRelation {
            schema: self.schema.clone(),
            rows: self.rows.map_annotations(&mut h, |t| t.clone()),
        }
    }

    /// Build a hash probe-index on the given column positions: rows
    /// grouped by their projection onto `cols`. One `O(|rel|)` pass to
    /// build, `O(1)` expected per probe — the join substrate for the
    /// semi-naive Datalog evaluator and [`crate::ra::natural_join`].
    pub fn index_on(&self, cols: &[usize]) -> RelIndex<'_, K> {
        let mut map: HashMap<Vec<RelValue>, Vec<(&Tuple, &K)>> = HashMap::new();
        for (t, k) in self.iter() {
            map.entry(Self::project_tuple(t, cols))
                .or_default()
                .push((t, k));
        }
        RelIndex { map }
    }
}

/// A hash index over a [`KRelation`]'s rows, keyed by a fixed column
/// projection (see [`KRelation::index_on`]). Borrows the relation.
pub struct RelIndex<'a, K: Semiring> {
    map: HashMap<Vec<RelValue>, Vec<(&'a Tuple, &'a K)>>,
}

impl<'a, K: Semiring> RelIndex<'a, K> {
    /// The rows whose indexed columns equal `key` (empty if none).
    pub fn probe(&self, key: &[RelValue]) -> &[(&'a Tuple, &'a K)] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }
}

impl<K: Semiring> fmt::Display for KRelation<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema.attrs().join(" | "))?;
        for (t, k) in self.iter() {
            let cells: Vec<String> = t.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}  @ {k:?}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_semiring::Nat;

    #[test]
    fn schema_lookup() {
        let s = Schema::new(["A", "B", "C"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("B"), Some(1));
        assert_eq!(s.index_of("Z"), None);
        let t = Schema::new(["B", "D"]);
        assert_eq!(s.common(&t), vec!["B".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn schema_rejects_duplicates() {
        let _ = Schema::new(["A", "A"]);
    }

    #[test]
    fn insert_merges_and_prunes() {
        let mut r = KRelation::<Nat>::new(Schema::new(["A"]));
        r.insert(vec![RelValue::label("x")], Nat(2));
        r.insert(vec![RelValue::label("x")], Nat(3));
        r.insert(vec![RelValue::label("y")], Nat(0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.get_labels(&["x"]), Nat(5));
        assert_eq!(r.get_labels(&["y"]), Nat(0));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut r = KRelation::<Nat>::new(Schema::new(["A", "B"]));
        r.insert(vec![RelValue::label("x")], Nat(1));
    }

    #[test]
    fn skolem_values_display() {
        let v = RelValue::Skolem("f".into(), vec![RelValue::Node(2), RelValue::label("c")]);
        assert_eq!(v.to_string(), "f(2,c)");
    }

    #[test]
    fn map_annotations_hom() {
        let mut r = KRelation::<Nat>::new(Schema::new(["A"]));
        r.insert(vec![RelValue::label("x")], Nat(2));
        r.insert(vec![RelValue::label("z")], Nat(0));
        let b = r.map_annotations(axml_semiring::dup_elim);
        assert_eq!(b.len(), 1);
        assert!(b.get_labels(&["x"]));
    }
}
