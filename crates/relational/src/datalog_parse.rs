//! Text syntax for Datalog programs (Prolog-style conventions):
//!
//! ```text
//! T(X, Y) :- E(X, Y).
//! T(X, Z) :- T(X, Y), E(Y, Z).
//! E2(f(P), f(N), L) :- E(P, N, L).
//! C0(N, L) :- E(0, N, L).
//! ```
//!
//! - identifiers starting with an **uppercase** letter or `_` are
//!   variables (`_` alone is a fresh anonymous variable per occurrence);
//! - **lowercase** identifiers are label constants — unless immediately
//!   followed by `(`, in which case they are Skolem applications
//!   (allowed in heads only, checked at evaluation time);
//! - integers are node-id constants;
//! - `%` starts a line comment.

use crate::datalog::{Atom, Program, Rule, Term};
use crate::krel::RelValue;
use std::fmt;

/// A parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description.
    pub msg: String,
    /// Byte offset into the source.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "datalog parse error at byte {}: {}",
            self.offset, self.msg
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a Datalog program from text.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut p = Parser {
        src,
        pos: 0,
        anon: 0,
    };
    let mut rules = Vec::new();
    loop {
        p.skip_trivia();
        if p.pos >= src.len() {
            break;
        }
        rules.push(p.parse_rule()?);
    }
    Ok(Program::new(rules))
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    anon: u64,
}

impl<'a> Parser<'a> {
    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_trivia(&mut self) {
        loop {
            let r = self.rest();
            let t = r.trim_start();
            self.pos += r.len() - t.len();
            if self.rest().starts_with('%') {
                match self.rest().find('\n') {
                    Some(n) => self.pos += n + 1,
                    None => self.pos = self.src.len(),
                }
            } else {
                return;
            }
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_trivia();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn eat_ident(&mut self) -> Option<&'a str> {
        self.skip_trivia();
        let r = self.rest();
        let mut end = 0;
        for (i, c) in r.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || c == '_'
            };
            if ok {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            None
        } else {
            self.pos += end;
            Some(&r[..end])
        }
    }

    fn parse_rule(&mut self) -> Result<Rule, ParseError> {
        let head = self.parse_atom()?;
        let mut body = Vec::new();
        if self.eat(":-") {
            loop {
                body.push(self.parse_atom()?);
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect(".")?;
        Ok(Rule::new(head, body))
    }

    fn parse_atom(&mut self) -> Result<Atom, ParseError> {
        let pred = self
            .eat_ident()
            .ok_or_else(|| self.err("expected a predicate name"))?
            .to_owned();
        self.expect("(")?;
        let mut args = Vec::new();
        if !self.eat(")") {
            loop {
                args.push(self.parse_term()?);
                if self.eat(")") {
                    break;
                }
                self.expect(",")?;
            }
        }
        Ok(Atom { pred, args })
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        self.skip_trivia();
        let r = self.rest();
        // number → node id
        if r.starts_with(|c: char| c.is_ascii_digit()) {
            let end = r.find(|c: char| !c.is_ascii_digit()).unwrap_or(r.len());
            let n: u64 = r[..end].parse().map_err(|_| self.err("number too large"))?;
            self.pos += end;
            return Ok(Term::Const(RelValue::Node(n)));
        }
        let Some(id) = self.eat_ident() else {
            return Err(self.err("expected a term"));
        };
        // anonymous variable: fresh per occurrence
        if id == "_" {
            self.anon += 1;
            return Ok(Term::Var(format!("_anon{}", self.anon)));
        }
        let first = id.chars().next().expect("nonempty ident");
        if first.is_uppercase() || first == '_' {
            return Ok(Term::Var(id.to_owned()));
        }
        // lowercase: Skolem application if followed by '(' else label
        self.skip_trivia();
        if self.rest().starts_with('(') {
            self.expect("(")?;
            let mut args = Vec::new();
            if !self.eat(")") {
                loop {
                    args.push(self.parse_term()?);
                    if self.eat(")") {
                        break;
                    }
                    self.expect(",")?;
                }
            }
            return Ok(Term::Skolem(id.to_owned(), args));
        }
        Ok(Term::Const(RelValue::label(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datalog::eval_datalog;
    use crate::krel::{KRelation, Schema};
    use crate::ra::Database;
    use axml_semiring::NatPoly;

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    #[test]
    fn parses_transitive_closure() {
        let prog = parse_program(
            "% closure
             T(X, Y) :- E(X, Y).
             T(X, Z) :- T(X, Y), E(Y, Z).",
        )
        .unwrap();
        assert_eq!(prog.rules.len(), 2);
        assert_eq!(prog.rules[1].body.len(), 2);

        // run it over an annotated edge relation
        let mut e = KRelation::new(Schema::new(["s", "d"]));
        e.insert(vec![RelValue::Node(1), RelValue::Node(2)], np("dp_a"));
        e.insert(vec![RelValue::Node(2), RelValue::Node(3)], np("dp_b"));
        let db = Database::new().with("E", e);
        let out = eval_datalog(&prog, &db).unwrap();
        assert_eq!(
            out.get("T")
                .unwrap()
                .get(&vec![RelValue::Node(1), RelValue::Node(3)]),
            np("dp_a*dp_b")
        );
    }

    #[test]
    fn parses_skolem_heads_and_constants() {
        let prog = parse_program(
            "E2(f(P), f(N), L) :- E(P, N, L).
             E2(0, f(N), c) :- R(N, c).",
        )
        .unwrap();
        let r2 = &prog.rules[1];
        assert_eq!(r2.head.args[0], Term::Const(RelValue::Node(0)));
        assert!(matches!(&r2.head.args[1], Term::Skolem(f, _) if f == "f"));
        assert_eq!(r2.head.args[2], Term::Const(RelValue::label("c")));
    }

    #[test]
    fn anonymous_vars_are_fresh() {
        let prog = parse_program("P(X) :- E(X, _), F(X, _).").unwrap();
        let body = &prog.rules[0].body;
        let Term::Var(a) = &body[0].args[1] else {
            panic!()
        };
        let Term::Var(b) = &body[1].args[1] else {
            panic!()
        };
        assert_ne!(a, b, "each _ must be a distinct variable");
    }

    #[test]
    fn facts_without_bodies() {
        let prog = parse_program("Base(1, a). Base(2, b).").unwrap();
        assert_eq!(prog.rules.len(), 2);
        assert!(prog.rules[0].body.is_empty());
    }

    #[test]
    fn display_parse_roundtrip() {
        // our Display prints lowercase variable names from the builder
        // API, which re-parse as labels — so roundtrip the *text* form
        let text = "T(X,Y) :- E(X,Y).\nT(X,Z) :- T(X,Y), E(Y,Z).\n";
        let prog = parse_program(text).unwrap();
        let printed = prog.to_string();
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn error_positions() {
        assert!(parse_program("P(X) :- ").is_err());
        assert!(parse_program("P(X)").is_err(), "missing final dot");
        assert!(parse_program("P(X,) .").is_err());
        assert!(parse_program("123(X).").is_err());
    }
}
