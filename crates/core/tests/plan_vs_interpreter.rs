//! Differential property tests for the direct route: the slot-resolved
//! compiled plan ([`axml_core::CompiledQuery`]) against the reference
//! tree-walking interpreter ([`axml_core::eval_core`]), over randomly
//! generated surface queries in ℕ\[X\], ℕ and `PosBool`.
//!
//! Queries are generated at the surface level (the same shapes the
//! round-trip suite uses — shadowed binders included via the small
//! variable pool), elaborated, then evaluated both ways against:
//!
//! - well-typed bindings (every query variable a `{tree}` document):
//!   results must be `Ok` and equal;
//! - hostile bindings (a label where a document belongs / a missing
//!   document): both must **error identically** — same message, no
//!   panic.

use axml_core::ast::{Axis, ElementName, NodeTest, Step, SurfaceExpr};
use axml_core::{elaborate, eval_core, parse_query, CompiledQuery, QueryEnv};
use axml_semiring::{Nat, NatPoly, PosBool, Semiring, Var};
use axml_uxml::{parse_forest, Label, ParseAnnotation, Value};
use proptest::prelude::*;

/// Variable pool overlaps binder names with free document names, so
/// binders routinely shadow documents and each other.
const VARS: [&str; 3] = ["S", "T", "x"];
const NAMES: [&str; 4] = ["a", "b", "c", "d"];

fn arb_step() -> BoxedStrategy<Step> {
    (
        prop_oneof![
            Just(Axis::SelfAxis),
            Just(Axis::Child),
            Just(Axis::Descendant),
            Just(Axis::StrictDescendant),
        ],
        prop_oneof![
            Just(NodeTest::Wildcard),
            proptest::sample::select(&NAMES[..]).prop_map(|n| NodeTest::Label(Label::new(n))),
        ],
    )
        .prop_map(|(axis, test)| Step { axis, test })
        .boxed()
}

fn arb_query<K: Semiring + 'static>(
    annot: BoxedStrategy<K>,
    depth: u32,
) -> BoxedStrategy<SurfaceExpr<K>> {
    let leaf = prop_oneof![
        3 => proptest::sample::select(&VARS[..]).prop_map(|v| SurfaceExpr::Var(v.to_owned())),
        1 => proptest::sample::select(&NAMES[..])
            .prop_map(|n| SurfaceExpr::LabelLit(Label::new(n))),
        1 => Just(SurfaceExpr::Empty),
    ];
    leaf.prop_recursive(depth, 24, 3, move |inner| {
        let name_ish = prop_oneof![
            proptest::sample::select(&NAMES[..])
                .prop_map(|n| SurfaceExpr::LabelLit(Label::new(n))),
            proptest::sample::select(&VARS[..])
                .prop_map(|v| SurfaceExpr::Name(Box::new(SurfaceExpr::Var(v.to_owned())))),
        ];
        prop_oneof![
            2 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SurfaceExpr::Seq(Box::new(a), Box::new(b))),
            3 => (proptest::sample::select(&VARS[..]), inner.clone(), inner.clone())
                .prop_map(|(v, src, body)| SurfaceExpr::For {
                    binders: vec![(v.to_owned(), SurfaceExpr::Paren(Box::new(src)))],
                    where_eq: None,
                    body: Box::new(SurfaceExpr::Paren(Box::new(body))),
                }),
            1 => (proptest::sample::select(&VARS[..]), inner.clone(), inner.clone())
                .prop_map(|(v, def, body)| SurfaceExpr::Let {
                    bindings: vec![(v.to_owned(), SurfaceExpr::Paren(Box::new(def)))],
                    body: Box::new(SurfaceExpr::Paren(Box::new(body))),
                }),
            1 => (name_ish.clone(), name_ish, inner.clone(), inner.clone())
                .prop_map(|(l, r, t, e)| SurfaceExpr::If {
                    l: Box::new(l),
                    r: Box::new(r),
                    then: Box::new(SurfaceExpr::Paren(Box::new(t))),
                    els: Box::new(SurfaceExpr::Paren(Box::new(e))),
                }),
            1 => (proptest::sample::select(&NAMES[..]), inner.clone())
                .prop_map(|(n, content)| SurfaceExpr::Element {
                    name: ElementName::Static(Label::new(n)),
                    content: Box::new(content),
                }),
            1 => (annot.clone(), inner.clone())
                .prop_map(|(k, e)| SurfaceExpr::Annot(k, Box::new(SurfaceExpr::Paren(Box::new(e))))),
            2 => (inner, arb_step())
                .prop_map(|(p, s)| SurfaceExpr::Path(Box::new(SurfaceExpr::Paren(Box::new(p))), s)),
        ]
    })
    .boxed()
}

fn arb_natpoly() -> BoxedStrategy<NatPoly> {
    prop_oneof![
        2 => proptest::sample::select(&["pv1", "pv2"][..]).prop_map(NatPoly::var_named),
        1 => (0u64..4).prop_map(NatPoly::from),
    ]
    .boxed()
}

fn arb_nat() -> BoxedStrategy<Nat> {
    (0u64..5).prop_map(|n| Nat(n as u128)).boxed()
}

fn arb_posbool() -> BoxedStrategy<PosBool> {
    let v = |n: &str| PosBool::var(Var::new(n));
    prop_oneof![
        Just(PosBool::one()),
        Just(PosBool::zero()),
        Just(v("pu")),
        Just(v("pu").plus(&v("pw"))),
    ]
    .boxed()
}

/// Compare plan vs interpreter under the given bindings: both `Ok`
/// and equal, or both `Err` with the same message.
fn assert_parity<K: Semiring + ParseAnnotation + std::fmt::Display>(
    q: &SurfaceExpr<K>,
    bindings: &[(&str, Value<K>)],
) {
    // Random compositions may be ill-typed (e.g. a label in set
    // position) — those are rejected here, before either evaluator.
    let Ok(core) = elaborate(q) else { return };
    let plan = CompiledQuery::compile(&core);
    let compiled = plan.eval(bindings);
    let mut env =
        QueryEnv::from_bindings(bindings.iter().map(|(n, v)| ((*n).to_owned(), v.clone())));
    let interpreted = eval_core(&core, &mut env);
    match (compiled, interpreted) {
        (Ok(c), Ok(i)) => assert_eq!(c, i, "compiled vs interpreted disagree on {q}"),
        (Err(c), Err(i)) => {
            assert_eq!(c.msg, i.msg, "errors differ on {q}")
        }
        (Ok(c), Err(i)) => panic!("compiled Ok({c}) but interpreter erred ({i}) on {q}"),
        (Err(c), Ok(i)) => panic!("interpreter Ok({i}) but compiled erred ({c}) on {q}"),
    }
}

fn doc<K: Semiring + ParseAnnotation>() -> Value<K> {
    Value::Set(parse_forest::<K>("<a> <b> c d </b> <c> d </c> a </a>").unwrap())
}

fn run_kind<K: Semiring + ParseAnnotation + std::fmt::Display>(q: &SurfaceExpr<K>) {
    // well-typed: both documents bound
    assert_parity(
        q,
        &[("S", doc::<K>()), ("T", doc::<K>()), ("x", doc::<K>())],
    );
    // hostile: a label where a document belongs, and `x` missing
    assert_parity(
        q,
        &[("S", doc::<K>()), ("T", Value::Label(Label::new("oops")))],
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn natpoly_parity(q in arb_query::<NatPoly>(arb_natpoly(), 3)) {
        run_kind(&q);
    }

    #[test]
    fn nat_parity(q in arb_query::<Nat>(arb_nat(), 3)) {
        run_kind(&q);
    }

    #[test]
    fn posbool_parity(q in arb_query::<PosBool>(arb_posbool(), 3)) {
        run_kind(&q);
    }
}

/// The parser/elaborator depth caps sit in front of plan compilation:
/// hostile text errors before a plan is ever built, identically to the
/// interpreter pipeline (which shares the same front half).
#[test]
fn hostile_query_text_errors_before_planning() {
    let paren_bomb = format!("{}a{}", "(".repeat(100_000), ")".repeat(100_000));
    let for_bomb = format!("{}()", "for $x in () return ".repeat(100_000));
    for bad in [paren_bomb.as_str(), for_bomb.as_str()] {
        match parse_query::<NatPoly>(bad) {
            Err(_) => {}
            Ok(s) => assert!(elaborate(&s).is_err(), "bomb must not elaborate"),
        }
    }
}

/// The chunked parallel descendant sweep (`eval_ctx` with a pool)
/// returns exactly what the sequential plan does — across fan-out
/// degrees, both descendant axes, label tests, and a document large
/// enough to clear the parallel threshold.
#[test]
fn parallel_sweep_matches_sequential() {
    use axml_pool::{ExecCtx, Parallelism, Pool};
    // A deep annotated comb: > PAR_SWEEP_MIN_NODES nodes, annotations
    // on every level so path products actually differ per chunk.
    let mut doc = String::from("<top {z}> ");
    for i in 0..600 {
        doc.push_str(&format!(
            "<n{} {{x{}}}> c {{y{}}} d </n{}> ",
            i % 7,
            i,
            i,
            i % 7
        ));
    }
    doc.push_str("</top>");
    let forest = parse_forest::<NatPoly>(&doc).unwrap();
    let pool = Pool::new(4);
    for src in [
        "$S//c",
        "$S/descendant::*",
        "$S/strict-descendant::c",
        "element r { for $t in $S return ($t)//d }",
    ] {
        let q = elaborate(&parse_query::<NatPoly>(src).unwrap()).unwrap();
        let plan = CompiledQuery::compile(&q);
        let seq = plan
            .eval(&[("S", Value::Set(forest.clone()))])
            .expect("sequential evaluates");
        for degree in [2, 4, 16] {
            let ctx = ExecCtx::new(&pool, Parallelism::threads(degree));
            let par = plan
                .eval_ctx(&[("S", Value::Set(forest.clone()))], Some(&ctx))
                .expect("parallel evaluates");
            assert_eq!(seq, par, "{src} with degree {degree}");
        }
    }
}

/// The paper's own queries agree compiled-vs-interpreted in ℕ[X].
#[test]
fn paper_queries_parity() {
    for src in [
        "element p { for $t in $S return for $x in ($t)/child::* return ($x)/child::* }",
        "element r { $T/descendant::c }",
        "annot {2*w + 1} ($S/self::a)",
        "let $r := $S/child::* return for $t in $r return ($t)",
    ] {
        let q = parse_query::<NatPoly>(src).unwrap();
        run_kind(&q);
    }
}
