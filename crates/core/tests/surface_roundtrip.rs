//! Round-trip property tests for the query surface syntax:
//!
//! - **exact**: `parse(print(q)) == q` over ASTs whose printing needs
//!   no inserted parentheses;
//! - **elaboration-preserving**: `elaborate(parse(print(q))) ==
//!   elaborate(q)` over cases where the printer must add parentheses
//!   (which re-parse as transparent `Paren` nodes);
//! - both over `Nat`, `PosBool` and `NatPoly` annotations (the
//!   `annot {…}` scalar is the only semiring-dependent token).

use axml_core::ast::{Axis, ElementName, NodeTest, Step, SurfaceExpr};
use axml_core::{elaborate, parse_query};
use axml_semiring::{Nat, NatPoly, PosBool, Semiring, Var};
use axml_uxml::{Label, ParseAnnotation};
use proptest::prelude::*;

const NAMES: [&str; 5] = ["alpha", "beta", "gx", "d1", "e.ext"];
const VARS: [&str; 4] = ["S", "T", "doc", "v2"];

fn arb_step() -> BoxedStrategy<Step> {
    (
        prop_oneof![
            Just(Axis::SelfAxis),
            Just(Axis::Child),
            Just(Axis::Descendant),
            Just(Axis::StrictDescendant),
        ],
        prop_oneof![
            Just(NodeTest::Wildcard),
            proptest::sample::select(&NAMES[..]).prop_map(|n| NodeTest::Label(Label::new(n))),
        ],
    )
        .prop_map(|(axis, test)| Step { axis, test })
        .boxed()
}

/// Atoms: printed forms are primaries, never need parenthesizing.
fn arb_atom<K: Semiring>() -> BoxedStrategy<SurfaceExpr<K>> {
    prop_oneof![
        proptest::sample::select(&NAMES[..]).prop_map(|n| SurfaceExpr::LabelLit(Label::new(n))),
        proptest::sample::select(&VARS[..]).prop_map(|v| SurfaceExpr::Var(v.to_owned())),
        Just(SurfaceExpr::Empty),
    ]
    .boxed()
}

/// Label-typed operands for `if`/`where` comparisons.
fn arb_label_ish<K: Semiring>() -> BoxedStrategy<SurfaceExpr<K>> {
    prop_oneof![
        proptest::sample::select(&NAMES[..]).prop_map(|n| SurfaceExpr::LabelLit(Label::new(n))),
        proptest::sample::select(&VARS[..])
            .prop_map(|v| SurfaceExpr::Name(Box::new(SurfaceExpr::Var(v.to_owned())))),
    ]
    .boxed()
}

/// Operand-position expressions: everything except `Seq` and `For`
/// (which the printer parenthesizes in operand slots).
fn arb_operand<K: Semiring + ParseAnnotation + std::fmt::Display + 'static>(
    annot: BoxedStrategy<K>,
    depth: u32,
) -> BoxedStrategy<SurfaceExpr<K>> {
    if depth == 0 {
        return arb_atom::<K>();
    }
    let op = arb_operand::<K>(annot.clone(), depth - 1);
    let full = arb_exact::<K>(annot.clone(), depth - 1);
    prop_oneof![
        3 => arb_atom::<K>(),
        1 => op.clone().prop_map(|e| SurfaceExpr::Paren(Box::new(e))),
        1 => (proptest::sample::select(&VARS[..]), op.clone(), op.clone()).prop_map(
            |(v, def, body)| SurfaceExpr::Let {
                bindings: vec![(v.to_owned(), def)],
                body: Box::new(body),
            }
        ),
        1 => (arb_label_ish::<K>(), arb_label_ish::<K>(), op.clone(), op.clone()).prop_map(
            |(l, r, t, e)| SurfaceExpr::If {
                l: Box::new(l),
                r: Box::new(r),
                then: Box::new(t),
                els: Box::new(e),
            }
        ),
        1 => (proptest::sample::select(&NAMES[..]), full).prop_map(|(n, content)| {
            SurfaceExpr::Element {
                name: ElementName::Static(Label::new(n)),
                content: Box::new(content),
            }
        }),
        1 => op.clone().prop_map(|e| SurfaceExpr::Name(Box::new(e))),
        1 => (annot, op.clone()).prop_map(|(k, e)| SurfaceExpr::Annot(k, Box::new(e))),
        1 => (arb_atom::<K>(), arb_step())
            .prop_map(|(p, s)| SurfaceExpr::Path(Box::new(p), s)),
    ]
    .boxed()
}

/// Expressions whose printed form re-parses to the identical AST:
/// `Seq`/`For` appear only where the printer leaves them bare.
fn arb_exact<K: Semiring + ParseAnnotation + std::fmt::Display + 'static>(
    annot: BoxedStrategy<K>,
    depth: u32,
) -> BoxedStrategy<SurfaceExpr<K>> {
    if depth == 0 {
        return arb_atom::<K>();
    }
    let op = arb_operand::<K>(annot.clone(), depth - 1);
    let full = arb_exact::<K>(annot.clone(), depth - 1);
    prop_oneof![
        3 => arb_operand::<K>(annot, depth),
        1 => (full, op.clone())
            .prop_map(|(a, b)| SurfaceExpr::Seq(Box::new(a), Box::new(b))),
        1 => (
            proptest::sample::select(&VARS[..]),
            op.clone(),
            op,
            prop_oneof![
                2 => Just(None),
                1 => (arb_label_ish::<K>(), arb_label_ish::<K>()).prop_map(Some),
            ],
        )
            .prop_map(|(v, src, body, weq)| SurfaceExpr::For {
                binders: vec![(v.to_owned(), src)],
                where_eq: weq.map(|(l, r)| (Box::new(l), Box::new(r))),
                body: Box::new(body),
            }),
    ]
    .boxed()
}

fn arb_natpoly() -> BoxedStrategy<NatPoly> {
    prop_oneof![
        2 => proptest::sample::select(&["qa", "qb", "qc"][..]).prop_map(NatPoly::var_named),
        1 => Just(NatPoly::one()),
        1 => (1u64..5).prop_map(NatPoly::from),
        1 => proptest::sample::select(&["qa", "qb"][..])
            .prop_map(|v| NatPoly::var_named(v).plus(&NatPoly::from(2u64))),
    ]
    .boxed()
}

fn arb_nat() -> BoxedStrategy<Nat> {
    (0u64..9).prop_map(|n| Nat(n as u128)).boxed()
}

fn arb_posbool() -> BoxedStrategy<PosBool> {
    let v = |n: &str| PosBool::var(Var::new(n));
    prop_oneof![
        Just(PosBool::one()),
        Just(PosBool::zero()),
        Just(v("u")),
        Just(v("u").times(&v("w"))),
        Just(v("u").plus(&v("w").times(&v("z")))),
    ]
    .boxed()
}

fn assert_exact_roundtrip<K: Semiring + ParseAnnotation + std::fmt::Display>(q: &SurfaceExpr<K>) {
    let printed = q.to_string();
    let reparsed =
        parse_query::<K>(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
    assert_eq!(&reparsed, q, "printed: {printed}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn exact_roundtrip_natpoly(q in arb_exact::<NatPoly>(arb_natpoly(), 3)) {
        assert_exact_roundtrip(&q);
    }

    #[test]
    fn exact_roundtrip_nat(q in arb_exact::<Nat>(arb_nat(), 3)) {
        assert_exact_roundtrip(&q);
    }

    #[test]
    fn exact_roundtrip_posbool(q in arb_exact::<PosBool>(arb_posbool(), 3)) {
        assert_exact_roundtrip(&q);
    }

    /// Printing is stable: parse(print(q)) prints identically (the
    /// printer is a fixpoint even where parentheses were inserted).
    #[test]
    fn printing_is_idempotent(q in arb_exact::<NatPoly>(arb_natpoly(), 3)) {
        let once = q.to_string();
        let again = parse_query::<NatPoly>(&once).unwrap().to_string();
        prop_assert_eq!(once, again);
    }
}

/// Queries whose printing inserts parentheses still elaborate to the
/// same core (the inserted `Paren` nodes are transparent).
#[test]
fn inserted_parens_preserve_elaboration() {
    let cases: Vec<SurfaceExpr<NatPoly>> = vec![
        // Seq in for-body: prints `for … return (a, b)`.
        SurfaceExpr::For {
            binders: vec![("t".into(), SurfaceExpr::Var("S".into()))],
            where_eq: None,
            body: Box::new(SurfaceExpr::Seq(
                Box::new(SurfaceExpr::LabelLit(Label::new("a"))),
                Box::new(SurfaceExpr::LabelLit(Label::new("b"))),
            )),
        },
        // For in a non-final binder source.
        SurfaceExpr::For {
            binders: vec![
                (
                    "x".into(),
                    SurfaceExpr::For {
                        binders: vec![("i".into(), SurfaceExpr::Var("S".into()))],
                        where_eq: None,
                        body: Box::new(SurfaceExpr::Paren(Box::new(SurfaceExpr::Var("i".into())))),
                    },
                ),
                ("y".into(), SurfaceExpr::Var("T".into())),
            ],
            where_eq: None,
            body: Box::new(SurfaceExpr::Paren(Box::new(SurfaceExpr::Var("y".into())))),
        },
        // Seq as a path base: prints `(a, b)/child::*`.
        SurfaceExpr::Path(
            Box::new(SurfaceExpr::Seq(
                Box::new(SurfaceExpr::Var("S".into())),
                Box::new(SurfaceExpr::Var("T".into())),
            )),
            Step {
                axis: Axis::Child,
                test: NodeTest::Wildcard,
            },
        ),
        // Right-nested Seq: prints `$S, ($T, $S)`.
        SurfaceExpr::Seq(
            Box::new(SurfaceExpr::Var("S".into())),
            Box::new(SurfaceExpr::Seq(
                Box::new(SurfaceExpr::Var("T".into())),
                Box::new(SurfaceExpr::Var("S".into())),
            )),
        ),
    ];
    for q in cases {
        let printed = q.to_string();
        let reparsed = parse_query::<NatPoly>(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(
            elaborate(&reparsed).unwrap(),
            elaborate(&q).unwrap(),
            "elaboration changed through print → parse of {printed:?}"
        );
    }
}

/// The paper's own queries survive print → parse exactly at the
/// elaborated level.
#[test]
fn paper_queries_roundtrip() {
    for src in [
        "element p { for $t in $S return for $x in ($t)/child::* return ($x)/child::* }",
        "element r { $T/descendant::c }",
        "$d/R/child::*",
        "for $x in $R, $y in $S where $x/B = $y/B return <t> { $x/A, $y/C } </t>",
        "annot {2*w + 1} ($S/self::a)",
        "let $r := $d/R/child::* return for $t in $r return ($t)",
    ] {
        let q = parse_query::<NatPoly>(src).unwrap();
        let printed = q.to_string();
        let reparsed = parse_query::<NatPoly>(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(
            elaborate(&reparsed).unwrap(),
            elaborate(&q).unwrap(),
            "{src} → {printed}"
        );
    }
}
