//! Parity of the parallel `for`-loop (direct route) against the
//! sequential loop and the reference interpreter: same results on
//! well-typed inputs, same error (message included) on hostile ones.
//!
//! The binder sources are built with at least
//! [`axml_core::PAR_FOR_MIN_BINDERS`] top-level elements so the
//! chunked path genuinely runs (a below-threshold source would
//! silently fall back to the sequential loop and test nothing).

use axml_core::{elaborate, parse_query, CompiledQuery, PAR_FOR_MIN_BINDERS};
use axml_pool::{ExecCtx, Parallelism, Pool};
use axml_semiring::NatPoly;
use axml_uxml::{parse_forest, Forest, Value};
use proptest::prelude::*;

fn plan(src: &str) -> CompiledQuery<NatPoly> {
    let s = parse_query::<NatPoly>(src).expect("parses");
    let q = elaborate(&s).expect("elaborates");
    CompiledQuery::compile(&q)
}

/// A forest of `n` distinct top-level elements, each with a small
/// annotated body, so a `for` over `$S` has `n` binder elements.
fn wide_forest(n: usize, seed: u64) -> Forest<NatPoly> {
    let mut src = String::new();
    for i in 0..n {
        let j = (i as u64).wrapping_mul(seed % 7 + 1) % 5;
        src.push_str(&format!(
            "<e{i} {{x{j}}}> <b {{y{j}}}> c {{z{j}}} </b> d </e{i}> "
        ));
    }
    parse_forest::<NatPoly>(&src).expect("fixture parses")
}

const QUERIES: [&str; 4] = [
    "for $t in $S return ($t)/*",
    "for $t in $S return for $x in ($t)/* return if (name($x) = b) then ($x)/* else ()",
    "element p { for $t in $S return annot {2} (($t)//c) }",
    "for $t in $S return ($t)",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_for_matches_sequential(
        seed in 0u64..1000,
        extra in 0usize..40,
        qi in 0usize..QUERIES.len(),
        workers in 2usize..5,
    ) {
        let src = wide_forest(PAR_FOR_MIN_BINDERS + extra, seed);
        let p = plan(QUERIES[qi]);
        let inputs = [("S", Value::Set(src))];
        let sequential = p.eval(&inputs);
        let pool = Pool::new(workers);
        let ctx = ExecCtx::new(&pool, Parallelism::threads(workers + 1));
        let parallel = p.eval_ctx(&inputs, Some(&ctx));
        prop_assert_eq!(sequential, parallel);
    }

    /// Hostile bindings: the body errors on every element; the
    /// parallel loop must surface the *same* error the sequential
    /// loop hits first.
    #[test]
    fn parallel_for_error_parity(workers in 2usize..5) {
        // `$T` is never bound: the body errors lazily on its first
        // read, once per element, identically in both loops.
        let src = wide_forest(PAR_FOR_MIN_BINDERS + 3, 1);
        let p = plan("for $t in $S return ($T)/b");
        let inputs = [("S", Value::Set(src))];
        let sequential = p.eval(&inputs);
        prop_assert!(sequential.is_err(), "fixture must actually error");
        let pool = Pool::new(workers);
        let ctx = ExecCtx::new(&pool, Parallelism::threads(workers + 1));
        let parallel = p.eval_ctx(&inputs, Some(&ctx));
        prop_assert_eq!(
            sequential.unwrap_err().msg,
            parallel.unwrap_err().msg
        );
    }
}
