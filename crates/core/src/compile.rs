//! Compiling core K-UXQuery into `NRC_K + srt` (§6.3).
//!
//! Most operators translate one-for-one (`for` ↦ big-union, `,` ↦ `∪`,
//! `annot k` ↦ scalar, `element` ↦ `Tree`, `name` ↦ `tag`). The
//! interesting cases are the navigation steps `e —ax::nt→ e′`:
//!
//! ```text
//! e —self::a→       ∪(x ∈ e) if tag(x) = a then {x} else {}
//! e —child::*→      ∪(x ∈ e) kids(x)
//! e —descendant::*→ ∪(x ∈ e) π1((srt(b, s). f) x)
//!    where f = let self = Tree(b, ∪(u ∈ s) {π2(u)}) in
//!              (∪(v ∈ s) π1(v) ∪ {self}, self)
//! ```
//!
//! `descendant` is the only place structural recursion is needed: the
//! `s` accumulator holds pairs (descendants-below-child, child), the
//! body rebuilds the current subtree from the pairs' second components
//! and extends the match set.
//!
//! **Paper faithfulness note:** the paper prints the match collection as
//! `∪(x ∈ s) {π1(x)}`, which is ill-typed (it builds a set of sets); the
//! evidently intended `∪(x ∈ s) π1(x)` (flattening) is what we compile,
//! and Fig 4's annotations confirm it.

use crate::ast::{Axis, NodeTest, Query, QueryNode, Step};
use axml_nrc::expr::{self as nx, Expr};
use axml_nrc::types::Type;
use axml_semiring::Semiring;

/// Compile a typed core query to an NRC expression. Free query
/// variables `$x` become NRC variables of the same name (bound to
/// `{tree}` values by the evaluation harness).
pub fn compile<K: Semiring>(q: &Query<K>) -> Expr<K> {
    match &q.node {
        QueryNode::LabelLit(l) => Expr::Label(*l),
        QueryNode::Var(x) => nx::var(x),
        QueryNode::Empty => nx::empty_trees(),
        QueryNode::Singleton(inner) => match inner.ty {
            crate::ast::QType::Label => {
                // leaf-element coercion: {Tree(l, {})}
                nx::singleton(nx::tree_expr(compile(inner), nx::empty_trees()))
            }
            _ => nx::singleton(compile(inner)),
        },
        QueryNode::Union(a, b) => nx::union(compile(a), compile(b)),
        QueryNode::For { var, source, body } => nx::bigunion(var, compile(source), compile(body)),
        QueryNode::Let { var, def, body } => nx::let_(var, compile(def), compile(body)),
        QueryNode::If { l, r, then, els } => {
            nx::if_eq(compile(l), compile(r), compile(then), compile(els))
        }
        QueryNode::Element { name, content } => nx::tree_expr(compile(name), compile(content)),
        QueryNode::Name(inner) => nx::tag(compile(inner)),
        QueryNode::Annot(k, inner) => nx::scalar(k.clone(), compile(inner)),
        QueryNode::Path(inner, step) => compile_step(compile(inner), *step),
    }
}

/// Compile one navigation step applied to a compiled `{tree}` source.
pub fn compile_step<K: Semiring>(e: Expr<K>, step: Step) -> Expr<K> {
    match step.axis {
        Axis::SelfAxis => filter_by_test(e, step.test),
        Axis::Child => {
            let x = nx::fresh_name("x");
            let kids = nx::bigunion(&x, e, nx::kids(nx::var(&x)));
            filter_by_test(kids, step.test)
        }
        Axis::Descendant => filter_by_test(descendant_star(e), step.test),
        Axis::StrictDescendant => {
            // strictly below = children, then descendant-or-self
            let x = nx::fresh_name("x");
            let kids = nx::bigunion(&x, e, nx::kids(nx::var(&x)));
            filter_by_test(descendant_star(kids), step.test)
        }
    }
}

/// `∪(x ∈ e) if tag(x) = l then {x} else {}` — or `e` itself for `*`.
fn filter_by_test<K: Semiring>(e: Expr<K>, test: NodeTest) -> Expr<K> {
    match test {
        NodeTest::Wildcard => e,
        NodeTest::Label(l) => {
            let x = nx::fresh_name("x");
            nx::bigunion(
                &x,
                e,
                nx::if_eq(
                    nx::tag(nx::var(&x)),
                    Expr::Label(l),
                    nx::singleton(nx::var(&x)),
                    nx::empty_trees(),
                ),
            )
        }
    }
}

/// The §6.3 `descendant::*` rule (descendant-or-self over every tree in
/// the set, annotations multiplying along paths).
fn descendant_star<K: Semiring>(e: Expr<K>) -> Expr<K> {
    let x = nx::fresh_name("x");
    let b = nx::fresh_name("b");
    let s = nx::fresh_name("s");
    let u = nx::fresh_name("u");
    let v = nx::fresh_name("v");
    let selfv = nx::fresh_name("self");

    // let self = Tree(b, ∪(u ∈ s) {π2(u)}) in
    //   ((∪(v ∈ s) π1(v)) ∪ {self}, self)
    let rebuild = nx::tree_expr(
        nx::var(&b),
        nx::bigunion(&u, nx::var(&s), nx::singleton(nx::proj2(nx::var(&u)))),
    );
    let matches = nx::bigunion(&v, nx::var(&s), nx::proj1(nx::var(&v)));
    let body = nx::let_(
        &selfv,
        rebuild,
        nx::pair(
            nx::union(matches, nx::singleton(nx::var(&selfv))),
            nx::var(&selfv),
        ),
    );
    let pair_ty = Type::pair_of(Type::tree_set(), Type::Tree);
    nx::bigunion(
        &x,
        e,
        nx::proj1(nx::srt(&b, &s, pair_ty, body, nx::var(&x))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use crate::typecheck::elaborate;
    use axml_nrc::eval::eval_with_forests;
    use axml_nrc::typecheck::{typecheck, TypeContext};
    use axml_nrc::CValue;
    use axml_semiring::{Nat, NatPoly};
    use axml_uxml::{leaf, parse_forest, Value};

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    fn compile_src(src: &str) -> Expr<NatPoly> {
        let s = parse_query::<NatPoly>(src).expect("parses");
        let q = elaborate(&s).expect("elaborates");
        compile(&q)
    }

    fn run_nrc(src: &str, inputs: &[(&str, &axml_uxml::Forest<NatPoly>)]) -> CValue<NatPoly> {
        let e = compile_src(src);
        eval_with_forests(&e, inputs).expect("NRC evaluation succeeds")
    }

    #[test]
    fn compiled_queries_typecheck() {
        for src in [
            "element p { for $t in $S return for $x in ($t)/child::* return ($x)/child::* }",
            "element r { $T//c }",
            "$S/self::a",
            "$S/strict-descendant::b",
            "for $x in $R, $y in $S where $x/B = $y/B return <t> { $x/A } </t>",
            "annot {3} (element a {()})",
        ] {
            let e = compile_src(src);
            let mut ctx = TypeContext::from_bindings(
                e.free_vars().into_iter().map(|v| (v, Type::tree_set())),
            );
            let ty = typecheck(&e, &mut ctx)
                .unwrap_or_else(|err| panic!("compiled {src:?} ill-typed: {err}"));
            assert!(
                matches!(ty, Type::Set(_) | Type::Tree | Type::Label),
                "unexpected compiled type {ty} for {src:?}"
            );
        }
    }

    #[test]
    fn fig1_via_nrc_matches_paper() {
        let src = parse_forest::<NatPoly>(
            "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>",
        )
        .unwrap();
        let out = run_nrc(
            "element p { for $t in $S return for $x in ($t)/child::* return ($x)/child::* }",
            &[("S", &src)],
        );
        let CValue::Tree(t) = out else {
            panic!("expected tree")
        };
        assert_eq!(t.children().get(&leaf("d")), np("z*x1*y1 + z*x2*y2"));
        assert_eq!(t.children().get(&leaf("e")), np("z*x2*y3"));
    }

    #[test]
    fn fig4_descendant_via_srt() {
        let src = parse_forest::<NatPoly>(
            "<a> <b {x1}> <a> c {y3} d </a> </b> <c {y1}> <d> <a> c {y2} b {x2} </a> </d> </c> </a>",
        )
        .unwrap();
        let out = run_nrc("element r { $T//c }", &[("T", &src)]);
        let CValue::Tree(t) = out else { panic!() };
        assert_eq!(t.children().get(&leaf("c")), np("x1*y3 + y1*y2"));
        assert_eq!(t.children().len(), 2);
    }

    #[test]
    fn direct_and_compiled_agree_on_examples() {
        let src = parse_forest::<NatPoly>(
            "<a {z}> <b {x1}> d {y1} c </b> <c {x2}> d {y2} e {y3} </c> </a>",
        )
        .unwrap();
        for qsrc in [
            "element p { $S/*/* }",
            "element r { $S//c }",
            "element r { $S//* }",
            "$S/child::c",
            "$S/self::a",
            "for $t in $S return for $x in ($t)/* return if (name($x) = b) then ($x)/* else ()",
            "annot {7} ($S/*)",
        ] {
            let s = parse_query::<NatPoly>(qsrc).unwrap();
            let q = elaborate(&s).unwrap();
            let direct = crate::eval::eval_with(&q, &[("S", Value::Set(src.clone()))]).unwrap();
            let compiled = eval_with_forests(&compile(&q), &[("S", &src)]).unwrap();
            assert_eq!(
                CValue::from_uxml(&direct),
                compiled,
                "direct vs compiled disagree on {qsrc}"
            );
        }
    }

    #[test]
    fn nat_annotations_compile() {
        let src = parse_forest::<Nat>("a {2} a {3} b").unwrap();
        let s = parse_query::<Nat>("annot {2} ($S/self::a)").unwrap();
        let q = elaborate(&s).unwrap();
        let e = compile(&q);
        let out = eval_with_forests(&e, &[("S", &src)]).unwrap();
        let f = out.to_forest().unwrap();
        assert_eq!(f.get(&leaf("a")), Nat(10));
    }
}
