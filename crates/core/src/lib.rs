//! K-UXQuery — the query language for semiring-annotated unordered XML
//! (the primary contribution of Foster, Green & Tannen, *Annotated XML:
//! Queries and Provenance*, PODS 2008).
//!
//! The pipeline:
//!
//! ```text
//!  text ──parse──▶ SurfaceExpr ──elaborate──▶ Query (typed core)
//!                                              │            │
//!                                       compile│            │eval_core
//!                                              ▼            ▼
//!                                    NRC_K + srt ──eval──▶ K-complex value
//! ```
//!
//! Two independent semantics are provided and differentially tested:
//! the **compilation semantics** (§6.3, via `axml-nrc`) and a **direct
//! evaluator** over K-UXML. A third, the relational shredding of §7,
//! lives in `axml-relational`.
//!
//! # This crate is the statically-generic layer
//!
//! Everything here is generic over a compile-time `K: Semiring`.
//! Applications that want to choose the semiring (and the evaluation
//! route) *at runtime* — and to parse documents and compile queries
//! once rather than per call — should use the `axml` facade crate
//! instead: its `Engine`/`PreparedQuery` API dispatches to the
//! functions in this crate and caches every per-semiring artifact.
//! The helpers below ([`eval_query`], [`eval_query_nrc`],
//! [`run_query`]) remain the one-call entry points for code that
//! already knows its `K` — tests, benchmarks and embedded uses.
//!
//! # Quickstart (compile-time `K`)
//!
//! ```
//! use axml_core::{eval_query, parse_query};
//! use axml_semiring::NatPoly;
//! use axml_uxml::{parse_forest, Value};
//!
//! // Figure 1 of the paper.
//! let source = parse_forest::<NatPoly>(
//!     "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>",
//! ).unwrap();
//! let q = parse_query::<NatPoly>(
//!     "element p { for $t in $S return \
//!        for $x in ($t)/child::* return ($x)/child::* }",
//! ).unwrap();
//! let answer = eval_query(&q, &[("S", Value::Set(source))]).unwrap();
//! // p[ d^{z·x1·y1 + z·x2·y2}, e^{z·x2·y3} ] — variables print in
//! // canonical (name) order:
//! assert!(answer.to_string().contains("x2*y2*z + x1*y1*z"));
//! ```
//!
//! The same query through the facade (one parse, one compile, any
//! number of evaluations in any semiring):
//!
//! ```text
//! let engine = axml::Engine::new();
//! engine.load_document("S", "<a {z}> … </a>")?;
//! let q = engine.prepare("element p { for $t in $S return … }")?;
//! let symbolic = q.eval(&engine, EvalOptions::new())?;                    // ℕ[X]
//! let bags = q.eval(&engine, EvalOptions::new().semiring(SemiringKind::Nat))?;
//! ```
//!
//! # Robustness
//!
//! [`parse_query`] and [`elaborate`] never panic on malformed input:
//! parse errors carry byte offsets, nesting depth is capped (a
//! recursive-descent parser would otherwise be stack-overflowable by
//! `((((…`), and elaboration guards its own recursion so even
//! hand-built pathological ASTs fail with a [`TypeError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod eval;
pub mod hom;
pub mod parse;
pub mod path;
pub mod plan;
pub mod typecheck;

pub use ast::{Axis, ElementName, NodeTest, QType, Query, QueryNode, Step, SurfaceExpr};
pub use compile::{compile, compile_step};
pub use eval::{eval_core, eval_step, eval_step_ctx, EvalError, QueryEnv};
pub use parse::{parse_query, ParseError};
pub use path::{eval_path, eval_path_memo, extract_path, Ineligible, PathMemo, PathQuery};
pub use plan::{CompiledQuery, PAR_FOR_MIN_BINDERS};
pub use typecheck::{elaborate, elaborate_in, Context, TypeError};

use axml_semiring::Semiring;
use axml_uxml::Value;

/// Errors from the end-to-end helpers.
#[derive(Debug)]
pub enum QueryError {
    /// The query text did not parse.
    Parse(ParseError),
    /// The query did not typecheck/elaborate.
    Type(TypeError),
    /// Evaluation failed (e.g. unbound input variable).
    Eval(EvalError),
    /// NRC-route evaluation failed.
    Nrc(axml_nrc::EvalError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Type(e) => write!(f, "{e}"),
            QueryError::Eval(e) => write!(f, "{e}"),
            QueryError::Nrc(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Evaluate a surface query against named UXML inputs using the
/// **direct** semantics.
pub fn eval_query<K: Semiring>(
    q: &SurfaceExpr<K>,
    inputs: &[(&str, Value<K>)],
) -> Result<Value<K>, QueryError> {
    let core = elaborate(q).map_err(QueryError::Type)?;
    eval::eval_with(&core, inputs).map_err(QueryError::Eval)
}

/// Evaluate a surface query using the **compilation** semantics
/// (elaborate → compile to NRC_K+srt → evaluate → convert back).
pub fn eval_query_nrc<K: Semiring>(
    q: &SurfaceExpr<K>,
    inputs: &[(&str, Value<K>)],
) -> Result<Value<K>, QueryError> {
    let core = elaborate(q).map_err(QueryError::Type)?;
    let expr = compile(&core);
    let mut env = axml_nrc::Env::from_bindings(
        inputs
            .iter()
            .map(|(n, v)| ((*n).to_owned(), axml_nrc::CValue::from_uxml(v))),
    );
    let out = axml_nrc::eval(&expr, &mut env).map_err(QueryError::Nrc)?;
    out.to_uxml().ok_or_else(|| {
        QueryError::Nrc(axml_nrc::EvalError {
            msg: "query produced a non-UXML complex value".into(),
            at: expr.to_string(),
            budget: false,
        })
    })
}

/// Compile a typed core query to NRC and normalize it with the
/// equational axioms of Prop 5 (`axml_nrc::axioms::simplify`) — the
/// rewrites remove the identity big-unions and singleton redexes the
/// compiler emits. Semantics-preservation is property-tested in
/// `tests/differential.rs`; the performance effect is measured by the
/// `optimizer_ablation` bench.
pub fn compile_optimized<K: Semiring>(q: &Query<K>) -> axml_nrc::Expr<K> {
    axml_nrc::axioms::simplify(&compile(q))
}

/// Parse + evaluate in one call (direct semantics).
pub fn run_query<K: Semiring + axml_uxml::ParseAnnotation>(
    src: &str,
    inputs: &[(&str, Value<K>)],
) -> Result<Value<K>, QueryError> {
    let q = parse_query::<K>(src).map_err(QueryError::Parse)?;
    eval_query(&q, inputs)
}

/// Commonly used items.
pub mod prelude {
    pub use crate::ast::{Axis, NodeTest, QType, Query, Step, SurfaceExpr};
    pub use crate::{compile, elaborate, eval_query, eval_query_nrc, parse_query, run_query};
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_semiring::NatPoly;
    use axml_uxml::parse_forest;

    #[test]
    fn run_query_end_to_end() {
        let src = parse_forest::<NatPoly>("a {x} b {y}").unwrap();
        let out = run_query::<NatPoly>("$S/self::a", &[("S", Value::Set(src))]).unwrap();
        let Value::Set(f) = out else { panic!() };
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn both_semantics_exposed() {
        let src = parse_forest::<NatPoly>("<r> a {x} </r>").unwrap();
        let q = parse_query::<NatPoly>("$S/*").unwrap();
        let d = eval_query(&q, &[("S", Value::Set(src.clone()))]).unwrap();
        let n = eval_query_nrc(&q, &[("S", Value::Set(src))]).unwrap();
        assert_eq!(d, n);
    }

    #[test]
    fn error_display() {
        let e = run_query::<NatPoly>("for $x in", &[]).unwrap_err();
        assert!(e.to_string().contains("parse error"));
        let q = parse_query::<NatPoly>("name($S)").unwrap();
        let e2 = eval_query(&q, &[]).unwrap_err();
        assert!(e2.to_string().contains("type error"));
    }
}
