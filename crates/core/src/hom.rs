//! Lifting semiring homomorphisms over K-UXQuery — **Corollary 1**
//! (§6.4): for `h : K₁ → K₂` lifted to `H`, any K₁-UXQuery `p` and
//! K₁-UXML `v` satisfy `H(p(v)) = H(p)(H(v))`.
//!
//! The only place annotations occur in a query is `annot k p`, so the
//! lifting on queries replaces those scalars. The lifting on values is
//! [`axml_uxml::hom`]. Corollary 1 is verified by the workspace
//! `theorems` tests over randomized queries, trees and homomorphisms.

use crate::ast::{ElementName, Query, QueryNode, SurfaceExpr};
use axml_semiring::{NatPoly, Semiring, SemiringHom, Valuation};

/// Lift `h` over a typed core query.
pub fn map_query<K1, K2, H>(h: &H, q: &Query<K1>) -> Query<K2>
where
    K1: Semiring,
    K2: Semiring,
    H: SemiringHom<K1, K2>,
{
    let node = match &q.node {
        QueryNode::LabelLit(l) => QueryNode::LabelLit(*l),
        QueryNode::Var(x) => QueryNode::Var(x.clone()),
        QueryNode::Empty => QueryNode::Empty,
        QueryNode::Singleton(a) => QueryNode::Singleton(Box::new(map_query(h, a))),
        QueryNode::Union(a, b) => {
            QueryNode::Union(Box::new(map_query(h, a)), Box::new(map_query(h, b)))
        }
        QueryNode::For { var, source, body } => QueryNode::For {
            var: var.clone(),
            source: Box::new(map_query(h, source)),
            body: Box::new(map_query(h, body)),
        },
        QueryNode::Let { var, def, body } => QueryNode::Let {
            var: var.clone(),
            def: Box::new(map_query(h, def)),
            body: Box::new(map_query(h, body)),
        },
        QueryNode::If { l, r, then, els } => QueryNode::If {
            l: Box::new(map_query(h, l)),
            r: Box::new(map_query(h, r)),
            then: Box::new(map_query(h, then)),
            els: Box::new(map_query(h, els)),
        },
        QueryNode::Element { name, content } => QueryNode::Element {
            name: Box::new(map_query(h, name)),
            content: Box::new(map_query(h, content)),
        },
        QueryNode::Name(a) => QueryNode::Name(Box::new(map_query(h, a))),
        QueryNode::Annot(k, a) => QueryNode::Annot(h.apply(k), Box::new(map_query(h, a))),
        QueryNode::Path(a, s) => QueryNode::Path(Box::new(map_query(h, a)), *s),
    };
    Query::new(node, q.ty)
}

/// Lift `h` over a surface query (before elaboration).
pub fn map_surface<K1, K2, H>(h: &H, e: &SurfaceExpr<K1>) -> SurfaceExpr<K2>
where
    K1: Semiring,
    K2: Semiring,
    H: SemiringHom<K1, K2>,
{
    match e {
        SurfaceExpr::LabelLit(l) => SurfaceExpr::LabelLit(*l),
        SurfaceExpr::Var(x) => SurfaceExpr::Var(x.clone()),
        SurfaceExpr::Empty => SurfaceExpr::Empty,
        SurfaceExpr::Paren(a) => SurfaceExpr::Paren(Box::new(map_surface(h, a))),
        SurfaceExpr::Seq(a, b) => {
            SurfaceExpr::Seq(Box::new(map_surface(h, a)), Box::new(map_surface(h, b)))
        }
        SurfaceExpr::For {
            binders,
            where_eq,
            body,
        } => SurfaceExpr::For {
            binders: binders
                .iter()
                .map(|(v, s)| (v.clone(), map_surface(h, s)))
                .collect(),
            where_eq: where_eq
                .as_ref()
                .map(|(l, r)| (Box::new(map_surface(h, l)), Box::new(map_surface(h, r)))),
            body: Box::new(map_surface(h, body)),
        },
        SurfaceExpr::Let { bindings, body } => SurfaceExpr::Let {
            bindings: bindings
                .iter()
                .map(|(v, d)| (v.clone(), map_surface(h, d)))
                .collect(),
            body: Box::new(map_surface(h, body)),
        },
        SurfaceExpr::If { l, r, then, els } => SurfaceExpr::If {
            l: Box::new(map_surface(h, l)),
            r: Box::new(map_surface(h, r)),
            then: Box::new(map_surface(h, then)),
            els: Box::new(map_surface(h, els)),
        },
        SurfaceExpr::Element { name, content } => SurfaceExpr::Element {
            name: match name {
                ElementName::Static(l) => ElementName::Static(*l),
                ElementName::Dynamic(p) => ElementName::Dynamic(Box::new(map_surface(h, p))),
            },
            content: Box::new(map_surface(h, content)),
        },
        SurfaceExpr::Name(a) => SurfaceExpr::Name(Box::new(map_surface(h, a))),
        SurfaceExpr::Annot(k, a) => SurfaceExpr::Annot(h.apply(k), Box::new(map_surface(h, a))),
        SurfaceExpr::Path(a, s) => SurfaceExpr::Path(Box::new(map_surface(h, a)), *s),
    }
}

/// Specialize an ℕ\[X\]-UXQuery under a valuation (the universality
/// route of §2/§5 at the query level).
pub fn specialize_query<K: Semiring>(q: &Query<NatPoly>, val: &Valuation<K>) -> Query<K> {
    struct EvalHom<'a, K: Semiring>(&'a Valuation<K>);
    impl<K: Semiring> SemiringHom<NatPoly, K> for EvalHom<'_, K> {
        fn apply(&self, p: &NatPoly) -> K {
            p.eval(self.0)
        }
    }
    map_query(&EvalHom(val), q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_with;
    use crate::parse::parse_query;
    use crate::typecheck::elaborate;
    use axml_semiring::{dup_elim, FnHom, Nat};
    use axml_uxml::hom::map_value;
    use axml_uxml::{parse_forest, Value};

    #[test]
    fn corollary1_single_case() {
        // H(p(v)) = H(p)(H(v)) for † : ℕ → 𝔹 on a query with annot.
        let v = parse_forest::<Nat>("<r> a {2} b {0} </r> <r> a {3} </r>").unwrap();
        let s = parse_query::<Nat>("annot {2} ($S/*/self::a)").unwrap();
        let p = elaborate(&s).unwrap();
        let h = FnHom::new(dup_elim);

        let lhs = map_value(&h, &eval_with(&p, &[("S", Value::Set(v.clone()))]).unwrap());

        let hp = map_query(&h, &p);
        let hv = axml_uxml::hom::map_forest(&h, &v);
        let rhs = eval_with(&hp, &[("S", Value::Set(hv))]).unwrap();

        assert_eq!(lhs, rhs);
    }

    #[test]
    fn map_query_touches_only_annot() {
        let s = parse_query::<Nat>("annot {3} (element a {()})").unwrap();
        let p = elaborate(&s).unwrap();
        let h = FnHom::new(dup_elim);
        let p2 = map_query(&h, &p);
        let crate::ast::QueryNode::Annot(k, _) = &p2.node else {
            panic!()
        };
        assert!(*k);
    }

    #[test]
    fn map_surface_covers_sugar() {
        let s = parse_query::<Nat>(
            "for $x in $R, $y in $S where $x/B = $y/B return <t> { annot {2} ($x/A) } </t>",
        )
        .unwrap();
        let h = FnHom::new(dup_elim);
        let s2 = map_surface(&h, &s);
        // elaborates fine in the target semiring
        assert!(elaborate(&s2).is_ok());
    }

    #[test]
    fn specialize_query_evaluates_polynomials() {
        use axml_semiring::{NatPoly, Valuation, Var};
        let s = parse_query::<NatPoly>("annot {2*q} (element a {()})").unwrap();
        let p = elaborate(&s).unwrap();
        let val = Valuation::<Nat>::from_pairs([(Var::new("q"), Nat(5))]);
        let pk = specialize_query(&p, &val);
        let crate::ast::QueryNode::Annot(k, _) = &pk.node else {
            panic!()
        };
        assert_eq!(*k, Nat(10));
    }
}
