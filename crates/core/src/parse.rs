//! Parsing K-UXQuery surface syntax.
//!
//! The concrete grammar follows the paper's Fig 2 plus the sugar used
//! in its examples:
//!
//! ```text
//! query   := seq
//! seq     := single (',' single)*
//! single  := 'for' $x 'in' single (',' $y 'in' single)*
//!               ('where' single '=' single)? 'return' single
//!          | 'let' $x ':=' single (',' $y ':=' single)* 'return' single
//!          | 'if' '(' single '=' single ')' 'then' single 'else' single
//!          | 'annot' '{' K '}' single
//!          | path
//! path    := primary (('/' step) | ('//' nametest))*
//! step    := axis '::' nametest | nametest            -- default: child
//! axis    := 'self' | 'child' | 'descendant' | 'strict-descendant'
//! nametest:= NAME | '*'
//! primary := '(' query? ')' | $x | NAME
//!          | 'element' (NAME | '{' query '}') '{' query? '}'
//!          | 'name' '(' query ')'
//!          | '<' NAME '>' content* '</' NAME? '>'     -- element sugar
//!          | '<' NAME '/>'
//! content := '{' query '}' | element-sugar | NAME
//! ```
//!
//! Deviations from the paper's abstract syntax, all cosmetic:
//! `annot` takes its scalar in braces (`annot {k} p`) so any semiring's
//! annotation text can appear (same [`ParseAnnotation`] hook as the
//! document parser); `//nt` abbreviates `/descendant::nt` (the paper's
//! descendant axis, which includes the context node).

use crate::ast::{Axis, ElementName, NodeTest, Step, SurfaceExpr};
use axml_semiring::Semiring;
use axml_uxml::{Label, ParseAnnotation};
use std::fmt;

/// A parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset into the source.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "UXQuery parse error at byte {}: {}",
            self.offset, self.msg
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a K-UXQuery.
///
/// ```
/// use axml_core::parse_query;
/// use axml_semiring::NatPoly;
/// let q = parse_query::<NatPoly>(
///     "element p { for $t in $S return for $x in ($t)/child::* return ($x)/child::* }",
/// ).unwrap();
/// ```
pub fn parse_query<K: Semiring + ParseAnnotation>(src: &str) -> Result<SurfaceExpr<K>, ParseError> {
    let mut p = Parser::new(src);
    let q = p.parse_seq()?;
    p.skip_ws();
    if p.pos < p.src.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(q)
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    depth: usize,
}

const KEYWORDS: &[&str] = &[
    "for", "in", "where", "return", "let", "if", "then", "else", "element", "annot",
];

/// Maximum nesting depth of a query. The parser is recursive-descent
/// (several frames per nesting level), so without a cap adversarial
/// input like `((((…` would exhaust the stack and abort the process
/// instead of returning a `ParseError`; 128 is far beyond any
/// legitimate query and keeps peak stack use well inside a 2 MiB
/// test-thread stack even in debug builds.
const MAX_DEPTH: usize = 128;

/// Maximum length of the *iterative* left spines: items in one
/// comma-sequence, steps in one path chain, and binders/bindings in
/// one `for`/`let`. These loops don't recurse while parsing, but the
/// left-nested AST they build is dropped (and elaborated, printed,
/// evaluated) recursively — an unbounded `a,a,a,…` would abort the
/// process in drop glue even though parsing itself is flat. Shared
/// with `typecheck` (which applies the same cap to hand-built ASTs)
/// so the two layers cannot drift apart.
pub(crate) const MAX_SPINE: usize = 512;

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            pos: 0,
            depth: 0,
        }
    }

    /// Enter one nesting level; errors instead of overflowing the
    /// stack on pathologically nested input. Paired with `ascend`.
    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("query nesting exceeds {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let rest = self.rest();
        let trimmed = rest.trim_start();
        self.pos += rest.len() - trimmed.len();
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn peek_char(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    /// Peek an identifier without consuming.
    fn peek_ident(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let rest = self.rest();
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || matches!(c, '_' | '.' | '-')
            };
            if ok {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        // Exclude a trailing '-' so `strict-descendant` lexes whole but
        // `a-` (unlikely) still works; names may contain '-' internally.
        if end == 0 {
            None
        } else {
            Some(&rest[..end])
        }
    }

    fn eat_ident(&mut self) -> Option<&'a str> {
        let id = self.peek_ident()?;
        self.pos += id.len();
        Some(id)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.peek_ident() == Some(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<&'a str, ParseError> {
        self.eat_ident().ok_or_else(|| self.err("expected a name"))
    }

    fn expect_var(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        if !self.eat("$") {
            return Err(self.err("expected a variable ($name)"));
        }
        Ok(self.expect_ident()?.to_owned())
    }

    /// Read raw text between balanced braces (for annotations).
    fn read_braced_raw(&mut self) -> Result<&'a str, ParseError> {
        self.expect("{")?;
        let start = self.pos;
        let mut depth = 1usize;
        for (i, c) in self.rest().char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        let text = &self.src[start..start + i];
                        self.pos = start + i + 1;
                        return Ok(text);
                    }
                }
                _ => {}
            }
        }
        Err(self.err("unterminated '{'"))
    }

    // -- grammar ------------------------------------------------------

    fn parse_seq<K: Semiring + ParseAnnotation>(&mut self) -> Result<SurfaceExpr<K>, ParseError> {
        let mut acc = self.parse_single()?;
        let mut items = 1usize;
        while self.eat(",") {
            items += 1;
            if items > MAX_SPINE {
                return Err(self.err(format!("sequence exceeds {MAX_SPINE} items")));
            }
            let next = self.parse_single()?;
            acc = SurfaceExpr::Seq(Box::new(acc), Box::new(next));
        }
        Ok(acc)
    }

    fn parse_single<K: Semiring + ParseAnnotation>(
        &mut self,
    ) -> Result<SurfaceExpr<K>, ParseError> {
        self.descend()?;
        let out = self.parse_single_inner();
        self.ascend();
        out
    }

    fn parse_single_inner<K: Semiring + ParseAnnotation>(
        &mut self,
    ) -> Result<SurfaceExpr<K>, ParseError> {
        self.skip_ws();
        if self.eat_keyword("for") {
            return self.parse_for();
        }
        if self.eat_keyword("let") {
            return self.parse_let();
        }
        if self.eat_keyword("if") {
            return self.parse_if();
        }
        if self.eat_keyword("annot") {
            let text = self.read_braced_raw()?;
            let k = K::parse_annotation(text).map_err(|msg| self.err(msg))?;
            let body = self.parse_single()?;
            return Ok(SurfaceExpr::Annot(k, Box::new(body)));
        }
        self.parse_path()
    }

    fn parse_for<K: Semiring + ParseAnnotation>(&mut self) -> Result<SurfaceExpr<K>, ParseError> {
        let mut binders = Vec::new();
        loop {
            if binders.len() >= MAX_SPINE {
                return Err(self.err(format!("for-expression exceeds {MAX_SPINE} binders")));
            }
            let v = self.expect_var()?;
            if !self.eat_keyword("in") {
                return Err(self.err("expected 'in' in for-binder"));
            }
            let src = self.parse_single()?;
            binders.push((v, src));
            if !self.eat(",") {
                break;
            }
        }
        let where_eq = if self.eat_keyword("where") {
            let l = self.parse_single()?;
            self.expect("=")?;
            let r = self.parse_single()?;
            Some((Box::new(l), Box::new(r)))
        } else {
            None
        };
        if !self.eat_keyword("return") {
            return Err(self.err("expected 'return' in for-expression"));
        }
        let body = self.parse_single()?;
        Ok(SurfaceExpr::For {
            binders,
            where_eq,
            body: Box::new(body),
        })
    }

    fn parse_let<K: Semiring + ParseAnnotation>(&mut self) -> Result<SurfaceExpr<K>, ParseError> {
        let mut bindings = Vec::new();
        loop {
            if bindings.len() >= MAX_SPINE {
                return Err(self.err(format!("let-expression exceeds {MAX_SPINE} bindings")));
            }
            let v = self.expect_var()?;
            self.expect(":=")?;
            let def = self.parse_single()?;
            bindings.push((v, def));
            if !self.eat(",") {
                break;
            }
        }
        if !self.eat_keyword("return") {
            return Err(self.err("expected 'return' in let-expression"));
        }
        let body = self.parse_single()?;
        Ok(SurfaceExpr::Let {
            bindings,
            body: Box::new(body),
        })
    }

    fn parse_if<K: Semiring + ParseAnnotation>(&mut self) -> Result<SurfaceExpr<K>, ParseError> {
        self.expect("(")?;
        let l = self.parse_single()?;
        self.expect("=")?;
        let r = self.parse_single()?;
        self.expect(")")?;
        if !self.eat_keyword("then") {
            return Err(self.err("expected 'then'"));
        }
        let then = self.parse_single()?;
        if !self.eat_keyword("else") {
            return Err(self.err("expected 'else'"));
        }
        let els = self.parse_single()?;
        Ok(SurfaceExpr::If {
            l: Box::new(l),
            r: Box::new(r),
            then: Box::new(then),
            els: Box::new(els),
        })
    }

    fn parse_path<K: Semiring + ParseAnnotation>(&mut self) -> Result<SurfaceExpr<K>, ParseError> {
        let mut acc = self.parse_primary()?;
        let mut steps = 0usize;
        loop {
            self.skip_ws();
            if self.rest().starts_with('/') && !self.rest().starts_with("/>") {
                steps += 1;
                if steps > MAX_SPINE {
                    return Err(self.err(format!("path exceeds {MAX_SPINE} steps")));
                }
            }
            if self.rest().starts_with("//") {
                self.pos += 2;
                let test = self.parse_nametest()?;
                acc = SurfaceExpr::Path(
                    Box::new(acc),
                    Step {
                        axis: Axis::Descendant,
                        test,
                    },
                );
            } else if self.rest().starts_with('/') && !self.rest().starts_with("/>") {
                self.pos += 1;
                let step = self.parse_step()?;
                acc = SurfaceExpr::Path(Box::new(acc), step);
            } else {
                return Ok(acc);
            }
        }
    }

    fn parse_step(&mut self) -> Result<Step, ParseError> {
        self.skip_ws();
        // axis::nametest?
        for (name, axis) in [
            ("self", Axis::SelfAxis),
            ("child", Axis::Child),
            ("strict-descendant", Axis::StrictDescendant),
            ("descendant", Axis::Descendant),
        ] {
            if self.peek_ident() == Some(name) {
                let save = self.pos;
                self.pos += name.len();
                if self.eat("::") {
                    let test = self.parse_nametest()?;
                    return Ok(Step { axis, test });
                }
                self.pos = save; // plain label that collides with an axis name
                break;
            }
        }
        let test = self.parse_nametest()?;
        Ok(Step {
            axis: Axis::Child,
            test,
        })
    }

    fn parse_nametest(&mut self) -> Result<NodeTest, ParseError> {
        self.skip_ws();
        if self.eat("*") {
            return Ok(NodeTest::Wildcard);
        }
        let id = self.expect_ident()?;
        Ok(NodeTest::Label(Label::new(id)))
    }

    fn parse_primary<K: Semiring + ParseAnnotation>(
        &mut self,
    ) -> Result<SurfaceExpr<K>, ParseError> {
        self.skip_ws();
        match self.peek_char() {
            Some('(') => {
                self.expect("(")?;
                if self.eat(")") {
                    return Ok(SurfaceExpr::Empty);
                }
                let inner = self.parse_seq()?;
                self.expect(")")?;
                Ok(SurfaceExpr::Paren(Box::new(inner)))
            }
            Some('$') => {
                let v = self.expect_var()?;
                Ok(SurfaceExpr::Var(v))
            }
            Some('<') => self.parse_element_sugar(),
            Some(c) if c.is_alphabetic() || c == '_' => {
                // keywords handled by callers; here idents are either
                // `element`, `name(…)`, or a bare label literal
                let id = self
                    .peek_ident()
                    .ok_or_else(|| self.err("expected a name"))?;
                if id == "element" {
                    self.pos += id.len();
                    return self.parse_element_keyword();
                }
                if id == "name" {
                    let save = self.pos;
                    self.pos += id.len();
                    if self.eat("(") {
                        let inner = self.parse_seq()?;
                        self.expect(")")?;
                        return Ok(SurfaceExpr::Name(Box::new(inner)));
                    }
                    self.pos = save;
                }
                if KEYWORDS.contains(&id) {
                    return Err(self.err(format!("unexpected keyword `{id}`")));
                }
                self.pos += id.len();
                Ok(SurfaceExpr::LabelLit(Label::new(id)))
            }
            Some(c) => Err(self.err(format!("unexpected character {c:?}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_element_keyword<K: Semiring + ParseAnnotation>(
        &mut self,
    ) -> Result<SurfaceExpr<K>, ParseError> {
        self.skip_ws();
        let name = if self.peek_char() == Some('{') {
            self.expect("{")?;
            let e = self.parse_seq()?;
            self.expect("}")?;
            ElementName::Dynamic(Box::new(e))
        } else {
            ElementName::Static(Label::new(self.expect_ident()?))
        };
        self.expect("{")?;
        let content = if self.peek_char() == Some('}') {
            SurfaceExpr::Empty
        } else {
            self.parse_seq()?
        };
        self.expect("}")?;
        Ok(SurfaceExpr::Element {
            name,
            content: Box::new(content),
        })
    }

    /// `<a> … </a>` sugar: content items are `{query}` blocks, nested
    /// elements, or bare leaf labels; they are sequenced left to right.
    fn parse_element_sugar<K: Semiring + ParseAnnotation>(
        &mut self,
    ) -> Result<SurfaceExpr<K>, ParseError> {
        self.descend()?;
        let out = self.parse_element_sugar_inner();
        self.ascend();
        out
    }

    fn parse_element_sugar_inner<K: Semiring + ParseAnnotation>(
        &mut self,
    ) -> Result<SurfaceExpr<K>, ParseError> {
        self.expect("<")?;
        let name = Label::new(self.expect_ident()?);
        self.skip_ws();
        if self.eat("/>") {
            return Ok(SurfaceExpr::Element {
                name: ElementName::Static(name),
                content: Box::new(SurfaceExpr::Empty),
            });
        }
        self.expect(">")?;
        let mut content: Option<SurfaceExpr<K>> = None;
        loop {
            self.skip_ws();
            if self.rest().starts_with("</") {
                self.pos += 2;
                self.skip_ws();
                if !self.eat(">") {
                    let close = self.expect_ident()?;
                    if close != name.name() {
                        return Err(self.err(format!(
                            "mismatched closing tag: expected </{name}>, found </{close}>"
                        )));
                    }
                    self.expect(">")?;
                }
                break;
            }
            let item: SurfaceExpr<K> = match self.peek_char() {
                Some('{') => {
                    self.expect("{")?;
                    let e = self.parse_seq()?;
                    self.expect("}")?;
                    e
                }
                Some('<') => self.parse_element_sugar()?,
                Some(c) if c.is_alphabetic() || c == '_' => {
                    let id = self.expect_ident()?;
                    SurfaceExpr::LabelLit(Label::new(id))
                }
                Some(c) => return Err(self.err(format!("unexpected {c:?} in element content"))),
                None => return Err(self.err("unterminated element")),
            };
            content = Some(match content {
                None => item,
                Some(prev) => SurfaceExpr::Seq(Box::new(prev), Box::new(item)),
            });
        }
        Ok(SurfaceExpr::Element {
            name: ElementName::Static(name),
            content: Box::new(content.unwrap_or(SurfaceExpr::Empty)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_semiring::{Nat, NatPoly};

    fn p(src: &str) -> SurfaceExpr<NatPoly> {
        parse_query(src).unwrap_or_else(|e| panic!("parse of {src:?} failed: {e}"))
    }

    #[test]
    fn fig1_query_parses() {
        let q = p("element p { for $t in $S return for $x in ($t)/child::* return ($x)/child::* }");
        let SurfaceExpr::Element { name, .. } = &q else {
            panic!("expected element, got {q:?}")
        };
        assert_eq!(*name, ElementName::Static(Label::new("p")));
    }

    #[test]
    fn fig4_query_parses() {
        let q = p("element r { $T//c }");
        let SurfaceExpr::Element { content, .. } = &q else {
            panic!()
        };
        let SurfaceExpr::Path(_, step) = &**content else {
            panic!("expected path, got {content:?}")
        };
        assert_eq!(step.axis, Axis::Descendant);
        assert_eq!(step.test, NodeTest::Label(Label::new("c")));
    }

    #[test]
    fn fig5_query_parses() {
        let q = p(r#"
            let $r := $d/R/*,
                $rAB := for $t in $r return <t> { $t/A, $t/B } </t>,
                $rBC := for $t in $r return <t> { $t/B, $t/C } </t>,
                $s := $d/S/*
            return
              <Q> { for $x in $rAB, $y in ($rBC, $s)
                    where $x/B = $y/B
                    return <t> { $x/A, $y/C } </t> } </Q>"#);
        let SurfaceExpr::Let { bindings, .. } = &q else {
            panic!("expected let, got {q:?}")
        };
        assert_eq!(bindings.len(), 4);
        assert_eq!(bindings[0].0, "r");
        assert_eq!(bindings[3].0, "s");
    }

    #[test]
    fn where_clause_structure() {
        let q = p("for $x in $R, $y in $S where $x/B = $y/B return ($x)");
        let SurfaceExpr::For {
            binders, where_eq, ..
        } = &q
        else {
            panic!()
        };
        assert_eq!(binders.len(), 2);
        assert!(where_eq.is_some());
    }

    #[test]
    fn default_axis_is_child() {
        let q = p("$d/R/*");
        let SurfaceExpr::Path(inner, s2) = &q else {
            panic!()
        };
        assert_eq!(s2.axis, Axis::Child);
        assert_eq!(s2.test, NodeTest::Wildcard);
        let SurfaceExpr::Path(_, s1) = &**inner else {
            panic!()
        };
        assert_eq!(s1.test, NodeTest::Label(Label::new("R")));
    }

    #[test]
    fn axis_names_can_be_labels() {
        // `self` not followed by `::` is an ordinary label
        let q = p("$x/self");
        let SurfaceExpr::Path(_, s) = &q else {
            panic!()
        };
        assert_eq!(s.axis, Axis::Child);
        assert_eq!(s.test, NodeTest::Label(Label::new("self")));
        let q2 = p("$x/self::a");
        let SurfaceExpr::Path(_, s2) = &q2 else {
            panic!()
        };
        assert_eq!(s2.axis, Axis::SelfAxis);
    }

    #[test]
    fn strict_descendant_extension() {
        let q = p("$x/strict-descendant::c");
        let SurfaceExpr::Path(_, s) = &q else {
            panic!()
        };
        assert_eq!(s.axis, Axis::StrictDescendant);
    }

    #[test]
    fn annot_with_braced_polynomial() {
        let q = p("annot {x1 + 2*y} ($t)");
        let SurfaceExpr::Annot(k, _) = &q else {
            panic!()
        };
        assert_eq!(*k, "x1 + 2*y".parse::<NatPoly>().unwrap());
    }

    #[test]
    fn annot_with_nat() {
        let q: SurfaceExpr<Nat> = parse_query("annot {3} (a)").unwrap();
        let SurfaceExpr::Annot(k, _) = &q else {
            panic!()
        };
        assert_eq!(*k, Nat(3));
    }

    #[test]
    fn empty_and_paren() {
        assert_eq!(p("()"), SurfaceExpr::Empty);
        let q = p("(a)");
        assert!(matches!(q, SurfaceExpr::Paren(_)));
    }

    #[test]
    fn sequences_fold_left() {
        let q = p("a, b, c");
        let SurfaceExpr::Seq(ab, _) = &q else {
            panic!()
        };
        assert!(matches!(**ab, SurfaceExpr::Seq(..)));
    }

    #[test]
    fn element_sugar_nested_and_leaves() {
        let q = p("<t> <A> a </A> b { $x } </t>");
        let SurfaceExpr::Element { content, .. } = &q else {
            panic!()
        };
        // (((<A>a</A>), b), {$x}) as nested Seq
        assert!(matches!(**content, SurfaceExpr::Seq(..)));
    }

    #[test]
    fn self_closing_sugar() {
        let q = p("<t/>");
        let SurfaceExpr::Element { content, .. } = &q else {
            panic!()
        };
        assert_eq!(**content, SurfaceExpr::Empty);
    }

    #[test]
    fn anonymous_close() {
        let q = p("<t> a </>");
        assert!(matches!(q, SurfaceExpr::Element { .. }));
    }

    #[test]
    fn dynamic_element_name() {
        let q = p("element {name($x)} { () }");
        let SurfaceExpr::Element { name, .. } = &q else {
            panic!()
        };
        assert!(matches!(name, ElementName::Dynamic(_)));
    }

    #[test]
    fn name_function_vs_label() {
        let q = p("name($x)");
        assert!(matches!(q, SurfaceExpr::Name(_)));
        // `name` without parens is a label literal
        let q2 = p("name");
        assert_eq!(q2, SurfaceExpr::LabelLit(Label::new("name")));
    }

    #[test]
    fn errors_are_positioned() {
        let e = parse_query::<Nat>("for $x in").unwrap_err();
        assert!(
            e.msg.contains("end of input") || e.msg.contains("expected"),
            "{e}"
        );
        let e2 = parse_query::<Nat>("<a> b </c>").unwrap_err();
        assert!(e2.msg.contains("mismatched"), "{e2}");
        let e3 = parse_query::<Nat>("if ($x = $y) then a").unwrap_err();
        assert!(e3.msg.contains("else"), "{e3}");
        let e4 = parse_query::<Nat>("a b").unwrap_err();
        assert!(e4.msg.contains("trailing"), "{e4}");
    }

    #[test]
    fn keyword_cannot_be_label() {
        let e = parse_query::<Nat>("for").unwrap_err();
        assert!(!e.msg.is_empty());
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        // parens, element sugar, and for-chains must all hit the depth
        // cap and report a ParseError; any of these used to exhaust
        // the stack and abort the process.
        let parens = format!("{}a{}", "(".repeat(100_000), ")".repeat(100_000));
        let e = parse_query::<Nat>(&parens).unwrap_err();
        assert!(e.msg.contains("nesting"), "{e}");

        let elements = "<a> ".repeat(100_000);
        let e2 = parse_query::<Nat>(&elements).unwrap_err();
        assert!(e2.msg.contains("nesting"), "{e2}");

        let fors = format!("{}()", "for $x in () return ".repeat(100_000));
        let e3 = parse_query::<Nat>(&fors).unwrap_err();
        assert!(e3.msg.contains("nesting"), "{e3}");
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        let q = format!("{}a{}", "(".repeat(100), ")".repeat(100));
        assert!(parse_query::<Nat>(&q).is_ok());
    }

    #[test]
    fn flat_spine_bombs_error_instead_of_overflowing() {
        // These build left-nested ASTs in a *loop*, so the nesting cap
        // never fires — without a spine cap the megabyte-deep AST
        // would abort the process in recursive drop glue.
        let seq_bomb = vec!["a"; 100_000].join(",");
        let e = parse_query::<Nat>(&seq_bomb).unwrap_err();
        assert!(e.msg.contains("items"), "{e}");

        let path_bomb = format!("$S{}", "/a".repeat(100_000));
        let e2 = parse_query::<Nat>(&path_bomb).unwrap_err();
        assert!(e2.msg.contains("steps"), "{e2}");

        let for_bomb = format!("for {} return ()", vec!["$x in ()"; 100_000].join(", "));
        let e3 = parse_query::<Nat>(&for_bomb).unwrap_err();
        assert!(e3.msg.contains("binders"), "{e3}");

        // flat-but-reasonable spines still parse
        assert!(parse_query::<Nat>(&vec!["a"; 400].join(", ")).is_ok());
        assert!(parse_query::<Nat>(&format!("$S{}", "/a".repeat(400))).is_ok());
    }

    #[test]
    fn bare_punctuation_is_an_error() {
        for bad in ["/", "$", "<", "<a", "{", "element", "annot {1}"] {
            assert!(parse_query::<Nat>(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
