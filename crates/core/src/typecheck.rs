//! Elaboration: typed translation of surface K-UXQuery into the core
//! language (Fig 2/3), making coercions explicit and desugaring
//! `where`-clauses and multi-binder `for`s.
//!
//! ## Coercions
//!
//! The paper does "not identify a value with the singleton set
//! containing it" but "often elides the extra set constructor when it
//! is clear from context" (§3). Elaboration inserts those elided
//! constructors: wherever a `{tree}` is required,
//!
//! - a `tree` becomes the singleton set containing it (annotated `1`);
//! - a `label` `l` becomes the singleton containing the leaf
//!   `element l {()}` (a convenience extension — the paper's examples
//!   write leaves this way in element content).
//!
//! `(p)` with `p : tree` *is* the paper's singleton constructor.
//!
//! ## `where` desugaring
//!
//! Exactly the paper's §3 example: `where p₁ = p₂` with set-typed sides
//! becomes
//!
//! ```text
//! for $a in p₁/child::* return for $b in p₂/child::* return
//!   if (name($a) = name($b)) then … else ()
//! ```
//!
//! (label-typed sides use `if` directly). Note the multiplicity
//! consequences: every matching pair of children contributes a factor —
//! this is what produces the `y2²·z1²` factors in Fig 6.

use crate::ast::{
    Axis, ElementName, NodeTest, QType, Query, QueryNode, Step, SurfaceExpr, WhereEq,
};
use axml_semiring::Semiring;
use std::fmt;

/// A typing/elaboration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UXQuery type error: {}", self.msg)
    }
}

impl std::error::Error for TypeError {}

fn err<T>(msg: impl Into<String>) -> Result<T, TypeError> {
    Err(TypeError { msg: msg.into() })
}

/// Elaboration stack budget, in weighted units. Every recursion that
/// can stack up charges the shared budget before descending:
///
/// - one *nesting* level ([`Context::enter`], the
///   `elaborate_in`/`elaborate_node` pair) costs [`NODE_COST`] units —
///   those frames are large in debug builds (the `elaborate_node`
///   match keeps many `Query` temporaries live, ~2 KiB/level);
/// - one *binder* ([`Context::enter_binder`], the small
///   `elaborate_for`/`elaborate_let` self-recursion) costs 1 unit.
///
/// Charging binders is load-bearing: binder lists are flat in the
/// surface AST but produce one nested core `For` each, and a query of
/// nested `for`s with [`MAX_SPINE`] binders apiece passes every
/// per-construct cap while stacking binders × nesting frames. The
/// budget keeps the *product* bounded — and with it the output
/// `Query`'s depth, which downstream recursion (evaluation, printing,
/// drop glue) inherits. Left-nested `Seq`/`Path` spines cost one
/// level total (elaborated iteratively). Sized for a 2 MiB
/// test-thread stack: 600 units ≈ 150 pure nesting levels (above the
/// parser's 128 cap) or 600 in-scope binders (a flat 400-binder `for`
/// still elaborates); only pathological combinations get the clean
/// `TypeError`.
const MAX_DEPTH_UNITS: usize = 600;

/// Stack-budget cost of one nesting level relative to one binder.
const NODE_COST: usize = 4;

use crate::parse::MAX_SPINE;

/// The typing context Γ.
#[derive(Clone, Default, Debug)]
pub struct Context {
    bindings: Vec<(String, QType)>,
    depth: usize,
    fresh_counter: u64,
}

impl Context {
    /// Empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(name, type)` pairs.
    pub fn from_bindings<I: IntoIterator<Item = (String, QType)>>(iter: I) -> Self {
        Context {
            bindings: iter.into_iter().collect(),
            depth: 0,
            fresh_counter: 0,
        }
    }

    /// A fresh variable name for `where`-desugaring. The counter is
    /// per-elaboration (not global), so elaborating the same query
    /// twice yields identical output — `print → parse → elaborate`
    /// round-trips and cross-process runs stay comparable. The `%` is
    /// not a name character, so user variables can never collide.
    fn fresh(&mut self, hint: &str) -> String {
        let n = self.fresh_counter;
        self.fresh_counter += 1;
        format!("{hint}%{n}")
    }

    fn push(&mut self, name: &str, ty: QType) {
        self.bindings.push((name.to_owned(), ty));
    }

    fn pop(&mut self) {
        self.bindings.pop();
    }

    fn lookup(&self, name: &str) -> Option<QType> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
    }

    fn charge(&mut self, units: usize) -> Result<(), TypeError> {
        self.depth += units;
        if self.depth > MAX_DEPTH_UNITS {
            return Err(TypeError {
                msg: "query nesting exceeds the elaboration depth budget \
                      (too many nested constructs and/or in-scope binders)"
                    .into(),
            });
        }
        Ok(())
    }

    fn enter(&mut self) -> Result<(), TypeError> {
        self.charge(NODE_COST)
    }

    fn exit(&mut self) {
        self.depth -= NODE_COST;
    }

    fn enter_binder(&mut self) -> Result<(), TypeError> {
        self.charge(1)
    }

    fn exit_binder(&mut self) {
        self.depth -= 1;
    }
}

/// Elaborate with all free variables defaulting to type `{tree}`
/// (query inputs are sets of trees — the common case).
pub fn elaborate<K: Semiring>(e: &SurfaceExpr<K>) -> Result<Query<K>, TypeError> {
    elaborate_in(e, &mut Context::new())
}

/// Elaborate in an explicit context; unbound variables default to
/// `{tree}`.
pub fn elaborate_in<K: Semiring>(
    e: &SurfaceExpr<K>,
    ctx: &mut Context,
) -> Result<Query<K>, TypeError> {
    ctx.enter()?;
    let out = elaborate_node(e, ctx);
    ctx.exit();
    out
}

fn elaborate_node<K: Semiring>(
    e: &SurfaceExpr<K>,
    ctx: &mut Context,
) -> Result<Query<K>, TypeError> {
    match e {
        SurfaceExpr::LabelLit(l) => Ok(Query::new(QueryNode::LabelLit(*l), QType::Label)),
        SurfaceExpr::Var(x) => {
            let ty = ctx.lookup(x).unwrap_or(QType::TreeSet);
            Ok(Query::new(QueryNode::Var(x.clone()), ty))
        }
        SurfaceExpr::Empty => Ok(Query::new(QueryNode::Empty, QType::TreeSet)),
        SurfaceExpr::Paren(inner) => {
            let q = elaborate_in(inner, ctx)?;
            match q.ty {
                // `(p)` on a tree is the paper's singleton constructor.
                QType::Tree => Ok(singleton(q)),
                _ => Ok(q),
            }
        }
        // Seq and Path spines go to dedicated helpers — both to treat
        // an N-item spine as one nesting level and to keep their Vec
        // locals out of elaborate_node's (recursive, debug-mode)
        // stack frame.
        SurfaceExpr::Seq(..) => elaborate_seq_spine(e, ctx),
        SurfaceExpr::For {
            binders,
            where_eq,
            body,
        } => {
            if binders.is_empty() {
                return err("for-expression with no binders");
            }
            // Binder count drives elaborate_for's recursion; cap it
            // here (one check, not one depth charge per binder) so a
            // 500-binder `for` still elaborates.
            if binders.len() > MAX_SPINE {
                return err(format!("for-expression exceeds {MAX_SPINE} binders"));
            }
            elaborate_for(binders, where_eq.as_ref(), body, ctx, 0)
        }
        SurfaceExpr::Let { bindings, body } => {
            if bindings.is_empty() {
                return err("let-expression with no bindings");
            }
            if bindings.len() > MAX_SPINE {
                return err(format!("let-expression exceeds {MAX_SPINE} bindings"));
            }
            elaborate_let(bindings, body, ctx, 0)
        }
        SurfaceExpr::If { l, r, then, els } => {
            let ql = elaborate_in(l, ctx)?;
            let qr = elaborate_in(r, ctx)?;
            if ql.ty != QType::Label || qr.ty != QType::Label {
                return err(format!(
                    "if compares {} and {}; only labels may be compared (positivity, §6.1)",
                    ql.ty, qr.ty
                ));
            }
            let qt = elaborate_in(then, ctx)?;
            let qe = elaborate_in(els, ctx)?;
            let (qt, qe, ty) = unify_branches(qt, qe)?;
            Ok(Query::new(
                QueryNode::If {
                    l: Box::new(ql),
                    r: Box::new(qr),
                    then: Box::new(qt),
                    els: Box::new(qe),
                },
                ty,
            ))
        }
        SurfaceExpr::Element { name, content } => {
            let qname = match name {
                ElementName::Static(l) => Query::new(QueryNode::LabelLit(*l), QType::Label),
                ElementName::Dynamic(p) => {
                    let q = elaborate_in(p, ctx)?;
                    if q.ty != QType::Label {
                        return err(format!("element name has type {}, expected label", q.ty));
                    }
                    q
                }
            };
            let qc = coerce_set(elaborate_in(content, ctx)?)?;
            Ok(Query::new(
                QueryNode::Element {
                    name: Box::new(qname),
                    content: Box::new(qc),
                },
                QType::Tree,
            ))
        }
        SurfaceExpr::Name(p) => {
            let q = elaborate_in(p, ctx)?;
            if q.ty != QType::Tree {
                return err(format!(
                    "name() takes a single tree, got {} (bind it in a for-loop first)",
                    q.ty
                ));
            }
            Ok(Query::new(QueryNode::Name(Box::new(q)), QType::Label))
        }
        SurfaceExpr::Annot(k, p) => {
            let q = coerce_set(elaborate_in(p, ctx)?)?;
            Ok(Query::new(
                QueryNode::Annot(k.clone(), Box::new(q)),
                QType::TreeSet,
            ))
        }
        SurfaceExpr::Path(..) => elaborate_path_spine(e, ctx),
    }
}

/// Elaborate a left-nested `Seq` spine iteratively: `a, b, c` parses
/// as `Seq(Seq(a,b),c)` and an N-item sequence must cost one nesting
/// level, not N (and must not recurse N deep).
fn elaborate_seq_spine<K: Semiring>(
    e: &SurfaceExpr<K>,
    ctx: &mut Context,
) -> Result<Query<K>, TypeError> {
    let mut rights = Vec::new();
    let mut cur = e;
    while let SurfaceExpr::Seq(a, b) = cur {
        rights.push(&**b);
        if rights.len() > MAX_SPINE {
            return err(format!("sequence exceeds {MAX_SPINE} items"));
        }
        cur = a;
    }
    let mut acc = coerce_set(elaborate_in(cur, ctx)?)?;
    for b in rights.into_iter().rev() {
        let qb = coerce_set(elaborate_in(b, ctx)?)?;
        acc = Query::new(
            QueryNode::Union(Box::new(acc), Box::new(qb)),
            QType::TreeSet,
        );
    }
    Ok(acc)
}

/// Elaborate a `Path` chain iteratively: `$S/a/b/…` is flat, not
/// nested (same spine treatment as [`elaborate_seq_spine`]).
fn elaborate_path_spine<K: Semiring>(
    e: &SurfaceExpr<K>,
    ctx: &mut Context,
) -> Result<Query<K>, TypeError> {
    let mut steps = Vec::new();
    let mut cur = e;
    while let SurfaceExpr::Path(p, step) = cur {
        steps.push(*step);
        if steps.len() > MAX_SPINE {
            return err(format!("path exceeds {MAX_SPINE} steps"));
        }
        cur = p;
    }
    let mut acc = coerce_set(elaborate_in(cur, ctx)?)?;
    for step in steps.into_iter().rev() {
        acc = Query::new(QueryNode::Path(Box::new(acc), step), QType::TreeSet);
    }
    Ok(acc)
}

fn elaborate_for<K: Semiring>(
    binders: &[(String, SurfaceExpr<K>)],
    where_eq: Option<&WhereEq<K>>,
    body: &SurfaceExpr<K>,
    ctx: &mut Context,
    i: usize,
) -> Result<Query<K>, TypeError> {
    if i == binders.len() {
        // innermost: desugar the where-clause around the body
        return match where_eq {
            None => coerce_set(elaborate_in(body, ctx)?),
            Some((lhs, rhs)) => {
                let ql = elaborate_in(lhs, ctx)?;
                let qr = elaborate_in(rhs, ctx)?;
                let qbody = coerce_set(elaborate_in(body, ctx)?)?;
                desugar_where(ql, qr, qbody, ctx)
            }
        };
    }
    let (v, src) = &binders[i];
    let qsrc = coerce_set(elaborate_in(src, ctx)?)?;
    ctx.enter_binder()?;
    ctx.push(v, QType::Tree);
    let inner = elaborate_for(binders, where_eq, body, ctx, i + 1);
    ctx.pop();
    ctx.exit_binder();
    Ok(Query::new(
        QueryNode::For {
            var: v.clone(),
            source: Box::new(qsrc),
            body: Box::new(inner?),
        },
        QType::TreeSet,
    ))
}

fn elaborate_let<K: Semiring>(
    bindings: &[(String, SurfaceExpr<K>)],
    body: &SurfaceExpr<K>,
    ctx: &mut Context,
    i: usize,
) -> Result<Query<K>, TypeError> {
    if i == bindings.len() {
        return elaborate_in(body, ctx);
    }
    let (v, def) = &bindings[i];
    let qdef = elaborate_in(def, ctx)?;
    let def_ty = qdef.ty;
    ctx.enter_binder()?;
    ctx.push(v, def_ty);
    let inner = elaborate_let(bindings, body, ctx, i + 1);
    ctx.pop();
    ctx.exit_binder();
    let inner = inner?;
    let ty = inner.ty;
    Ok(Query::new(
        QueryNode::Let {
            var: v.clone(),
            def: Box::new(qdef),
            body: Box::new(inner),
        },
        ty,
    ))
}

/// The paper's where-clause normalization (§3).
fn desugar_where<K: Semiring>(
    lhs: Query<K>,
    rhs: Query<K>,
    body: Query<K>,
    ctx: &mut Context,
) -> Result<Query<K>, TypeError> {
    if lhs.ty == QType::Label && rhs.ty == QType::Label {
        let ty = body.ty;
        return Ok(Query::new(
            QueryNode::If {
                l: Box::new(lhs),
                r: Box::new(rhs),
                then: Box::new(body),
                els: Box::new(Query::new(QueryNode::Empty, QType::TreeSet)),
            },
            ty,
        ));
    }
    let lset = coerce_set(lhs)?;
    let rset = coerce_set(rhs)?;
    let a = ctx.fresh("a");
    let b = ctx.fresh("b");
    let kids = |q: Query<K>| {
        Query::new(
            QueryNode::Path(
                Box::new(q),
                Step {
                    axis: Axis::Child,
                    test: NodeTest::Wildcard,
                },
            ),
            QType::TreeSet,
        )
    };
    let name_of = |v: &str| {
        Query::new(
            QueryNode::Name(Box::new(Query::new(
                QueryNode::Var(v.to_owned()),
                QType::Tree,
            ))),
            QType::Label,
        )
    };
    let inner_if = Query::new(
        QueryNode::If {
            l: Box::new(name_of(&a)),
            r: Box::new(name_of(&b)),
            then: Box::new(body),
            els: Box::new(Query::new(QueryNode::Empty, QType::TreeSet)),
        },
        QType::TreeSet,
    );
    let inner_for = Query::new(
        QueryNode::For {
            var: b.clone(),
            source: Box::new(kids(rset)),
            body: Box::new(inner_if),
        },
        QType::TreeSet,
    );
    Ok(Query::new(
        QueryNode::For {
            var: a,
            source: Box::new(kids(lset)),
            body: Box::new(inner_for),
        },
        QType::TreeSet,
    ))
}

/// Wrap a tree (or label, as leaf) in its singleton set.
fn singleton<K: Semiring>(q: Query<K>) -> Query<K> {
    Query::new(QueryNode::Singleton(Box::new(q)), QType::TreeSet)
}

/// Coerce to `{tree}` (see module docs).
fn coerce_set<K: Semiring>(q: Query<K>) -> Result<Query<K>, TypeError> {
    match q.ty {
        QType::TreeSet => Ok(q),
        QType::Tree => Ok(singleton(q)),
        QType::Label => {
            // leaf-element convenience: `l` ↦ `(element l {()})`
            let leaf = Query::new(
                QueryNode::Element {
                    name: Box::new(q),
                    content: Box::new(Query::new(QueryNode::Empty, QType::TreeSet)),
                },
                QType::Tree,
            );
            Ok(singleton(leaf))
        }
    }
}

/// Unify if-branches: equal types, or both coerced to `{tree}`.
fn unify_branches<K: Semiring>(
    t: Query<K>,
    e: Query<K>,
) -> Result<(Query<K>, Query<K>, QType), TypeError> {
    if t.ty == e.ty {
        let ty = t.ty;
        return Ok((t, e, ty));
    }
    if t.ty == QType::Label || e.ty == QType::Label {
        return err(format!(
            "if-branches have incompatible types {} and {}",
            t.ty, e.ty
        ));
    }
    let t2 = coerce_set(t)?;
    let e2 = coerce_set(e)?;
    Ok((t2, e2, QType::TreeSet))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use axml_semiring::{Nat, NatPoly};

    fn elab(src: &str) -> Query<NatPoly> {
        let s = parse_query::<NatPoly>(src).expect("parses");
        elaborate(&s).unwrap_or_else(|e| panic!("elaboration of {src:?} failed: {e}"))
    }

    #[test]
    fn paren_on_tree_is_singleton() {
        let q = elab("(element a {()})");
        assert_eq!(q.ty, QType::TreeSet);
        assert!(matches!(q.node, QueryNode::Singleton(_)));
    }

    #[test]
    fn paren_on_set_is_transparent() {
        let q = elab("($S)");
        assert!(matches!(q.node, QueryNode::Var(_)));
        assert_eq!(q.ty, QType::TreeSet);
    }

    #[test]
    fn free_vars_default_to_tree_set() {
        let q = elab("$S");
        assert_eq!(q.ty, QType::TreeSet);
    }

    #[test]
    fn for_binds_tree() {
        let q = elab("for $t in $S return ($t)");
        let QueryNode::For { body, .. } = &q.node else {
            panic!()
        };
        // ($t) with $t : tree elaborates to a singleton
        assert!(matches!(body.node, QueryNode::Singleton(_)));
    }

    #[test]
    fn multi_binders_nest() {
        let q = elab("for $x in $R, $y in $S return ($x)");
        let QueryNode::For { var, body, .. } = &q.node else {
            panic!()
        };
        assert_eq!(var, "x");
        assert!(matches!(
            &body.node,
            QueryNode::For { var, .. } if var == "y"
        ));
    }

    #[test]
    fn where_desugars_to_paper_form() {
        let q = elab("for $x in $R, $y in $S where $x/B = $y/B return <t> {()} </t>");
        // for x → for y → for a in x/B/* → for b in y/B/* → if name(a)=name(b)
        let QueryNode::For { body: y_for, .. } = &q.node else {
            panic!()
        };
        let QueryNode::For { body: a_for, .. } = &y_for.node else {
            panic!()
        };
        let QueryNode::For {
            source,
            body: b_for,
            ..
        } = &a_for.node
        else {
            panic!("expected where-generated for, got {a_for}")
        };
        // source is $x/B/child::*
        let QueryNode::Path(_, step) = &source.node else {
            panic!()
        };
        assert_eq!(step.test, NodeTest::Wildcard);
        let QueryNode::For { body: if_q, .. } = &b_for.node else {
            panic!()
        };
        assert!(matches!(if_q.node, QueryNode::If { .. }));
    }

    #[test]
    fn where_on_labels_uses_if_directly() {
        let q = elab("for $x in $R, $y in $S where name($x) = name($y) return ($x)");
        let QueryNode::For { body, .. } = &q.node else {
            panic!()
        };
        let QueryNode::For { body: inner, .. } = &body.node else {
            panic!()
        };
        assert!(matches!(inner.node, QueryNode::If { .. }));
    }

    #[test]
    fn element_content_coerced() {
        let q = elab("element t { a }");
        let QueryNode::Element { content, .. } = &q.node else {
            panic!()
        };
        // bare label a became singleton(element a {()})
        assert_eq!(content.ty, QType::TreeSet);
        assert!(matches!(content.node, QueryNode::Singleton(_)));
    }

    #[test]
    fn name_requires_tree() {
        let s = parse_query::<Nat>("name($S)").unwrap();
        let e = elaborate(&s).unwrap_err();
        assert!(e.msg.contains("single tree"), "{e}");
    }

    #[test]
    fn if_requires_labels() {
        let s = parse_query::<Nat>("if ($S = $T) then a else b").unwrap();
        let e = elaborate(&s).unwrap_err();
        assert!(e.msg.contains("positivity"), "{e}");
    }

    #[test]
    fn if_branches_unify_via_sets() {
        // one branch tree, one branch set → both coerced
        let q = elab("for $t in $S return if (name($t) = a) then element x {()} else ()");
        let QueryNode::For { body, .. } = &q.node else {
            panic!()
        };
        assert_eq!(body.ty, QType::TreeSet);
    }

    #[test]
    fn if_label_branches_stay_labels() {
        let q = elab("for $t in $S return (element {if (name($t) = a) then b else c} {()})");
        assert_eq!(q.ty, QType::TreeSet);
    }

    #[test]
    fn path_coerces_tree_source() {
        // ($t)/A with $t : tree — the paper's elided coercion
        let q = elab("for $t in $S return $t/A");
        let QueryNode::For { body, .. } = &q.node else {
            panic!()
        };
        let QueryNode::Path(src, _) = &body.node else {
            panic!()
        };
        assert!(matches!(src.node, QueryNode::Singleton(_)));
    }

    #[test]
    fn let_propagates_types() {
        let q = elab("let $r := $d/R return for $t in $r return ($t)");
        let QueryNode::Let { def, .. } = &q.node else {
            panic!()
        };
        assert_eq!(def.ty, QType::TreeSet);
    }

    #[test]
    fn annot_result_is_set() {
        let q = elab("annot {2} (element a {()})");
        assert_eq!(q.ty, QType::TreeSet);
    }

    #[test]
    fn programmatic_deep_ast_errors_instead_of_overflowing() {
        // Deeper than the budget allows but shallow enough that
        // dropping the AST itself (recursive drop glue) stays within
        // the stack.
        let mut e: SurfaceExpr<Nat> = SurfaceExpr::Var("S".into());
        for _ in 0..MAX_DEPTH_UNITS {
            e = SurfaceExpr::Paren(Box::new(e));
        }
        let err = elaborate(&e).unwrap_err();
        assert!(err.msg.contains("nesting"), "{err}");
    }

    #[test]
    fn many_binders_error_instead_of_overflowing() {
        // Binder count drives elaborate_for's recursion, which the
        // parser's nesting cap does not bound.
        let binders: Vec<(String, SurfaceExpr<Nat>)> = (0..10_000)
            .map(|i| (format!("v{i}"), SurfaceExpr::Empty))
            .collect();
        let e = SurfaceExpr::For {
            binders,
            where_eq: None,
            body: Box::new(SurfaceExpr::Empty),
        };
        let err = elaborate(&e).unwrap_err();
        assert!(err.msg.contains("binders"), "{err}");
    }

    #[test]
    fn flat_spines_do_not_count_as_nesting() {
        // A flat 400-item sequence, 400-step path, and 400-binder for
        // are all legitimate queries: spines are elaborated
        // iteratively and must not trip the nesting-depth cap.
        let seq = vec!["a"; 400].join(", ");
        assert_eq!(elab(&seq).ty, QType::TreeSet);

        let path = format!("$S{}", "/a".repeat(400));
        assert_eq!(elab(&path).ty, QType::TreeSet);

        let fors = format!(
            "for {} return ()",
            (0..400)
                .map(|i| format!("$v{i} in $S"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        assert_eq!(elab(&fors).ty, QType::TreeSet);
    }

    #[test]
    fn nested_fors_times_binders_error_instead_of_overflowing() {
        // Parser-accepted: every per-construct cap holds (nesting ≤
        // 128, binders per for ≤ 512), but binders × nesting would
        // stack ~10k elaborate_for frames without the shared budget.
        let binders = (0..500)
            .map(|i| format!("$v{i} in $S"))
            .collect::<Vec<_>>()
            .join(", ");
        let mut q = "()".to_owned();
        for _ in 0..20 {
            q = format!("for {binders} return {q}");
        }
        let parsed = parse_query::<Nat>(&q).expect("parser accepts it");
        let err = elaborate(&parsed).unwrap_err();
        assert!(err.msg.contains("nesting"), "{err}");
    }

    #[test]
    fn programmatic_spine_bombs_error_instead_of_overflowing() {
        // Hand-built left spines beyond MAX_SPINE get a TypeError from
        // the iterative walk, long before any recursion could build up.
        let mut e: SurfaceExpr<Nat> = SurfaceExpr::Empty;
        for _ in 0..MAX_SPINE + 100 {
            e = SurfaceExpr::Seq(Box::new(e), Box::new(SurfaceExpr::Empty));
        }
        let err = elaborate(&e).unwrap_err();
        assert!(err.msg.contains("items"), "{err}");

        let mut p: SurfaceExpr<Nat> = SurfaceExpr::Var("S".into());
        for _ in 0..MAX_SPINE + 100 {
            p = SurfaceExpr::Path(
                Box::new(p),
                Step {
                    axis: Axis::Child,
                    test: NodeTest::Wildcard,
                },
            );
        }
        let err2 = elaborate(&p).unwrap_err();
        assert!(err2.msg.contains("steps"), "{err2}");
    }
}
