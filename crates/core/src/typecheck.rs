//! Elaboration: typed translation of surface K-UXQuery into the core
//! language (Fig 2/3), making coercions explicit and desugaring
//! `where`-clauses and multi-binder `for`s.
//!
//! ## Coercions
//!
//! The paper does "not identify a value with the singleton set
//! containing it" but "often elides the extra set constructor when it
//! is clear from context" (§3). Elaboration inserts those elided
//! constructors: wherever a `{tree}` is required,
//!
//! - a `tree` becomes the singleton set containing it (annotated `1`);
//! - a `label` `l` becomes the singleton containing the leaf
//!   `element l {()}` (a convenience extension — the paper's examples
//!   write leaves this way in element content).
//!
//! `(p)` with `p : tree` *is* the paper's singleton constructor.
//!
//! ## `where` desugaring
//!
//! Exactly the paper's §3 example: `where p₁ = p₂` with set-typed sides
//! becomes
//!
//! ```text
//! for $a in p₁/child::* return for $b in p₂/child::* return
//!   if (name($a) = name($b)) then … else ()
//! ```
//!
//! (label-typed sides use `if` directly). Note the multiplicity
//! consequences: every matching pair of children contributes a factor —
//! this is what produces the `y2²·z1²` factors in Fig 6.

use crate::ast::{
    Axis, ElementName, NodeTest, QType, Query, QueryNode, Step, SurfaceExpr, WhereEq,
};
use axml_semiring::Semiring;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A typing/elaboration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UXQuery type error: {}", self.msg)
    }
}

impl std::error::Error for TypeError {}

fn err<T>(msg: impl Into<String>) -> Result<T, TypeError> {
    Err(TypeError { msg: msg.into() })
}

/// The typing context Γ.
#[derive(Clone, Default, Debug)]
pub struct Context {
    bindings: Vec<(String, QType)>,
}

impl Context {
    /// Empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(name, type)` pairs.
    pub fn from_bindings<I: IntoIterator<Item = (String, QType)>>(iter: I) -> Self {
        Context {
            bindings: iter.into_iter().collect(),
        }
    }

    fn push(&mut self, name: &str, ty: QType) {
        self.bindings.push((name.to_owned(), ty));
    }

    fn pop(&mut self) {
        self.bindings.pop();
    }

    fn lookup(&self, name: &str) -> Option<QType> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
    }
}

fn fresh(hint: &str) -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{hint}%{n}")
}

/// Elaborate with all free variables defaulting to type `{tree}`
/// (query inputs are sets of trees — the common case).
pub fn elaborate<K: Semiring>(e: &SurfaceExpr<K>) -> Result<Query<K>, TypeError> {
    elaborate_in(e, &mut Context::new())
}

/// Elaborate in an explicit context; unbound variables default to
/// `{tree}`.
pub fn elaborate_in<K: Semiring>(
    e: &SurfaceExpr<K>,
    ctx: &mut Context,
) -> Result<Query<K>, TypeError> {
    match e {
        SurfaceExpr::LabelLit(l) => Ok(Query::new(QueryNode::LabelLit(*l), QType::Label)),
        SurfaceExpr::Var(x) => {
            let ty = ctx.lookup(x).unwrap_or(QType::TreeSet);
            Ok(Query::new(QueryNode::Var(x.clone()), ty))
        }
        SurfaceExpr::Empty => Ok(Query::new(QueryNode::Empty, QType::TreeSet)),
        SurfaceExpr::Paren(inner) => {
            let q = elaborate_in(inner, ctx)?;
            match q.ty {
                // `(p)` on a tree is the paper's singleton constructor.
                QType::Tree => Ok(singleton(q)),
                _ => Ok(q),
            }
        }
        SurfaceExpr::Seq(a, b) => {
            let qa = coerce_set(elaborate_in(a, ctx)?)?;
            let qb = coerce_set(elaborate_in(b, ctx)?)?;
            Ok(Query::new(
                QueryNode::Union(Box::new(qa), Box::new(qb)),
                QType::TreeSet,
            ))
        }
        SurfaceExpr::For {
            binders,
            where_eq,
            body,
        } => {
            if binders.is_empty() {
                return err("for-expression with no binders");
            }
            elaborate_for(binders, where_eq.as_ref(), body, ctx, 0)
        }
        SurfaceExpr::Let { bindings, body } => {
            if bindings.is_empty() {
                return err("let-expression with no bindings");
            }
            elaborate_let(bindings, body, ctx, 0)
        }
        SurfaceExpr::If { l, r, then, els } => {
            let ql = elaborate_in(l, ctx)?;
            let qr = elaborate_in(r, ctx)?;
            if ql.ty != QType::Label || qr.ty != QType::Label {
                return err(format!(
                    "if compares {} and {}; only labels may be compared (positivity, §6.1)",
                    ql.ty, qr.ty
                ));
            }
            let qt = elaborate_in(then, ctx)?;
            let qe = elaborate_in(els, ctx)?;
            let (qt, qe, ty) = unify_branches(qt, qe)?;
            Ok(Query::new(
                QueryNode::If {
                    l: Box::new(ql),
                    r: Box::new(qr),
                    then: Box::new(qt),
                    els: Box::new(qe),
                },
                ty,
            ))
        }
        SurfaceExpr::Element { name, content } => {
            let qname = match name {
                ElementName::Static(l) => Query::new(QueryNode::LabelLit(*l), QType::Label),
                ElementName::Dynamic(p) => {
                    let q = elaborate_in(p, ctx)?;
                    if q.ty != QType::Label {
                        return err(format!("element name has type {}, expected label", q.ty));
                    }
                    q
                }
            };
            let qc = coerce_set(elaborate_in(content, ctx)?)?;
            Ok(Query::new(
                QueryNode::Element {
                    name: Box::new(qname),
                    content: Box::new(qc),
                },
                QType::Tree,
            ))
        }
        SurfaceExpr::Name(p) => {
            let q = elaborate_in(p, ctx)?;
            if q.ty != QType::Tree {
                return err(format!(
                    "name() takes a single tree, got {} (bind it in a for-loop first)",
                    q.ty
                ));
            }
            Ok(Query::new(QueryNode::Name(Box::new(q)), QType::Label))
        }
        SurfaceExpr::Annot(k, p) => {
            let q = coerce_set(elaborate_in(p, ctx)?)?;
            Ok(Query::new(
                QueryNode::Annot(k.clone(), Box::new(q)),
                QType::TreeSet,
            ))
        }
        SurfaceExpr::Path(p, step) => {
            let q = coerce_set(elaborate_in(p, ctx)?)?;
            Ok(Query::new(
                QueryNode::Path(Box::new(q), *step),
                QType::TreeSet,
            ))
        }
    }
}

fn elaborate_for<K: Semiring>(
    binders: &[(String, SurfaceExpr<K>)],
    where_eq: Option<&WhereEq<K>>,
    body: &SurfaceExpr<K>,
    ctx: &mut Context,
    i: usize,
) -> Result<Query<K>, TypeError> {
    if i == binders.len() {
        // innermost: desugar the where-clause around the body
        return match where_eq {
            None => coerce_set(elaborate_in(body, ctx)?),
            Some((lhs, rhs)) => {
                let ql = elaborate_in(lhs, ctx)?;
                let qr = elaborate_in(rhs, ctx)?;
                let qbody = coerce_set(elaborate_in(body, ctx)?)?;
                desugar_where(ql, qr, qbody)
            }
        };
    }
    let (v, src) = &binders[i];
    let qsrc = coerce_set(elaborate_in(src, ctx)?)?;
    ctx.push(v, QType::Tree);
    let inner = elaborate_for(binders, where_eq, body, ctx, i + 1);
    ctx.pop();
    Ok(Query::new(
        QueryNode::For {
            var: v.clone(),
            source: Box::new(qsrc),
            body: Box::new(inner?),
        },
        QType::TreeSet,
    ))
}

fn elaborate_let<K: Semiring>(
    bindings: &[(String, SurfaceExpr<K>)],
    body: &SurfaceExpr<K>,
    ctx: &mut Context,
    i: usize,
) -> Result<Query<K>, TypeError> {
    if i == bindings.len() {
        return elaborate_in(body, ctx);
    }
    let (v, def) = &bindings[i];
    let qdef = elaborate_in(def, ctx)?;
    let def_ty = qdef.ty;
    ctx.push(v, def_ty);
    let inner = elaborate_let(bindings, body, ctx, i + 1);
    ctx.pop();
    let inner = inner?;
    let ty = inner.ty;
    Ok(Query::new(
        QueryNode::Let {
            var: v.clone(),
            def: Box::new(qdef),
            body: Box::new(inner),
        },
        ty,
    ))
}

/// The paper's where-clause normalization (§3).
fn desugar_where<K: Semiring>(
    lhs: Query<K>,
    rhs: Query<K>,
    body: Query<K>,
) -> Result<Query<K>, TypeError> {
    if lhs.ty == QType::Label && rhs.ty == QType::Label {
        let ty = body.ty;
        return Ok(Query::new(
            QueryNode::If {
                l: Box::new(lhs),
                r: Box::new(rhs),
                then: Box::new(body),
                els: Box::new(Query::new(QueryNode::Empty, QType::TreeSet)),
            },
            ty,
        ));
    }
    let lset = coerce_set(lhs)?;
    let rset = coerce_set(rhs)?;
    let a = fresh("a");
    let b = fresh("b");
    let kids = |q: Query<K>| {
        Query::new(
            QueryNode::Path(
                Box::new(q),
                Step {
                    axis: Axis::Child,
                    test: NodeTest::Wildcard,
                },
            ),
            QType::TreeSet,
        )
    };
    let name_of = |v: &str| {
        Query::new(
            QueryNode::Name(Box::new(Query::new(
                QueryNode::Var(v.to_owned()),
                QType::Tree,
            ))),
            QType::Label,
        )
    };
    let inner_if = Query::new(
        QueryNode::If {
            l: Box::new(name_of(&a)),
            r: Box::new(name_of(&b)),
            then: Box::new(body),
            els: Box::new(Query::new(QueryNode::Empty, QType::TreeSet)),
        },
        QType::TreeSet,
    );
    let inner_for = Query::new(
        QueryNode::For {
            var: b.clone(),
            source: Box::new(kids(rset)),
            body: Box::new(inner_if),
        },
        QType::TreeSet,
    );
    Ok(Query::new(
        QueryNode::For {
            var: a,
            source: Box::new(kids(lset)),
            body: Box::new(inner_for),
        },
        QType::TreeSet,
    ))
}

/// Wrap a tree (or label, as leaf) in its singleton set.
fn singleton<K: Semiring>(q: Query<K>) -> Query<K> {
    Query::new(QueryNode::Singleton(Box::new(q)), QType::TreeSet)
}

/// Coerce to `{tree}` (see module docs).
fn coerce_set<K: Semiring>(q: Query<K>) -> Result<Query<K>, TypeError> {
    match q.ty {
        QType::TreeSet => Ok(q),
        QType::Tree => Ok(singleton(q)),
        QType::Label => {
            // leaf-element convenience: `l` ↦ `(element l {()})`
            let leaf = Query::new(
                QueryNode::Element {
                    name: Box::new(q),
                    content: Box::new(Query::new(QueryNode::Empty, QType::TreeSet)),
                },
                QType::Tree,
            );
            Ok(singleton(leaf))
        }
    }
}

/// Unify if-branches: equal types, or both coerced to `{tree}`.
fn unify_branches<K: Semiring>(
    t: Query<K>,
    e: Query<K>,
) -> Result<(Query<K>, Query<K>, QType), TypeError> {
    if t.ty == e.ty {
        let ty = t.ty;
        return Ok((t, e, ty));
    }
    if t.ty == QType::Label || e.ty == QType::Label {
        return err(format!(
            "if-branches have incompatible types {} and {}",
            t.ty, e.ty
        ));
    }
    let t2 = coerce_set(t)?;
    let e2 = coerce_set(e)?;
    Ok((t2, e2, QType::TreeSet))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use axml_semiring::{Nat, NatPoly};

    fn elab(src: &str) -> Query<NatPoly> {
        let s = parse_query::<NatPoly>(src).expect("parses");
        elaborate(&s).unwrap_or_else(|e| panic!("elaboration of {src:?} failed: {e}"))
    }

    #[test]
    fn paren_on_tree_is_singleton() {
        let q = elab("(element a {()})");
        assert_eq!(q.ty, QType::TreeSet);
        assert!(matches!(q.node, QueryNode::Singleton(_)));
    }

    #[test]
    fn paren_on_set_is_transparent() {
        let q = elab("($S)");
        assert!(matches!(q.node, QueryNode::Var(_)));
        assert_eq!(q.ty, QType::TreeSet);
    }

    #[test]
    fn free_vars_default_to_tree_set() {
        let q = elab("$S");
        assert_eq!(q.ty, QType::TreeSet);
    }

    #[test]
    fn for_binds_tree() {
        let q = elab("for $t in $S return ($t)");
        let QueryNode::For { body, .. } = &q.node else {
            panic!()
        };
        // ($t) with $t : tree elaborates to a singleton
        assert!(matches!(body.node, QueryNode::Singleton(_)));
    }

    #[test]
    fn multi_binders_nest() {
        let q = elab("for $x in $R, $y in $S return ($x)");
        let QueryNode::For { var, body, .. } = &q.node else {
            panic!()
        };
        assert_eq!(var, "x");
        assert!(matches!(
            &body.node,
            QueryNode::For { var, .. } if var == "y"
        ));
    }

    #[test]
    fn where_desugars_to_paper_form() {
        let q = elab("for $x in $R, $y in $S where $x/B = $y/B return <t> {()} </t>");
        // for x → for y → for a in x/B/* → for b in y/B/* → if name(a)=name(b)
        let QueryNode::For { body: y_for, .. } = &q.node else {
            panic!()
        };
        let QueryNode::For { body: a_for, .. } = &y_for.node else {
            panic!()
        };
        let QueryNode::For {
            source,
            body: b_for,
            ..
        } = &a_for.node
        else {
            panic!("expected where-generated for, got {a_for}")
        };
        // source is $x/B/child::*
        let QueryNode::Path(_, step) = &source.node else {
            panic!()
        };
        assert_eq!(step.test, NodeTest::Wildcard);
        let QueryNode::For { body: if_q, .. } = &b_for.node else {
            panic!()
        };
        assert!(matches!(if_q.node, QueryNode::If { .. }));
    }

    #[test]
    fn where_on_labels_uses_if_directly() {
        let q = elab("for $x in $R, $y in $S where name($x) = name($y) return ($x)");
        let QueryNode::For { body, .. } = &q.node else {
            panic!()
        };
        let QueryNode::For { body: inner, .. } = &body.node else {
            panic!()
        };
        assert!(matches!(inner.node, QueryNode::If { .. }));
    }

    #[test]
    fn element_content_coerced() {
        let q = elab("element t { a }");
        let QueryNode::Element { content, .. } = &q.node else {
            panic!()
        };
        // bare label a became singleton(element a {()})
        assert_eq!(content.ty, QType::TreeSet);
        assert!(matches!(content.node, QueryNode::Singleton(_)));
    }

    #[test]
    fn name_requires_tree() {
        let s = parse_query::<Nat>("name($S)").unwrap();
        let e = elaborate(&s).unwrap_err();
        assert!(e.msg.contains("single tree"), "{e}");
    }

    #[test]
    fn if_requires_labels() {
        let s = parse_query::<Nat>("if ($S = $T) then a else b").unwrap();
        let e = elaborate(&s).unwrap_err();
        assert!(e.msg.contains("positivity"), "{e}");
    }

    #[test]
    fn if_branches_unify_via_sets() {
        // one branch tree, one branch set → both coerced
        let q = elab("for $t in $S return if (name($t) = a) then element x {()} else ()");
        let QueryNode::For { body, .. } = &q.node else {
            panic!()
        };
        assert_eq!(body.ty, QType::TreeSet);
    }

    #[test]
    fn if_label_branches_stay_labels() {
        let q = elab("for $t in $S return (element {if (name($t) = a) then b else c} {()})");
        assert_eq!(q.ty, QType::TreeSet);
    }

    #[test]
    fn path_coerces_tree_source() {
        // ($t)/A with $t : tree — the paper's elided coercion
        let q = elab("for $t in $S return $t/A");
        let QueryNode::For { body, .. } = &q.node else {
            panic!()
        };
        let QueryNode::Path(src, _) = &body.node else {
            panic!()
        };
        assert!(matches!(src.node, QueryNode::Singleton(_)));
    }

    #[test]
    fn let_propagates_types() {
        let q = elab("let $r := $d/R return for $t in $r return ($t)");
        let QueryNode::Let { def, .. } = &q.node else {
            panic!()
        };
        assert_eq!(def.ty, QType::TreeSet);
    }

    #[test]
    fn annot_result_is_set() {
        let q = elab("annot {2} (element a {()})");
        assert_eq!(q.ty, QType::TreeSet);
    }
}
