//! Compile-once execution plans for core K-UXQuery (the direct route).
//!
//! [`crate::eval`] is the reference tree-walking interpreter: it
//! re-walks the typed [`Query`] per call and probes a name-keyed
//! environment per variable occurrence. This module lowers an
//! elaborated query **once** into a [`CompiledQuery`]:
//!
//! - every variable occurrence is resolved at compile time to a
//!   numeric frame slot (the environment becomes a plain
//!   `Vec<Value<K>>`, read by index — no string comparisons);
//! - navigation steps keep their interned [`crate::ast::Step`] and run
//!   through the same [`crate::eval::eval_step`] kernel as the
//!   interpreter, whose
//!   descendant sweep is driven on an explicit stack.
//!
//! The interpreter stays the differential reference: compiled and
//! interpreted evaluation are property-tested to agree, including on
//! ill-shaped bindings where both must error with the same message.

use crate::ast::{Query, QueryNode, Step};
use crate::eval::{eval_step_ctx, EvalError};
use axml_nrc::compile::SlotScope;
use axml_semiring::Semiring;
use axml_uxml::{Forest, Label, Tree, Value};
use std::fmt;

/// A reusable execution plan for one elaborated core query. Build
/// with [`CompiledQuery::compile`], evaluate with
/// [`CompiledQuery::eval`]. Immutable and `Send + Sync`.
#[derive(Clone, Debug)]
pub struct CompiledQuery<K: Semiring> {
    /// Free variables in slot order: slot `i` binds `free[i]`.
    free: Vec<String>,
    /// Deepest frame-stack size any program point needs.
    max_slots: usize,
    op: QOp<K>,
}

/// One plan node — [`QueryNode`] with names resolved to slots.
#[derive(Clone, Debug)]
enum QOp<K: Semiring> {
    LabelLit(Label),
    Slot(u32),
    Empty,
    Singleton(Box<QOp<K>>),
    Union(Box<QOp<K>>, Box<QOp<K>>),
    /// `for $_ in source return body` — pushes one slot per element.
    For {
        source: Box<QOp<K>>,
        body: Box<QOp<K>>,
    },
    Let {
        def: Box<QOp<K>>,
        body: Box<QOp<K>>,
    },
    If {
        l: Box<QOp<K>>,
        r: Box<QOp<K>>,
        then: Box<QOp<K>>,
        els: Box<QOp<K>>,
    },
    Element {
        name: Box<QOp<K>>,
        content: Box<QOp<K>>,
    },
    Name(Box<QOp<K>>),
    Annot(K, Box<QOp<K>>),
    Path(Box<QOp<K>>, Step),
}

impl<K: Semiring> CompiledQuery<K> {
    /// Lower an elaborated query into a reusable plan. Never fails:
    /// ill-shaped bindings error (not panic) at evaluation, exactly
    /// like the interpreter.
    pub fn compile(q: &Query<K>) -> Self {
        let free: Vec<String> = free_query_vars(q);
        let mut lo = SlotScope::seeded(&free);
        let op = lower(q, &mut lo);
        CompiledQuery {
            free,
            max_slots: lo.max_slots(),
            op,
        }
    }

    /// The free variables the plan expects bound, in slot order
    /// (sorted by name).
    pub fn free_vars(&self) -> &[String] {
        &self.free
    }

    /// Evaluate with each free variable bound to a value. Unused
    /// inputs are ignored; a missing input errors — lazily, only if
    /// the variable is actually read — like the interpreter's
    /// unbound-variable case (dead branches stay dead).
    pub fn eval(&self, inputs: &[(&str, Value<K>)]) -> Result<Value<K>, EvalError> {
        self.eval_ctx(inputs, None)
    }

    /// [`CompiledQuery::eval`] with an optional execution context:
    /// with a non-sequential context, descendant sweeps over large
    /// documents are chunked onto the context's pool (see
    /// [`crate::eval::eval_step_ctx`]). `None` is exactly [`Self::eval`].
    pub fn eval_ctx(
        &self,
        inputs: &[(&str, Value<K>)],
        ctx: Option<&axml_pool::ExecCtx<'_>>,
    ) -> Result<Value<K>, EvalError> {
        let mut env: Vec<SlotVal<K>> = Vec::with_capacity(self.max_slots);
        for name in &self.free {
            env.push(match inputs.iter().find(|(n, _)| *n == name) {
                Some((_, v)) => SlotVal::Bound(v.clone()),
                None => SlotVal::Unbound(name.clone()),
            });
        }
        eval_qop(&self.op, &mut env, ctx)
    }
}

/// One frame slot: a value, or — for a free variable the caller did
/// not supply — a sentinel that errors lazily on first read.
#[derive(Clone, Debug)]
enum SlotVal<K: Semiring> {
    Bound(Value<K>),
    Unbound(String),
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

/// Free variables of an elaborated query, sorted (slot seed order).
fn free_query_vars<K: Semiring>(q: &Query<K>) -> Vec<String> {
    fn walk<K: Semiring>(
        q: &Query<K>,
        bound: &mut Vec<String>,
        out: &mut std::collections::BTreeSet<String>,
    ) {
        match &q.node {
            QueryNode::LabelLit(_) | QueryNode::Empty => {}
            QueryNode::Var(x) => {
                if !bound.iter().any(|b| b == x) {
                    out.insert(x.clone());
                }
            }
            QueryNode::Singleton(a) | QueryNode::Name(a) | QueryNode::Annot(_, a) => {
                walk(a, bound, out)
            }
            QueryNode::Path(a, _) => walk(a, bound, out),
            QueryNode::Union(a, b) => {
                walk(a, bound, out);
                walk(b, bound, out);
            }
            QueryNode::For { var, source, body }
            | QueryNode::Let {
                var,
                def: source,
                body,
            } => {
                walk(source, bound, out);
                bound.push(var.clone());
                walk(body, bound, out);
                bound.pop();
            }
            QueryNode::If { l, r, then, els } => {
                walk(l, bound, out);
                walk(r, bound, out);
                walk(then, bound, out);
                walk(els, bound, out);
            }
            QueryNode::Element { name, content } => {
                walk(name, bound, out);
                walk(content, bound, out);
            }
        }
    }
    let mut out = std::collections::BTreeSet::new();
    walk(q, &mut Vec::new(), &mut out);
    out.into_iter().collect()
}

fn lower<K: Semiring>(q: &Query<K>, lo: &mut SlotScope) -> QOp<K> {
    match &q.node {
        QueryNode::LabelLit(l) => QOp::LabelLit(*l),
        QueryNode::Var(x) => QOp::Slot(lo.slot(x)),
        QueryNode::Empty => QOp::Empty,
        QueryNode::Singleton(a) => QOp::Singleton(Box::new(lower(a, lo))),
        QueryNode::Union(a, b) => QOp::Union(Box::new(lower(a, lo)), Box::new(lower(b, lo))),
        QueryNode::For { var, source, body } => {
            let source = lower(source, lo);
            lo.push(var);
            let body = lower(body, lo);
            lo.pop();
            QOp::For {
                source: Box::new(source),
                body: Box::new(body),
            }
        }
        QueryNode::Let { var, def, body } => {
            let def = lower(def, lo);
            lo.push(var);
            let body = lower(body, lo);
            lo.pop();
            QOp::Let {
                def: Box::new(def),
                body: Box::new(body),
            }
        }
        QueryNode::If { l, r, then, els } => QOp::If {
            l: Box::new(lower(l, lo)),
            r: Box::new(lower(r, lo)),
            then: Box::new(lower(then, lo)),
            els: Box::new(lower(els, lo)),
        },
        QueryNode::Element { name, content } => QOp::Element {
            name: Box::new(lower(name, lo)),
            content: Box::new(lower(content, lo)),
        },
        QueryNode::Name(a) => QOp::Name(Box::new(lower(a, lo))),
        QueryNode::Annot(k, a) => QOp::Annot(k.clone(), Box::new(lower(a, lo))),
        QueryNode::Path(a, step) => QOp::Path(Box::new(lower(a, lo)), *step),
    }
}

// ---------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------

fn err<T, K: Semiring>(op: &QOp<K>, msg: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError {
        msg: msg.into(),
        at: op.to_string(),
    })
}

fn eval_qop<K: Semiring>(
    op: &QOp<K>,
    env: &mut Vec<SlotVal<K>>,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
) -> Result<Value<K>, EvalError> {
    match op {
        QOp::LabelLit(l) => Ok(Value::Label(*l)),
        QOp::Slot(i) => match &env[*i as usize] {
            SlotVal::Bound(v) => Ok(v.clone()),
            SlotVal::Unbound(name) => err(op, format!("unbound variable ${name}")),
        },
        QOp::Empty => Ok(Value::Set(Forest::new())),
        QOp::Singleton(inner) => {
            let v = eval_qop(inner, env, ctx)?;
            match v {
                Value::Tree(t) => Ok(Value::Set(Forest::unit(t))),
                Value::Label(l) => Ok(Value::Set(Forest::unit(Tree::leaf(l)))),
                Value::Set(_) => err(op, "singleton of a set (elaboration bug)"),
            }
        }
        QOp::Union(a, b) => {
            let mut va = eval_qset(a, env, ctx)?;
            let vb = eval_qset(b, env, ctx)?;
            va.union_with(vb);
            Ok(Value::Set(va))
        }
        QOp::For { source, body } => {
            let src = eval_qset(source, env, ctx)?;
            if let Some(c) = ctx.filter(|c| !c.is_sequential()) {
                if src.len() >= PAR_FOR_MIN_BINDERS {
                    return par_for(&src, body, env, c);
                }
            }
            let mut out = Forest::new();
            for (t, k) in src.iter() {
                env.push(SlotVal::Bound(Value::Tree(t.clone())));
                let inner = eval_qset(body, env, ctx);
                env.pop();
                out.extend_scaled(inner?, k);
            }
            Ok(Value::Set(out))
        }
        QOp::Let { def, body } => {
            let vd = eval_qop(def, env, ctx)?;
            env.push(SlotVal::Bound(vd));
            let out = eval_qop(body, env, ctx);
            env.pop();
            out
        }
        QOp::If { l, r, then, els } => {
            let vl = eval_qop(l, env, ctx)?;
            let vr = eval_qop(r, env, ctx)?;
            match (vl.as_label(), vr.as_label()) {
                (Some(a), Some(b)) => {
                    if a == b {
                        eval_qop(then, env, ctx)
                    } else {
                        eval_qop(els, env, ctx)
                    }
                }
                _ => err(op, "if compares non-labels"),
            }
        }
        QOp::Element { name, content } => {
            let vn = eval_qop(name, env, ctx)?;
            let Some(l) = vn.as_label() else {
                return err(op, "element name is not a label");
            };
            let vc = eval_qset(content, env, ctx)?;
            Ok(Value::Tree(Tree::new(l, vc)))
        }
        QOp::Name(inner) => {
            let v = eval_qop(inner, env, ctx)?;
            match v.as_tree() {
                Some(t) => Ok(Value::Label(t.label())),
                None => err(op, "name() of a non-tree"),
            }
        }
        QOp::Annot(k, inner) => {
            let mut f = eval_qset(inner, env, ctx)?;
            f.scalar_mul_in_place(k);
            Ok(Value::Set(f))
        }
        QOp::Path(inner, step) => {
            let f = eval_qset(inner, env, ctx)?;
            Ok(Value::Set(eval_step_ctx(&f, *step, ctx)))
        }
    }
}

/// Below this many binder elements a `for` loop stays sequential: the
/// per-chunk environment clone and the merge would dominate. (Each
/// binder element runs the whole body, so the useful-work-per-element
/// bar is much lower than a sweep's [`crate::eval::PAR_SWEEP_MIN_NODES`].)
pub const PAR_FOR_MIN_BINDERS: usize = 64;

/// The big-union `for` over the context's pool: binder elements are
/// chunked in K-set order, each chunk evaluates the body against its
/// own clone of the frame stack (slots below the binder are read-only
/// during the loop, so a clone-per-chunk is exact), and the partial
/// forests tree-reduce through the shared K-set parallel union.
///
/// Error semantics match the sequential loop observably: chunks
/// preserve element order and each chunk stops at its first error, so
/// the first `Err` in chunk order *is* the error the sequential loop
/// would have hit first. Inside a chunk the body runs without a
/// context (the pool's workers are already saturated by the outer
/// loop; nesting pool scopes inside workers is not supported).
fn par_for<K: Semiring>(
    src: &Forest<K>,
    body: &QOp<K>,
    env: &mut [SlotVal<K>],
    c: &axml_pool::ExecCtx<'_>,
) -> Result<Value<K>, EvalError> {
    let items: Vec<(Tree<K>, K)> = src.iter().map(|(t, k)| (t.clone(), k.clone())).collect();
    let target = 2 * c.degree();
    let frame: &[SlotVal<K>] = env;
    let chunk_results: Vec<Result<Forest<K>, EvalError>> =
        c.pool.map_chunks(&items, target, |chunk| {
            let mut local_env = frame.to_vec();
            let mut out = Forest::new();
            for (t, k) in chunk {
                local_env.push(SlotVal::Bound(Value::Tree(t.clone())));
                let inner = eval_qset(body, &mut local_env, None);
                local_env.pop();
                out.extend_scaled(inner?, k);
            }
            Ok(out)
        });
    let mut partials = Vec::with_capacity(chunk_results.len());
    for r in chunk_results {
        partials.push(r?.into_kset());
    }
    Ok(Value::Set(Forest::from_kset(axml_semiring::par_union_all(
        c.pool, c.par, partials,
    ))))
}

fn eval_qset<K: Semiring>(
    op: &QOp<K>,
    env: &mut Vec<SlotVal<K>>,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
) -> Result<Forest<K>, EvalError> {
    match eval_qop(op, env, ctx)? {
        Value::Set(f) => Ok(f),
        other => err(op, format!("expected a set, got {other}")),
    }
}

impl<K: Semiring> fmt::Display for QOp<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QOp::LabelLit(l) => write!(f, "{l}"),
            QOp::Slot(i) => write!(f, "$_{i}"),
            QOp::Empty => write!(f, "()"),
            QOp::Singleton(q) => write!(f, "({q})"),
            QOp::Union(a, b) => write!(f, "{a}, {b}"),
            QOp::For { source, body } => write!(f, "for $_ in {source} return {body}"),
            QOp::Let { def, body } => write!(f, "let $_ := {def} return {body}"),
            QOp::If { l, r, then, els } => {
                write!(f, "if ({l} = {r}) then {then} else {els}")
            }
            QOp::Element { name, content } => write!(f, "element {name} {{{content}}}"),
            QOp::Name(q) => write!(f, "name({q})"),
            QOp::Annot(_, q) => write!(f, "annot {q}"),
            QOp::Path(q, s) => write!(f, "{q}/{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_with, QueryEnv};
    use crate::parse::parse_query;
    use crate::typecheck::elaborate;
    use axml_semiring::{Nat, NatPoly};
    use axml_uxml::parse_forest;

    fn plan(src: &str) -> CompiledQuery<NatPoly> {
        let s = parse_query::<NatPoly>(src).unwrap();
        let q = elaborate(&s).unwrap();
        CompiledQuery::compile(&q)
    }

    #[test]
    fn compiled_matches_interpreted_on_examples() {
        let src = parse_forest::<NatPoly>(
            "<a {z}> <b {x1}> d {y1} c </b> <c {x2}> d {y2} e {y3} </c> </a>",
        )
        .unwrap();
        for qsrc in [
            "element p { $S/*/* }",
            "element r { $S//c }",
            "$S/child::c",
            "$S/self::a",
            "for $t in $S return for $x in ($t)/* return if (name($x) = b) then ($x)/* else ()",
            "annot {7} ($S/*)",
            "let $x := element a {()} return if (name($x) = a) then ($x) else ()",
            "for $x in $S return for $x in ($x)/* return ($x)",
        ] {
            let s = parse_query::<NatPoly>(qsrc).unwrap();
            let q = elaborate(&s).unwrap();
            let interpreted = eval_with(&q, &[("S", Value::Set(src.clone()))]).unwrap();
            let compiled = CompiledQuery::compile(&q)
                .eval(&[("S", Value::Set(src.clone()))])
                .unwrap();
            assert_eq!(interpreted, compiled, "disagree on {qsrc}");
        }
    }

    #[test]
    fn free_vars_are_slot_order() {
        let p = plan("for $x in $S return ($x, $T/b)");
        assert_eq!(p.free_vars(), ["S", "T"]);
    }

    #[test]
    fn missing_input_errors_like_interpreter() {
        let p = plan("$missing_binding");
        let ce = p.eval(&[]).unwrap_err();
        let s = parse_query::<NatPoly>("$missing_binding").unwrap();
        let q = elaborate(&s).unwrap();
        let ie = {
            let mut env = QueryEnv::new();
            crate::eval::eval_core(&q, &mut env).unwrap_err()
        };
        assert_eq!(ce.msg, ie.msg);
    }

    #[test]
    fn ill_shaped_bindings_error_identically() {
        // name() of a set: both evaluators must error with one msg.
        let s = parse_query::<Nat>("name($S)").unwrap();
        // `name($S)` does not elaborate (type error), so build the
        // runtime mismatch instead: a set bound where a tree flows in.
        let _ = s;
        let q = elaborate(&parse_query::<Nat>("for $x in $S return ($x)/b").unwrap()).unwrap();
        let bad = Value::Label(Label::new("oops"));
        let interpreted = eval_with(&q, &[("S", bad.clone())]).unwrap_err();
        let compiled = CompiledQuery::compile(&q).eval(&[("S", bad)]).unwrap_err();
        assert_eq!(interpreted.msg, compiled.msg);
    }
}
