//! Compile-once execution plans for core K-UXQuery (the direct route).
//!
//! [`crate::eval`] is the reference tree-walking interpreter: it
//! re-walks the typed [`Query`] per call and probes a name-keyed
//! environment per variable occurrence. This module lowers an
//! elaborated query **once** into a [`CompiledQuery`]:
//!
//! - every variable occurrence is resolved at compile time to a
//!   numeric frame slot (the environment becomes a plain
//!   `Vec<Value<K>>`, read by index — no string comparisons);
//! - navigation steps keep their interned [`crate::ast::Step`] and run
//!   through the same [`crate::eval::eval_step`] kernel as the
//!   interpreter, whose
//!   descendant sweep is driven on an explicit stack.
//!
//! The interpreter stays the differential reference: compiled and
//! interpreted evaluation are property-tested to agree, including on
//! ill-shaped bindings where both must error with the same message.

use crate::ast::{Axis, NodeTest, Query, QueryNode, Step};
use crate::eval::{eval_step_ctx, EvalError};
use axml_nrc::compile::SlotScope;
use axml_semiring::Semiring;
use axml_uxml::{Forest, Label, NodeBudget, ResultSink, StreamError, Streamed, Tree, Value};
use std::fmt;

/// A reusable execution plan for one elaborated core query. Build
/// with [`CompiledQuery::compile`], evaluate with
/// [`CompiledQuery::eval`]. Immutable and `Send + Sync`.
#[derive(Clone, Debug)]
pub struct CompiledQuery<K: Semiring> {
    /// Free variables in slot order: slot `i` binds `free[i]`.
    free: Vec<String>,
    /// Deepest frame-stack size any program point needs.
    max_slots: usize,
    op: QOp<K>,
}

/// One plan node — [`QueryNode`] with names resolved to slots.
#[derive(Clone, Debug)]
enum QOp<K: Semiring> {
    LabelLit(Label),
    Slot(u32),
    Empty,
    Singleton(Box<QOp<K>>),
    Union(Box<QOp<K>>, Box<QOp<K>>),
    /// `for $_ in source return body` — pushes one slot per element.
    For {
        source: Box<QOp<K>>,
        body: Box<QOp<K>>,
    },
    Let {
        def: Box<QOp<K>>,
        body: Box<QOp<K>>,
    },
    If {
        l: Box<QOp<K>>,
        r: Box<QOp<K>>,
        then: Box<QOp<K>>,
        els: Box<QOp<K>>,
    },
    Element {
        name: Box<QOp<K>>,
        content: Box<QOp<K>>,
    },
    Name(Box<QOp<K>>),
    Annot(K, Box<QOp<K>>),
    Path(Box<QOp<K>>, Step),
}

impl<K: Semiring> CompiledQuery<K> {
    /// Lower an elaborated query into a reusable plan. Never fails:
    /// ill-shaped bindings error (not panic) at evaluation, exactly
    /// like the interpreter.
    pub fn compile(q: &Query<K>) -> Self {
        let free: Vec<String> = free_query_vars(q);
        let mut lo = SlotScope::seeded(&free);
        let op = lower(q, &mut lo);
        CompiledQuery {
            free,
            max_slots: lo.max_slots(),
            op,
        }
    }

    /// The free variables the plan expects bound, in slot order
    /// (sorted by name).
    pub fn free_vars(&self) -> &[String] {
        &self.free
    }

    /// Evaluate with each free variable bound to a value. Unused
    /// inputs are ignored; a missing input errors — lazily, only if
    /// the variable is actually read — like the interpreter's
    /// unbound-variable case (dead branches stay dead).
    pub fn eval(&self, inputs: &[(&str, Value<K>)]) -> Result<Value<K>, EvalError> {
        self.eval_ctx(inputs, None)
    }

    /// [`CompiledQuery::eval`] with an optional execution context:
    /// with a non-sequential context, descendant sweeps over large
    /// documents are chunked onto the context's pool (see
    /// [`crate::eval::eval_step_ctx`]). `None` is exactly [`Self::eval`].
    pub fn eval_ctx(
        &self,
        inputs: &[(&str, Value<K>)],
        ctx: Option<&axml_pool::ExecCtx<'_>>,
    ) -> Result<Value<K>, EvalError> {
        self.eval_ctx_limits(inputs, ctx, None)
    }

    /// [`CompiledQuery::eval_ctx`] with an optional memory budget:
    /// every set-producing plan op (`for` iterations, unions, path
    /// steps, element contents) charges its output's logical node
    /// count, and exceeding the budget errors with
    /// [`EvalError::budget`] at the next op boundary. `None` charges
    /// nothing.
    pub fn eval_ctx_limits(
        &self,
        inputs: &[(&str, Value<K>)],
        ctx: Option<&axml_pool::ExecCtx<'_>>,
        budget: Option<&NodeBudget>,
    ) -> Result<Value<K>, EvalError> {
        let x = Exec { ctx, budget };
        let mut env = self.seed_env(inputs);
        eval_qop(&self.op, &mut env, &x)
    }

    /// Evaluate with pieces of a set-shaped top-level result pushed
    /// into `sink` **as they are produced**, in final document order.
    ///
    /// Root shapes whose per-piece finality is provable stream
    /// incrementally — a self-axis filter over any set, or a child
    /// step over a single root tree (the `$S/*` / `$S/entry` paging
    /// shapes: one tree's children are distinct and already
    /// document-sorted, so each filtered, scaled child is final the
    /// moment it is scanned). Every other root shape evaluates to the
    /// full K-set first and then emits its pieces — the sink sees
    /// identical pieces in identical order either way (differentially
    /// tested), only the latency differs. Scalar results (a bare
    /// label, a top-level element constructor) bypass the sink and
    /// come back whole as [`Streamed::Scalar`].
    pub fn eval_stream_ctx(
        &self,
        inputs: &[(&str, Value<K>)],
        ctx: Option<&axml_pool::ExecCtx<'_>>,
        budget: Option<&NodeBudget>,
        sink: &mut dyn ResultSink<K>,
    ) -> Result<Streamed<K>, StreamError<EvalError>> {
        let x = Exec { ctx, budget };
        let mut env = self.seed_env(inputs);
        let eval = StreamError::Eval;
        match &self.op {
            QOp::Path(inner, step) if step.axis == Axis::SelfAxis => {
                // `self::t` keeps a subset of the input set with
                // annotations untouched: scanning the input in
                // document order emits exactly the materialized
                // result's `iter_document` sequence.
                let f = eval_qset(inner, &mut env, &x).map_err(eval)?;
                for (t, k) in f.iter_document() {
                    if test_matches(step.test, t.label()) {
                        emit(&x, &self.op, sink, t, k)?;
                    }
                }
                Ok(Streamed::Set)
            }
            QOp::Path(inner, step) if step.axis == Axis::Child => {
                let f = eval_qset(inner, &mut env, &x).map_err(eval)?;
                if f.len() == 1 {
                    // One root tree: its children are a K-set (so
                    // distinct) and `children_document` is sorted by
                    // the same comparator `iter_document` uses, so
                    // each filtered, scaled child is final as soon as
                    // it is scanned (`k.times` matches the
                    // `extend_scaled` convention of the materialized
                    // step kernel; zero products are pruned exactly
                    // like a K-set insert would).
                    let (t, k) = f.iter().next().expect("len checked");
                    for (c, kc) in t.children_document() {
                        if !test_matches(step.test, c.label()) {
                            continue;
                        }
                        let ann = k.times(kc);
                        if ann.is_zero() {
                            continue;
                        }
                        emit(&x, &self.op, sink, c, &ann)?;
                    }
                    Ok(Streamed::Set)
                } else {
                    // Children of different roots can interleave and
                    // merge; materialize, then emit.
                    let out = eval_step_ctx(&f, *step, x.ctx);
                    emit_forest(&x, &self.op, sink, &out)
                }
            }
            op => {
                let v = eval_qop(op, &mut env, &x).map_err(eval)?;
                match v {
                    Value::Set(f) => emit_forest(&x, op, sink, &f),
                    scalar => Ok(Streamed::Scalar(scalar)),
                }
            }
        }
    }

    fn seed_env(&self, inputs: &[(&str, Value<K>)]) -> Vec<SlotVal<K>> {
        let mut env: Vec<SlotVal<K>> = Vec::with_capacity(self.max_slots);
        for name in &self.free {
            env.push(match inputs.iter().find(|(n, _)| *n == name) {
                Some((_, v)) => SlotVal::Bound(v.clone()),
                None => SlotVal::Unbound(name.clone()),
            });
        }
        env
    }
}

/// Does a node test accept this label?
fn test_matches(test: NodeTest, l: Label) -> bool {
    match test {
        NodeTest::Wildcard => true,
        NodeTest::Label(want) => l == want,
    }
}

/// Push one piece, charging its node count against the budget first
/// (a streamed piece is "produced" the moment it is emitted).
fn emit<K: Semiring>(
    x: &Exec<'_>,
    op: &QOp<K>,
    sink: &mut dyn ResultSink<K>,
    t: &Tree<K>,
    k: &K,
) -> Result<(), StreamError<EvalError>> {
    charge(x, t.size(), op).map_err(StreamError::Eval)?;
    sink.piece(t, k)?;
    Ok(())
}

/// Emit a materialized forest piece by piece, in document order.
fn emit_forest<K: Semiring>(
    x: &Exec<'_>,
    op: &QOp<K>,
    sink: &mut dyn ResultSink<K>,
    f: &Forest<K>,
) -> Result<Streamed<K>, StreamError<EvalError>> {
    for (t, k) in f.iter_document() {
        charge(x, t.size(), op).map_err(StreamError::Eval)?;
        sink.piece(t, k)?;
    }
    Ok(Streamed::Set)
}

/// One frame slot: a value, or — for a free variable the caller did
/// not supply — a sentinel that errors lazily on first read.
#[derive(Clone, Debug)]
enum SlotVal<K: Semiring> {
    Bound(Value<K>),
    Unbound(String),
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

/// Free variables of an elaborated query, sorted (slot seed order).
fn free_query_vars<K: Semiring>(q: &Query<K>) -> Vec<String> {
    fn walk<K: Semiring>(
        q: &Query<K>,
        bound: &mut Vec<String>,
        out: &mut std::collections::BTreeSet<String>,
    ) {
        match &q.node {
            QueryNode::LabelLit(_) | QueryNode::Empty => {}
            QueryNode::Var(x) => {
                if !bound.iter().any(|b| b == x) {
                    out.insert(x.clone());
                }
            }
            QueryNode::Singleton(a) | QueryNode::Name(a) | QueryNode::Annot(_, a) => {
                walk(a, bound, out)
            }
            QueryNode::Path(a, _) => walk(a, bound, out),
            QueryNode::Union(a, b) => {
                walk(a, bound, out);
                walk(b, bound, out);
            }
            QueryNode::For { var, source, body }
            | QueryNode::Let {
                var,
                def: source,
                body,
            } => {
                walk(source, bound, out);
                bound.push(var.clone());
                walk(body, bound, out);
                bound.pop();
            }
            QueryNode::If { l, r, then, els } => {
                walk(l, bound, out);
                walk(r, bound, out);
                walk(then, bound, out);
                walk(els, bound, out);
            }
            QueryNode::Element { name, content } => {
                walk(name, bound, out);
                walk(content, bound, out);
            }
        }
    }
    let mut out = std::collections::BTreeSet::new();
    walk(q, &mut Vec::new(), &mut out);
    out.into_iter().collect()
}

fn lower<K: Semiring>(q: &Query<K>, lo: &mut SlotScope) -> QOp<K> {
    match &q.node {
        QueryNode::LabelLit(l) => QOp::LabelLit(*l),
        QueryNode::Var(x) => QOp::Slot(lo.slot(x)),
        QueryNode::Empty => QOp::Empty,
        QueryNode::Singleton(a) => QOp::Singleton(Box::new(lower(a, lo))),
        QueryNode::Union(a, b) => QOp::Union(Box::new(lower(a, lo)), Box::new(lower(b, lo))),
        QueryNode::For { var, source, body } => {
            let source = lower(source, lo);
            lo.push(var);
            let body = lower(body, lo);
            lo.pop();
            QOp::For {
                source: Box::new(source),
                body: Box::new(body),
            }
        }
        QueryNode::Let { var, def, body } => {
            let def = lower(def, lo);
            lo.push(var);
            let body = lower(body, lo);
            lo.pop();
            QOp::Let {
                def: Box::new(def),
                body: Box::new(body),
            }
        }
        QueryNode::If { l, r, then, els } => QOp::If {
            l: Box::new(lower(l, lo)),
            r: Box::new(lower(r, lo)),
            then: Box::new(lower(then, lo)),
            els: Box::new(lower(els, lo)),
        },
        QueryNode::Element { name, content } => QOp::Element {
            name: Box::new(lower(name, lo)),
            content: Box::new(lower(content, lo)),
        },
        QueryNode::Name(a) => QOp::Name(Box::new(lower(a, lo))),
        QueryNode::Annot(k, a) => QOp::Annot(k.clone(), Box::new(lower(a, lo))),
        QueryNode::Path(a, step) => QOp::Path(Box::new(lower(a, lo)), *step),
    }
}

// ---------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------

fn err<T, K: Semiring>(op: &QOp<K>, msg: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError {
        msg: msg.into(),
        at: op.to_string(),
        budget: false,
    })
}

/// Per-call execution state threaded through every plan op: the
/// optional pool context and the optional memory budget.
#[derive(Clone, Copy)]
struct Exec<'a> {
    ctx: Option<&'a axml_pool::ExecCtx<'a>>,
    budget: Option<&'a NodeBudget>,
}

/// Charge `nodes` against the budget (no-op without one); a trip
/// becomes [`EvalError::budget`] naming the op that observed it.
fn charge<K: Semiring>(x: &Exec<'_>, nodes: usize, op: &QOp<K>) -> Result<(), EvalError> {
    match x.budget {
        Some(b) if b.charge(nodes).is_err() => Err(EvalError::budget(op.to_string())),
        _ => Ok(()),
    }
}

fn eval_qop<K: Semiring>(
    op: &QOp<K>,
    env: &mut Vec<SlotVal<K>>,
    x: &Exec<'_>,
) -> Result<Value<K>, EvalError> {
    match op {
        QOp::LabelLit(l) => Ok(Value::Label(*l)),
        QOp::Slot(i) => match &env[*i as usize] {
            SlotVal::Bound(v) => Ok(v.clone()),
            SlotVal::Unbound(name) => err(op, format!("unbound variable ${name}")),
        },
        QOp::Empty => Ok(Value::Set(Forest::new())),
        QOp::Singleton(inner) => {
            let v = eval_qop(inner, env, x)?;
            match v {
                Value::Tree(t) => Ok(Value::Set(Forest::unit(t))),
                Value::Label(l) => Ok(Value::Set(Forest::unit(Tree::leaf(l)))),
                Value::Set(_) => err(op, "singleton of a set (elaboration bug)"),
            }
        }
        QOp::Union(a, b) => {
            let mut va = eval_qset(a, env, x)?;
            let vb = eval_qset(b, env, x)?;
            va.union_with(vb);
            charge(x, va.size(), op)?;
            Ok(Value::Set(va))
        }
        QOp::For { source, body } => {
            let src = eval_qset(source, env, x)?;
            if let Some(c) = x.ctx.filter(|c| !c.is_sequential()) {
                if src.len() >= PAR_FOR_MIN_BINDERS {
                    return par_for(&src, body, env, c, x.budget);
                }
            }
            let mut out = Forest::new();
            for (t, k) in src.iter() {
                env.push(SlotVal::Bound(Value::Tree(t.clone())));
                let inner = eval_qset(body, env, x);
                env.pop();
                let f = inner?;
                charge(x, f.size(), op)?;
                out.extend_scaled(f, k);
            }
            Ok(Value::Set(out))
        }
        QOp::Let { def, body } => {
            let vd = eval_qop(def, env, x)?;
            env.push(SlotVal::Bound(vd));
            let out = eval_qop(body, env, x);
            env.pop();
            out
        }
        QOp::If { l, r, then, els } => {
            let vl = eval_qop(l, env, x)?;
            let vr = eval_qop(r, env, x)?;
            match (vl.as_label(), vr.as_label()) {
                (Some(a), Some(b)) => {
                    if a == b {
                        eval_qop(then, env, x)
                    } else {
                        eval_qop(els, env, x)
                    }
                }
                _ => err(op, "if compares non-labels"),
            }
        }
        QOp::Element { name, content } => {
            let vn = eval_qop(name, env, x)?;
            let Some(l) = vn.as_label() else {
                return err(op, "element name is not a label");
            };
            let vc = eval_qset(content, env, x)?;
            charge(x, vc.size() + 1, op)?;
            Ok(Value::Tree(Tree::new(l, vc)))
        }
        QOp::Name(inner) => {
            let v = eval_qop(inner, env, x)?;
            match v.as_tree() {
                Some(t) => Ok(Value::Label(t.label())),
                None => err(op, "name() of a non-tree"),
            }
        }
        QOp::Annot(k, inner) => {
            let mut f = eval_qset(inner, env, x)?;
            f.scalar_mul_in_place(k);
            Ok(Value::Set(f))
        }
        QOp::Path(inner, step) => {
            let f = eval_qset(inner, env, x)?;
            let out = eval_step_ctx(&f, *step, x.ctx);
            charge(x, out.size(), op)?;
            Ok(Value::Set(out))
        }
    }
}

/// Below this many binder elements a `for` loop stays sequential: the
/// per-chunk environment clone and the merge would dominate. (Each
/// binder element runs the whole body, so the useful-work-per-element
/// bar is much lower than a sweep's [`crate::eval::PAR_SWEEP_MIN_NODES`].)
pub const PAR_FOR_MIN_BINDERS: usize = 64;

/// The big-union `for` over the context's pool: binder elements are
/// chunked in K-set order, each chunk evaluates the body against its
/// own clone of the frame stack (slots below the binder are read-only
/// during the loop, so a clone-per-chunk is exact), and the partial
/// forests tree-reduce through the shared K-set parallel union.
///
/// Error semantics match the sequential loop observably: chunks
/// preserve element order and each chunk stops at its first error, so
/// the first `Err` in chunk order *is* the error the sequential loop
/// would have hit first. Inside a chunk the body runs without a
/// context (the pool's workers are already saturated by the outer
/// loop; nesting pool scopes inside workers is not supported).
fn par_for<K: Semiring>(
    src: &Forest<K>,
    body: &QOp<K>,
    env: &mut [SlotVal<K>],
    c: &axml_pool::ExecCtx<'_>,
    budget: Option<&NodeBudget>,
) -> Result<Value<K>, EvalError> {
    let items: Vec<(Tree<K>, K)> = src.iter().map(|(t, k)| (t.clone(), k.clone())).collect();
    let target = 2 * c.degree();
    let frame: &[SlotVal<K>] = env;
    let chunk_results: Vec<Result<Forest<K>, EvalError>> =
        c.pool.map_chunks(&items, target, |chunk| {
            // `NodeBudget` is shared atomics, so parallel chunks all
            // charge the caller's counter; ties in who observes the
            // trip are fine (any chunk's trip fails the whole loop).
            let x = Exec { ctx: None, budget };
            let mut local_env = frame.to_vec();
            let mut out = Forest::new();
            for (t, k) in chunk {
                local_env.push(SlotVal::Bound(Value::Tree(t.clone())));
                let inner = eval_qset(body, &mut local_env, &x);
                local_env.pop();
                let f = inner?;
                charge(&x, f.size(), body)?;
                out.extend_scaled(f, k);
            }
            Ok(out)
        });
    let mut partials = Vec::with_capacity(chunk_results.len());
    for r in chunk_results {
        partials.push(r?.into_kset());
    }
    Ok(Value::Set(Forest::from_kset(axml_semiring::par_union_all(
        c.pool, c.par, partials,
    ))))
}

fn eval_qset<K: Semiring>(
    op: &QOp<K>,
    env: &mut Vec<SlotVal<K>>,
    x: &Exec<'_>,
) -> Result<Forest<K>, EvalError> {
    match eval_qop(op, env, x)? {
        Value::Set(f) => Ok(f),
        other => err(op, format!("expected a set, got {other}")),
    }
}

impl<K: Semiring> fmt::Display for QOp<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QOp::LabelLit(l) => write!(f, "{l}"),
            QOp::Slot(i) => write!(f, "$_{i}"),
            QOp::Empty => write!(f, "()"),
            QOp::Singleton(q) => write!(f, "({q})"),
            QOp::Union(a, b) => write!(f, "{a}, {b}"),
            QOp::For { source, body } => write!(f, "for $_ in {source} return {body}"),
            QOp::Let { def, body } => write!(f, "let $_ := {def} return {body}"),
            QOp::If { l, r, then, els } => {
                write!(f, "if ({l} = {r}) then {then} else {els}")
            }
            QOp::Element { name, content } => write!(f, "element {name} {{{content}}}"),
            QOp::Name(q) => write!(f, "name({q})"),
            QOp::Annot(_, q) => write!(f, "annot {q}"),
            QOp::Path(q, s) => write!(f, "{q}/{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_with, QueryEnv};
    use crate::parse::parse_query;
    use crate::typecheck::elaborate;
    use axml_semiring::{Nat, NatPoly};
    use axml_uxml::parse_forest;

    fn plan(src: &str) -> CompiledQuery<NatPoly> {
        let s = parse_query::<NatPoly>(src).unwrap();
        let q = elaborate(&s).unwrap();
        CompiledQuery::compile(&q)
    }

    #[test]
    fn compiled_matches_interpreted_on_examples() {
        let src = parse_forest::<NatPoly>(
            "<a {z}> <b {x1}> d {y1} c </b> <c {x2}> d {y2} e {y3} </c> </a>",
        )
        .unwrap();
        for qsrc in [
            "element p { $S/*/* }",
            "element r { $S//c }",
            "$S/child::c",
            "$S/self::a",
            "for $t in $S return for $x in ($t)/* return if (name($x) = b) then ($x)/* else ()",
            "annot {7} ($S/*)",
            "let $x := element a {()} return if (name($x) = a) then ($x) else ()",
            "for $x in $S return for $x in ($x)/* return ($x)",
        ] {
            let s = parse_query::<NatPoly>(qsrc).unwrap();
            let q = elaborate(&s).unwrap();
            let interpreted = eval_with(&q, &[("S", Value::Set(src.clone()))]).unwrap();
            let compiled = CompiledQuery::compile(&q)
                .eval(&[("S", Value::Set(src.clone()))])
                .unwrap();
            assert_eq!(interpreted, compiled, "disagree on {qsrc}");
        }
    }

    #[test]
    fn free_vars_are_slot_order() {
        let p = plan("for $x in $S return ($x, $T/b)");
        assert_eq!(p.free_vars(), ["S", "T"]);
    }

    #[test]
    fn missing_input_errors_like_interpreter() {
        let p = plan("$missing_binding");
        let ce = p.eval(&[]).unwrap_err();
        let s = parse_query::<NatPoly>("$missing_binding").unwrap();
        let q = elaborate(&s).unwrap();
        let ie = {
            let mut env = QueryEnv::new();
            crate::eval::eval_core(&q, &mut env).unwrap_err()
        };
        assert_eq!(ce.msg, ie.msg);
    }

    #[test]
    fn ill_shaped_bindings_error_identically() {
        // name() of a set: both evaluators must error with one msg.
        let s = parse_query::<Nat>("name($S)").unwrap();
        // `name($S)` does not elaborate (type error), so build the
        // runtime mismatch instead: a set bound where a tree flows in.
        let _ = s;
        let q = elaborate(&parse_query::<Nat>("for $x in $S return ($x)/b").unwrap()).unwrap();
        let bad = Value::Label(Label::new("oops"));
        let interpreted = eval_with(&q, &[("S", bad.clone())]).unwrap_err();
        let compiled = CompiledQuery::compile(&q).eval(&[("S", bad)]).unwrap_err();
        assert_eq!(interpreted.msg, compiled.msg);
    }
}
