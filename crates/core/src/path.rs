//! The XPath fragment of §7, extracted from typed core queries.
//!
//! §7 of the paper translates XPath over shredded (relational) K-UXML
//! into annotated Datalog. The fragment it covers is the downward
//! algebra built from
//!
//! - the **context node** (`.`),
//! - **steps** `ax::nt` along `self`/`child`/`descendant` (and this
//!   workspace's `strict-descendant` extension), with label or
//!   wildcard tests,
//! - **composition** `p/p'`,
//! - **union** `p | p'`, and
//! - **branching predicates** `p[q]` — a qualifier evaluated relative
//!   to each match of `p`, which under K-semantics *scales* the
//!   match's annotation by the total annotation of the qualifier's
//!   matches (in 𝔹 this degenerates to the usual exists-filter).
//!
//! [`PathQuery`] is that algebra. [`extract_path`] recognizes it
//! inside an elaborated [`Query`]: navigation chains, unions of
//! paths, `for`-composition (`for $x in p return p'($x)`),
//! qualifier-shaped `for`s (`for $y in q($x) return ($x)`), and
//! label tests via `if (name($x) = l) …`. Queries outside the
//! fragment are reported with the offending construct named, so
//! callers (the `axml` facade's `Route::Shredded`) can surface a
//! precise "this is why not" instead of a generic failure.
//!
//! [`eval_path`] is a small direct evaluator for the algebra, used to
//! cross-check the relational translation ψ in `axml-relational`.

use crate::ast::{Axis, NodeTest, Query, QueryNode, Step};
use crate::eval::eval_step;
use axml_semiring::Semiring;
use axml_uxml::{Forest, Label, Tree};
use std::fmt;

/// A query in the §7 XPath fragment, relative to a context node. At
/// the top level the context is the *virtual root* whose children are
/// the input document's top-level trees (node 0 of the shredded
/// encoding), so the input document `$X` itself extracts as
/// `Step(Root, child::*)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PathQuery {
    /// The context node, annotated `1`.
    Root,
    /// `p/ax::nt`.
    Step(Box<PathQuery>, Step),
    /// `p | p'` (annotations add on shared matches).
    Union(Box<PathQuery>, Box<PathQuery>),
    /// `p[q]`: every match of `p`, its annotation multiplied by the
    /// total annotation of `q`'s matches from that node.
    Filter(Box<PathQuery>, Box<PathQuery>),
    /// The empty result.
    Empty,
}

impl PathQuery {
    /// The chain `./s₁/…/sₙ` over the *input document*: seed with the
    /// virtual root's children, then apply each step.
    pub fn from_steps(steps: &[Step]) -> PathQuery {
        let mut p = PathQuery::Step(
            Box::new(PathQuery::Root),
            Step {
                axis: Axis::Child,
                test: NodeTest::Wildcard,
            },
        );
        for s in steps {
            p = PathQuery::Step(Box::new(p), *s);
        }
        p
    }

    /// Substitute `base` for every [`PathQuery::Root`] on the *spine*
    /// of `self` — composition `self ∘ base`. Filter qualifiers are
    /// untouched: they are relative to each match of their input, not
    /// to the overall root.
    pub fn compose(self, base: &PathQuery) -> PathQuery {
        match self {
            PathQuery::Root => base.clone(),
            PathQuery::Step(p, s) => PathQuery::Step(Box::new(p.compose(base)), s),
            PathQuery::Union(a, b) => {
                PathQuery::Union(Box::new(a.compose(base)), Box::new(b.compose(base)))
            }
            PathQuery::Filter(p, q) => PathQuery::Filter(Box::new(p.compose(base)), q),
            PathQuery::Empty => PathQuery::Empty,
        }
    }

    /// Number of [`Step`]s (a size measure for caps and diagnostics).
    pub fn step_count(&self) -> usize {
        match self {
            PathQuery::Root | PathQuery::Empty => 0,
            PathQuery::Step(p, _) => 1 + p.step_count(),
            PathQuery::Union(a, b) => a.step_count() + b.step_count(),
            PathQuery::Filter(p, q) => p.step_count() + q.step_count(),
        }
    }

    /// Does the query contain a branching predicate `p[q]` anywhere?
    /// Filter queries need special handling on the incremental
    /// shredded route: ψ's qualifier projection drops a body node
    /// variable, so retained-IDB pruning by retired node id is inexact
    /// for them (see `axml-relational`'s `ivm` module).
    pub fn has_filter(&self) -> bool {
        match self {
            PathQuery::Root | PathQuery::Empty => false,
            PathQuery::Step(p, _) => p.has_filter(),
            PathQuery::Union(a, b) => a.has_filter() || b.has_filter(),
            PathQuery::Filter(_, _) => true,
        }
    }
}

impl fmt::Display for PathQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathQuery::Root => write!(f, "."),
            PathQuery::Step(p, s) => write!(f, "{p}/{s}"),
            PathQuery::Union(a, b) => write!(f, "({a} | {b})"),
            PathQuery::Filter(p, q) => write!(f, "{p}[{q}]"),
            PathQuery::Empty => write!(f, "()"),
        }
    }
}

/// Why a query is outside the §7 fragment: the first construct met
/// that has no relational translation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ineligible {
    /// The offending construct, human-readable.
    pub construct: String,
}

impl fmt::Display for Ineligible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.construct)
    }
}

impl std::error::Error for Ineligible {}

fn outside<T>(construct: impl Into<String>) -> Result<T, Ineligible> {
    Err(Ineligible {
        construct: construct.into(),
    })
}

/// Recognize the §7 fragment in an elaborated core query. On success
/// returns the input document variable and the extracted
/// [`PathQuery`]; on failure names the first unsupported construct.
pub fn extract_path<K: Semiring>(q: &Query<K>) -> Result<(String, PathQuery), Ineligible> {
    let mut input: Option<String> = None;
    let path = extract(q, None, &mut input, &mut Vec::new())?;
    match input {
        Some(var) => Ok((var, path)),
        None => outside("a query that reads no input document"),
    }
}

/// The recursive recognizer. `bound`: `Some(v)` when extracting a path
/// relative to the for-bound context node `$v`, `None` at the absolute
/// (virtual-root) level, where free variables name the input document
/// (recorded in `input`, which must stay unique). `forbidden` holds
/// for-variables that may not occur in the current subterm (qualifier
/// bodies must not use the variable they aggregate over).
fn extract<K: Semiring>(
    q: &Query<K>,
    bound: Option<&str>,
    input: &mut Option<String>,
    forbidden: &mut Vec<String>,
) -> Result<PathQuery, Ineligible> {
    match &q.node {
        QueryNode::Empty => Ok(PathQuery::Empty),
        // `(p)` is the singleton coercion — transparent for paths.
        QueryNode::Singleton(inner) => extract(inner, bound, input, forbidden),
        QueryNode::Var(x) => {
            if forbidden.iter().any(|f| f == x) {
                return outside(format!(
                    "for-variable ${x} used outside its qualifier position"
                ));
            }
            match bound {
                Some(v) if x == v => Ok(PathQuery::Root),
                Some(v) => outside(format!(
                    "variable ${x} (only the context node ${v} is reachable here)"
                )),
                None => match input {
                    Some(prev) if prev == x => Ok(PathQuery::from_steps(&[])),
                    Some(prev) => outside(format!("a second input document (${prev} and ${x})")),
                    None => {
                        *input = Some(x.clone());
                        Ok(PathQuery::from_steps(&[]))
                    }
                },
            }
        }
        QueryNode::Path(p, s) => Ok(PathQuery::Step(
            Box::new(extract(p, bound, input, forbidden)?),
            *s,
        )),
        QueryNode::Union(a, b) => Ok(PathQuery::Union(
            Box::new(extract(a, bound, input, forbidden)?),
            Box::new(extract(b, bound, input, forbidden)?),
        )),
        QueryNode::For { var, source, body } => {
            let base = extract(source, bound, input, forbidden)?;
            // `for $v in p return p'($v)` — composition. The body is a
            // path rooted at the bound node.
            let composed_err = match extract(body, Some(var), input, forbidden) {
                Ok(rel) => return Ok(rel.compose(&base)),
                Err(e) => e,
            };
            // `for $v in q return p'(ctx)` — the body ignores $v, so
            // the loop only *scales* by q's total annotation: a
            // branching predicate `.[q]` composed into the body's
            // path. ($v itself must not leak into the body.)
            forbidden.push(var.clone());
            let qualifier = extract(body, bound, input, forbidden);
            forbidden.pop();
            match qualifier {
                Ok(pred_path) => Ok(pred_path.compose(&PathQuery::Filter(
                    Box::new(PathQuery::Root),
                    Box::new(base),
                ))),
                // The composition error names the construct closest to
                // how the query was written; prefer it.
                Err(_) => Err(composed_err),
            }
        }
        QueryNode::If { l, r, then, els } => {
            if !matches!(els.node, QueryNode::Empty) {
                return outside("an if-expression with a non-empty else branch");
            }
            let label_test = match (&l.node, &r.node) {
                (QueryNode::Name(t), QueryNode::LabelLit(lbl))
                | (QueryNode::LabelLit(lbl), QueryNode::Name(t)) => match (&t.node, bound) {
                    (QueryNode::Var(x), Some(v)) if x == v => Some(*lbl),
                    _ => None,
                },
                _ => None,
            };
            match label_test {
                Some(lbl) => {
                    let then_path = extract(then, bound, input, forbidden)?;
                    let self_test = PathQuery::Step(
                        Box::new(PathQuery::Root),
                        Step {
                            axis: Axis::SelfAxis,
                            test: NodeTest::Label(lbl),
                        },
                    );
                    Ok(then_path.compose(&self_test))
                }
                None => {
                    outside("an equality test other than `name($ctx) = label` on the context node")
                }
            }
        }
        QueryNode::Let { .. } => outside("a let binding"),
        QueryNode::Element { .. } => outside("an element constructor"),
        QueryNode::Name(_) => outside("name(·) in a result position"),
        QueryNode::Annot(..) => outside("an annot scalar"),
        QueryNode::LabelLit(l) => outside(format!("the bare label literal `{l}`")),
    }
}

/// Direct reference evaluation of a [`PathQuery`] over a forest: the
/// semantics ψ must reproduce relationally (used by the shredding
/// tests and `Route::Differential`-style cross-checks).
pub fn eval_path<K: Semiring>(forest: &Forest<K>, p: &PathQuery) -> Forest<K> {
    // The virtual root: a sentinel tree whose children are the input's
    // top-level trees. It never appears in results of extracted
    // queries (`extract_path` anchors every spine at `child::*` of the
    // virtual root before anything can match).
    let vroot = Tree::new(Label::new("#vroot"), forest.clone());
    eval_at(p, &vroot)
}

fn eval_at<K: Semiring>(p: &PathQuery, ctx: &Tree<K>) -> Forest<K> {
    match p {
        PathQuery::Root => Forest::unit(ctx.clone()),
        PathQuery::Empty => Forest::new(),
        PathQuery::Step(inner, s) => eval_step(&eval_at(inner, ctx), *s),
        PathQuery::Union(a, b) => {
            let mut out = eval_at(a, ctx);
            out.union_with(eval_at(b, ctx));
            out
        }
        PathQuery::Filter(inner, qual) => {
            let mut out = Forest::new();
            for (m, k) in eval_at(inner, ctx).iter() {
                let total = eval_at(qual, m).as_kset().total();
                if !total.is_zero() {
                    out.insert(m.clone(), k.times(&total));
                }
            }
            out
        }
    }
}

/// Fingerprint-memoized path evaluation (document churn, PR 9).
///
/// [`eval_path_memo`] computes exactly [`eval_path`], but keys the two
/// expensive sub-computations on subtree **value** — which, thanks to
/// the cached `(size, hash)` fingerprints, costs one hash of a
/// precomputed fingerprint per lookup:
///
/// - per descendant-family step, the filtered descendant closure
///   `D(t) = (test ∋ t ? {t:1} : ∅) + Σ_{(c,kc) ∈ children(t)} kc·D(c)`,
/// - per branching predicate, the qualifier's total annotation from a
///   given match.
///
/// Both are functions of the subtree *value* alone (Fig 4's semantics
/// is compositional on values), so entries never need invalidation:
/// after an edit, unchanged subtrees — shared by the hash-consing
/// arena — hit the table, and only the edited spine recomputes.
/// Equality with [`eval_path`] is by distributivity of `·` over the
/// commutative sums [`Forest`] maintains: the closure recursion is the
/// per-seed restriction of `eval_step`'s flat sweep, and a step's
/// result is `Σ_k k·D(t)` over its input. Table size is
/// O(nodes × depth) per step slot in the worst case (documents are
/// depth-capped at parse).
pub struct PathMemo<K: Semiring> {
    desc: Vec<std::collections::HashMap<Tree<K>, Forest<K>>>,
    qual: Vec<std::collections::HashMap<Tree<K>, K>>,
    /// Memo-table hits since construction.
    pub hits: u64,
    /// Memo-table misses (entries computed) since construction.
    pub misses: u64,
}

impl<K: Semiring> Default for PathMemo<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Semiring> PathMemo<K> {
    /// An empty memo (tables are sized on first use).
    pub fn new() -> Self {
        PathMemo {
            desc: Vec::new(),
            qual: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Total number of memoized entries (diagnostics).
    pub fn entry_count(&self) -> usize {
        self.desc.iter().map(|m| m.len()).sum::<usize>()
            + self.qual.iter().map(|m| m.len()).sum::<usize>()
    }

    fn ensure(&mut self, n_desc: usize, n_qual: usize) {
        if self.desc.len() != n_desc || self.qual.len() != n_qual {
            // Slot layout is a pure function of the query, so a
            // mismatch means this memo belongs to a different query:
            // start over (defensive — callers key memos by query).
            self.desc = (0..n_desc).map(|_| Default::default()).collect();
            self.qual = (0..n_qual).map(|_| Default::default()).collect();
        }
    }

    fn desc_at(&mut self, slot: usize, t: &Tree<K>, test: NodeTest) -> Forest<K> {
        let PathMemo {
            desc, hits, misses, ..
        } = self;
        desc_closure(t, test, &mut desc[slot], hits, misses)
    }
}

/// The memoized descendant-or-self closure from a single seed `{t:1}`,
/// label-filtered by `test`.
fn desc_closure<K: Semiring>(
    t: &Tree<K>,
    test: NodeTest,
    table: &mut std::collections::HashMap<Tree<K>, Forest<K>>,
    hits: &mut u64,
    misses: &mut u64,
) -> Forest<K> {
    if let Some(f) = table.get(t) {
        *hits += 1;
        return f.clone();
    }
    *misses += 1;
    let mut out = if test.matches(t.label()) {
        Forest::unit(t.clone())
    } else {
        Forest::new()
    };
    for (c, kc) in t.children().iter() {
        let sub = desc_closure(c, test, table, hits, misses);
        out.extend_scaled(sub, kc);
    }
    table.insert(t.clone(), out.clone());
    out
}

/// [`PathQuery`] with stable memo-slot indices assigned to every
/// descendant-family step and every qualifier, in traversal order.
enum MemoPath {
    Root,
    Empty,
    Step(Box<MemoPath>, Step, Option<usize>),
    Union(Box<MemoPath>, Box<MemoPath>),
    Filter(Box<MemoPath>, Box<MemoPath>, usize),
}

fn build_memo_path(p: &PathQuery, n_desc: &mut usize, n_qual: &mut usize) -> MemoPath {
    match p {
        PathQuery::Root => MemoPath::Root,
        PathQuery::Empty => MemoPath::Empty,
        PathQuery::Step(inner, s) => {
            let inner = build_memo_path(inner, n_desc, n_qual);
            let slot = matches!(s.axis, Axis::Descendant | Axis::StrictDescendant).then(|| {
                *n_desc += 1;
                *n_desc - 1
            });
            MemoPath::Step(Box::new(inner), *s, slot)
        }
        PathQuery::Union(a, b) => MemoPath::Union(
            Box::new(build_memo_path(a, n_desc, n_qual)),
            Box::new(build_memo_path(b, n_desc, n_qual)),
        ),
        PathQuery::Filter(inner, qual) => {
            let inner = build_memo_path(inner, n_desc, n_qual);
            let qual = build_memo_path(qual, n_desc, n_qual);
            let slot = *n_qual;
            *n_qual += 1;
            MemoPath::Filter(Box::new(inner), Box::new(qual), slot)
        }
    }
}

/// [`eval_path`] with subtree-fingerprint memoization (see
/// [`PathMemo`]). Passing the same memo across evaluations of the same
/// query over edited versions of a document reuses every
/// unchanged-subtree result; the result is always identical to
/// [`eval_path`].
pub fn eval_path_memo<K: Semiring>(
    forest: &Forest<K>,
    p: &PathQuery,
    memo: &mut PathMemo<K>,
) -> Forest<K> {
    let (mut n_desc, mut n_qual) = (0usize, 0usize);
    let mp = build_memo_path(p, &mut n_desc, &mut n_qual);
    memo.ensure(n_desc, n_qual);
    let vroot = Tree::new(Label::new("#vroot"), forest.clone());
    eval_at_memo(&mp, &vroot, memo)
}

fn eval_at_memo<K: Semiring>(p: &MemoPath, ctx: &Tree<K>, memo: &mut PathMemo<K>) -> Forest<K> {
    match p {
        MemoPath::Root => Forest::unit(ctx.clone()),
        MemoPath::Empty => Forest::new(),
        MemoPath::Union(a, b) => {
            let mut out = eval_at_memo(a, ctx, memo);
            out.union_with(eval_at_memo(b, ctx, memo));
            out
        }
        MemoPath::Step(inner, s, slot) => {
            let f = eval_at_memo(inner, ctx, memo);
            match (s.axis, slot) {
                (Axis::Descendant, Some(sl)) => {
                    let mut out = Forest::new();
                    for (t, k) in f.iter() {
                        let d = memo.desc_at(*sl, t, s.test);
                        out.extend_scaled(d, k);
                    }
                    out
                }
                (Axis::StrictDescendant, Some(sl)) => {
                    let mut out = Forest::new();
                    for (t, k) in f.iter() {
                        for (c, kc) in t.children().iter() {
                            let d = memo.desc_at(*sl, c, s.test);
                            out.extend_scaled(d, &k.times(kc));
                        }
                    }
                    out
                }
                _ => eval_step(&f, *s),
            }
        }
        MemoPath::Filter(inner, qual, slot) => {
            let f = eval_at_memo(inner, ctx, memo);
            let mut out = Forest::new();
            for (m, k) in f.iter() {
                let total = match memo.qual[*slot].get(m) {
                    Some(v) => {
                        memo.hits += 1;
                        v.clone()
                    }
                    None => {
                        memo.misses += 1;
                        let v = eval_at_memo(qual, m, memo).as_kset().total();
                        memo.qual[*slot].insert(m.clone(), v.clone());
                        v
                    }
                };
                if !total.is_zero() {
                    out.insert(m.clone(), k.times(&total));
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_with;
    use crate::parse::parse_query;
    use crate::typecheck::elaborate;
    use axml_semiring::NatPoly;
    use axml_uxml::{parse_forest, Value};

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    fn extract_src(src: &str) -> Result<(String, PathQuery), Ineligible> {
        extract_path(&elaborate(&parse_query::<NatPoly>(src).unwrap()).unwrap())
    }

    /// extract + eval_path must agree with the direct core evaluator.
    fn check_against_direct(query: &str, doc: &str) {
        let f = parse_forest::<NatPoly>(doc).unwrap();
        let core = elaborate(&parse_query::<NatPoly>(query).unwrap()).unwrap();
        let (var, path) = extract_path(&core)
            .unwrap_or_else(|e| panic!("{query} should be §7-eligible, got: {e}"));
        let direct = eval_with(&core, &[(var.as_str(), Value::Set(f.clone()))]).unwrap();
        let Value::Set(direct) = direct else {
            panic!("path queries are set-typed")
        };
        let via_path = eval_path(&f, &path);
        assert_eq!(via_path, direct, "path algebra diverges on {query}");
    }

    const DOC: &str =
        "<a> <b {x1}> <a> c {y3} d </a> </b> <c {y1}> <d> <a> c {y2} b {x2} </a> </d> </c> </a>";

    #[test]
    fn chains_extract_and_agree() {
        for q in [
            "$S/child::*",
            "$S//c",
            "$S/child::*/child::*",
            "$S//a/child::c",
            "$S/self::a",
            "$S/strict-descendant::c",
        ] {
            let (var, p) = extract_src(q).unwrap();
            assert_eq!(var, "S");
            assert!(p.step_count() >= 1);
            check_against_direct(q, DOC);
        }
    }

    #[test]
    fn unions_extract_and_agree() {
        let q = "($S//c, $S/child::*/child::b)";
        let (_, p) = extract_src(q).unwrap();
        assert!(matches!(p, PathQuery::Union(..)));
        check_against_direct(q, DOC);
    }

    #[test]
    fn for_composition_extracts_and_agrees() {
        let q = "for $x in $S//a return ($x)/child::c";
        let (_, p) = extract_src(q).unwrap();
        assert!(matches!(p, PathQuery::Step(..)));
        check_against_direct(q, DOC);
        check_against_direct(
            "for $x in $S/child::* return for $y in ($x)/child::* return ($y)/child::*",
            DOC,
        );
    }

    #[test]
    fn branching_predicate_extracts_and_agrees() {
        // //a[c] — every a-descendant with a c-child, annotation scaled
        // by the c-children total.
        let q = "for $x in $S//a return for $y in ($x)/child::c return ($x)";
        let (_, p) = extract_src(q).unwrap();
        assert!(matches!(p, PathQuery::Filter(..)));
        check_against_direct(q, DOC);
        // qualifier then further navigation: //a[c]/child::d
        check_against_direct(
            "for $x in $S//a return for $y in ($x)/child::c return ($x)/child::d",
            DOC,
        );
    }

    #[test]
    fn name_test_becomes_self_step() {
        let q = "for $x in $S//* return if (name($x) = c) then ($x) else ()";
        let (_, p) = extract_src(q).unwrap();
        check_against_direct(q, DOC);
        // the filter shows up as a self-step on the spine
        assert!(p.to_string().contains("self::c"), "{p}");
        // reversed operands too
        check_against_direct(
            "for $x in $S//* return if (c = name($x)) then ($x) else ()",
            DOC,
        );
    }

    #[test]
    fn where_clause_desugars_into_the_fragment() {
        check_against_direct("for $x in $S//* where name($x) = a return ($x)", DOC);
    }

    #[test]
    fn ineligible_queries_name_the_construct() {
        for (q, needle) in [
            ("element r { $S//c }", "element constructor"),
            ("let $x := $S return $x", "let binding"),
            ("annot {2} ($S/child::*)", "annot"),
            ("($S/child::*, $T/child::*)", "second input document"),
            (
                "for $x in $S//* return if (name($x) = name($x)) then ($x) else ()",
                "equality test",
            ),
            ("()", "no input document"),
            (
                "for $x in $S return for $y in ($x)/child::* return ($y, $x)",
                "context node",
            ),
        ] {
            let e = extract_src(q).unwrap_err();
            assert!(
                e.construct.contains(needle),
                "{q}: expected {needle:?} in {:?}",
                e.construct
            );
        }
    }

    #[test]
    fn scaling_for_over_ignored_source_agrees() {
        // `for $t in $S/child::* return $S//c` — the body ignores $t;
        // the loop scales //c by the total of the binder's source.
        check_against_direct("for $t in $S/child::* return $S//c", DOC);
    }

    #[test]
    fn filter_annotations_multiply() {
        let f =
            parse_forest::<NatPoly>("<r> <a {p}> b {q} b2 {s} </a> <a {w}> z </a> </r>").unwrap();
        let (_, path) =
            extract_src("for $x in $S//a return for $y in ($x)/child::b return ($x)").unwrap();
        let out = eval_path(&f, &path);
        // only the first a matches, scaled by its b-child total q
        assert_eq!(out.len(), 1);
        let (t, k) = out.iter().next().unwrap();
        assert_eq!(t.label().name(), "a");
        assert_eq!(k, &np("p*q"));
    }

    #[test]
    fn display_roundtrips_visually() {
        let (_, p) = extract_src("$S//c").unwrap();
        assert_eq!(p.to_string(), "./child::*/descendant::c");
    }

    /// The memoized evaluator is value-identical to `eval_path` — on
    /// first use (cold tables), on re-evaluation (pure hits), and
    /// across document edits with the memo carried over.
    #[test]
    fn memo_matches_eval_path_across_edits() {
        let queries = [
            "$S//c",
            "$S/child::a/child::*",
            "($S//b, $S/child::a)",
            "for $x in $S//a return for $y in ($x)/child::b return ($x)",
            "for $t in $S/child::* return $S//c",
        ];
        let doc_v1 = "<r> <a {p}> b {q} b2 {s} c </a> <a {w}> z <c/> </a> </r> <c {u}/>";
        let doc_v2 = "<r> <a {p}> b {q} b2 {s} c </a> <a {w}> z <c2/> </a> </r> <c {u}/>";
        let f1 = parse_forest::<NatPoly>(doc_v1).unwrap();
        let f2 = parse_forest::<NatPoly>(doc_v2).unwrap();
        for q in queries {
            let (_, path) = extract_src(q).unwrap();
            let mut memo = PathMemo::new();
            assert_eq!(
                eval_path_memo(&f1, &path, &mut memo),
                eval_path(&f1, &path),
                "cold memo diverges on {q}"
            );
            assert_eq!(
                eval_path_memo(&f1, &path, &mut memo),
                eval_path(&f1, &path),
                "warm memo diverges on {q}"
            );
            assert_eq!(
                eval_path_memo(&f2, &path, &mut memo),
                eval_path(&f2, &path),
                "carried-over memo diverges on {q} after edit"
            );
        }
    }

    /// Re-evaluating over an unchanged document is (almost) all hits.
    #[test]
    fn memo_hits_on_unchanged_subtrees() {
        let f = parse_forest::<NatPoly>("<r> <a> <b> <c/> </b> </a> <d> <c/> </d> </r>").unwrap();
        let (_, path) = extract_src("$S//c").unwrap();
        let mut memo = PathMemo::new();
        eval_path_memo(&f, &path, &mut memo);
        let misses_cold = memo.misses;
        assert!(misses_cold > 0);
        eval_path_memo(&f, &path, &mut memo);
        assert_eq!(memo.misses, misses_cold, "warm re-eval recomputed entries");
        assert!(memo.hits > 0);
    }
}
