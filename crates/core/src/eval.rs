//! Direct big-step evaluation of core K-UXQuery over K-UXML values.
//!
//! This evaluator is **independent** of the NRC compilation route
//! (`crate::compile`): the two implementations are differentially
//! tested against each other (and, for the XPath fragment, against the
//! relational shredding of §7). Semantically both implement the same
//! K-set algebra: `for` is the big-union (multiplying by the binder's
//! annotation), `,` is pointwise `+`, `annot k` is scalar
//! multiplication, and `descendant` sums path products over all
//! occurrences (§3's examples).

use crate::ast::{Axis, NodeTest, Query, QueryNode, Step};
use axml_semiring::Semiring;
use axml_uxml::{weighted_descendant_closure, Forest, Tree, Value};
use std::fmt;

/// A runtime error (never produced by elaborated queries evaluated
/// against bindings of the declared types).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Description.
    pub msg: String,
    /// Rendering of the query where it occurred.
    pub at: String,
    /// `true` when the error is the caller's resource budget tripping
    /// (a [`axml_uxml::NodeBudget`] passed to the compiled plan), not
    /// an evaluation failure — the facade maps it to its typed budget
    /// error.
    pub budget: bool,
}

impl EvalError {
    /// A memory-budget trip observed at the op boundary rendered by
    /// `at`.
    pub fn budget(at: impl Into<String>) -> Self {
        EvalError {
            msg: "memory budget exceeded".into(),
            at: at.into(),
            budget: true,
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "UXQuery evaluation error: {} (at `{}`)",
            self.msg, self.at
        )
    }
}

impl std::error::Error for EvalError {}

fn err<T, K: Semiring>(q: &Query<K>, msg: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError {
        msg: msg.into(),
        at: q.to_string(),
        budget: false,
    })
}

/// The evaluation environment ρ.
#[derive(Clone, Debug)]
pub struct QueryEnv<K: Semiring> {
    bindings: Vec<(String, Value<K>)>,
}

impl<K: Semiring> Default for QueryEnv<K> {
    fn default() -> Self {
        QueryEnv {
            bindings: Vec::new(),
        }
    }
}

impl<K: Semiring> QueryEnv<K> {
    /// Empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(name, value)` pairs.
    pub fn from_bindings<I: IntoIterator<Item = (String, Value<K>)>>(iter: I) -> Self {
        QueryEnv {
            bindings: iter.into_iter().collect(),
        }
    }

    /// Push a binding.
    pub fn push(&mut self, name: &str, v: Value<K>) {
        self.bindings.push((name.to_owned(), v));
    }

    /// Pop the most recent binding.
    pub fn pop(&mut self) {
        self.bindings.pop();
    }

    /// Innermost binding of `name`.
    pub fn lookup(&self, name: &str) -> Option<&Value<K>> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

/// Evaluate a typed core query.
pub fn eval_core<K: Semiring>(q: &Query<K>, env: &mut QueryEnv<K>) -> Result<Value<K>, EvalError> {
    match &q.node {
        QueryNode::LabelLit(l) => Ok(Value::Label(*l)),
        QueryNode::Var(x) => match env.lookup(x) {
            Some(v) => Ok(v.clone()),
            None => err(q, format!("unbound variable ${x}")),
        },
        QueryNode::Empty => Ok(Value::Set(Forest::new())),
        QueryNode::Singleton(inner) => {
            let v = eval_core(inner, env)?;
            match v {
                Value::Tree(t) => Ok(Value::Set(Forest::unit(t))),
                Value::Label(l) => Ok(Value::Set(Forest::unit(Tree::leaf(l)))),
                Value::Set(_) => err(q, "singleton of a set (elaboration bug)"),
            }
        }
        QueryNode::Union(a, b) => {
            let mut va = eval_set(a, env)?;
            let vb = eval_set(b, env)?;
            va.union_with(vb);
            Ok(Value::Set(va))
        }
        QueryNode::For { var, source, body } => {
            let src = eval_set(source, env)?;
            let mut out = Forest::new();
            for (t, k) in src.iter() {
                env.push(var, Value::Tree(t.clone()));
                let inner = eval_set(body, env);
                env.pop();
                // out += k · inner, reusing the accumulator instead of
                // rebuilding it (the old out = out ∪ k·inner was O(n²)).
                out.extend_scaled(inner?, k);
            }
            Ok(Value::Set(out))
        }
        QueryNode::Let { var, def, body } => {
            let vd = eval_core(def, env)?;
            env.push(var, vd);
            let out = eval_core(body, env);
            env.pop();
            out
        }
        QueryNode::If { l, r, then, els } => {
            let vl = eval_core(l, env)?;
            let vr = eval_core(r, env)?;
            match (vl.as_label(), vr.as_label()) {
                (Some(a), Some(b)) => {
                    if a == b {
                        eval_core(then, env)
                    } else {
                        eval_core(els, env)
                    }
                }
                _ => err(q, "if compares non-labels"),
            }
        }
        QueryNode::Element { name, content } => {
            let vn = eval_core(name, env)?;
            let Some(l) = vn.as_label() else {
                return err(q, "element name is not a label");
            };
            let vc = eval_set(content, env)?;
            Ok(Value::Tree(Tree::new(l, vc)))
        }
        QueryNode::Name(inner) => {
            let v = eval_core(inner, env)?;
            match v.as_tree() {
                Some(t) => Ok(Value::Label(t.label())),
                None => err(q, "name() of a non-tree"),
            }
        }
        QueryNode::Annot(k, inner) => {
            let mut f = eval_set(inner, env)?;
            f.scalar_mul_in_place(k);
            Ok(Value::Set(f))
        }
        QueryNode::Path(inner, step) => {
            let f = eval_set(inner, env)?;
            Ok(Value::Set(eval_step(&f, *step)))
        }
    }
}

fn eval_set<K: Semiring>(q: &Query<K>, env: &mut QueryEnv<K>) -> Result<Forest<K>, EvalError> {
    match eval_core(q, env)? {
        Value::Set(f) => Ok(f),
        other => err(q, format!("expected a set, got {other}")),
    }
}

/// Apply one navigation step to a forest.
///
/// `descendant` (the paper's descendant-or-self) gives each occurrence
/// of a subtree the *product* of the annotations along the path from
/// the root, summed over all occurrences — exactly the Fig 4 semantics.
pub fn eval_step<K: Semiring>(f: &Forest<K>, step: Step) -> Forest<K> {
    let filtered = |forest: Forest<K>| match step.test {
        NodeTest::Wildcard => forest,
        NodeTest::Label(l) => forest.filter_label(|x| x == l),
    };
    match step.axis {
        Axis::SelfAxis => filtered(f.clone()),
        Axis::Child => filtered(f.bind(|t| t.children().clone())),
        Axis::Descendant => sweep(f.iter().map(|(t, k)| (t.clone(), k.clone())), step.test),
        Axis::StrictDescendant => sweep(strict_seeds(f), step.test),
    }
}

/// Both descendant flavors start from a seed set and run the same
/// value-level DAG sweep: [`weighted_descendant_closure`] visits each
/// **distinct** subtree once (occurrence sums fall out of the
/// weight-merging), so the label filter can run on the flat result and
/// the forest is bulk-built from known-distinct pairs instead of
/// inserted one occurrence at a time.
fn sweep<K: Semiring>(seeds: impl IntoIterator<Item = (Tree<K>, K)>, test: NodeTest) -> Forest<K> {
    let mut closed = weighted_descendant_closure(seeds);
    if let NodeTest::Label(l) = test {
        closed.retain(|(t, _)| t.label() == l);
    }
    Forest::from_distinct_pairs(closed)
}

/// Seeds of a strict-descendant sweep: every top-level child, weighted
/// by the root annotation times the child edge.
fn strict_seeds<K: Semiring>(f: &Forest<K>) -> impl Iterator<Item = (Tree<K>, K)> + '_ {
    f.iter().flat_map(|(t, k)| {
        t.children()
            .iter()
            .map(move |(c, kc)| (c.clone(), k.times(kc)))
    })
}

/// Below this many document nodes a descendant sweep stays
/// sequential: splitting, scheduling and merging would cost more than
/// the sweep itself. One constant for both compiled routes (defined
/// in `axml-nrc`, which this crate already depends on), so the two
/// routes always parallelize the same workloads.
pub use axml_nrc::compile::PAR_SWEEP_MIN_NODES;

/// [`eval_step`] with an execution context: descendant sweeps over
/// documents of at least [`PAR_SWEEP_MIN_NODES`] nodes are split into
/// top-level subtree chunks ([`Tree::descendant_split`]'s expansion),
/// swept on the context's pool, and merged with the same in-place
/// union the sequential loop uses — identical results; `child`/`self`
/// steps and small documents take the sequential path untouched.
pub fn eval_step_ctx<K: Semiring>(
    f: &Forest<K>,
    step: Step,
    ctx: Option<&axml_pool::ExecCtx<'_>>,
) -> Forest<K> {
    let Some(ctx) = ctx.filter(|c| !c.is_sequential()) else {
        return eval_step(f, step);
    };
    let sweep_roots: Vec<(Tree<K>, K)> = match step.axis {
        Axis::SelfAxis | Axis::Child => return eval_step(f, step),
        _ if f.size() < PAR_SWEEP_MIN_NODES => return eval_step(f, step),
        // Each sweep root is visited by its own sweep, so the two
        // descendant flavors differ only in where the frontier starts.
        Axis::Descendant => f.iter().map(|(t, k)| (t.clone(), k.clone())).collect(),
        Axis::StrictDescendant => f
            .iter()
            .flat_map(|(t, k)| {
                t.children()
                    .iter()
                    .map(|(c, kc)| (c.clone(), k.times(kc)))
                    .collect::<Vec<_>>()
            })
            .collect(),
    };
    // Grow the frontier until there is enough independent work
    // (the shared largest-first expansion), then sweep chunks in
    // parallel and tree-reduce the partial forests.
    let target = 2 * ctx.degree();
    let (emitted, seeds) = axml_uxml::expand_sweep_seeds(sweep_roots, target);
    let mut partials: Vec<Forest<K>> = ctx.pool.map_chunks(&seeds, target, |chunk| {
        Forest::from_distinct_pairs(weighted_descendant_closure(chunk.iter().cloned()))
    });
    let mut base = Forest::new();
    for (t, k) in emitted {
        base.insert(t, k);
    }
    partials.push(base);
    // Same reduce half as the NRC route's fused sweep: the shared
    // K-set parallel union.
    let merged = Forest::from_kset(axml_semiring::par_union_all(
        ctx.pool,
        ctx.par,
        partials.into_iter().map(Forest::into_kset).collect(),
    ));
    match step.test {
        NodeTest::Wildcard => merged,
        NodeTest::Label(l) => merged.filter_label(|x| x == l),
    }
}

/// All subtrees of `t` (including `t`), each annotated with the sum
/// over occurrences of the product of annotations along the path.
pub fn descendant_or_self<K: Semiring>(t: &Tree<K>) -> Forest<K> {
    Forest::from_distinct_pairs(weighted_descendant_closure([(t.clone(), K::one())]))
}

/// Convenience entry point: elaborate-then-evaluate a surface query
/// against named UXML values. See [`crate::eval_query`].
pub fn eval_with<K: Semiring>(
    q: &Query<K>,
    inputs: &[(&str, Value<K>)],
) -> Result<Value<K>, EvalError> {
    let mut env = QueryEnv::from_bindings(inputs.iter().map(|(n, v)| ((*n).to_owned(), v.clone())));
    eval_core(q, &mut env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use crate::typecheck::elaborate;
    use axml_semiring::{Nat, NatPoly};
    use axml_uxml::{leaf, parse_forest};

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    fn run(src: &str, inputs: &[(&str, Value<NatPoly>)]) -> Value<NatPoly> {
        let s = parse_query::<NatPoly>(src).expect("parses");
        let q = elaborate(&s).expect("elaborates");
        eval_with(&q, inputs).expect("evaluates")
    }

    #[test]
    fn fig1_grandchildren() {
        let src = parse_forest::<NatPoly>(
            "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>",
        )
        .unwrap();
        let out = run(
            "element p { for $t in $S return for $x in ($t)/child::* return ($x)/child::* }",
            &[("S", Value::Set(src))],
        );
        let Value::Tree(t) = out else {
            panic!("expected tree")
        };
        assert_eq!(t.label().name(), "p");
        assert_eq!(t.children().get(&leaf("d")), np("z*x1*y1 + z*x2*y2"));
        assert_eq!(t.children().get(&leaf("e")), np("z*x2*y3"));
        assert_eq!(t.children().len(), 2);
    }

    #[test]
    fn fig1_equivalent_to_grandchildren_xpath() {
        // The paper notes the Fig 1 query equals $S/*/*.
        let src = parse_forest::<NatPoly>(
            "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>",
        )
        .unwrap();
        let v1 = run("element p { $S/*/* }", &[("S", Value::Set(src.clone()))]);
        let v2 = run(
            "element p { for $t in $S return for $x in ($t)/child::* return ($x)/child::* }",
            &[("S", Value::Set(src))],
        );
        assert_eq!(v1, v2);
    }

    #[test]
    fn annot_union_same_label() {
        // §3: annot k1 (p1), annot k2 (p2) with a1 = a2 = a
        let out = run(
            "element b { annot {k1} (element a {()}), annot {k2} (element a {()}) }",
            &[],
        );
        let Value::Tree(t) = out else { panic!() };
        assert_eq!(t.children().get(&leaf("a")), np("k1 + k2"));
        assert_eq!(t.children().len(), 1);
    }

    #[test]
    fn annot_union_different_labels() {
        let out = run(
            "element b { annot {k1} (element a1 {()}), annot {k2} (element a2 {()}) }",
            &[],
        );
        let Value::Tree(t) = out else { panic!() };
        assert_eq!(t.children().get(&leaf("a1")), np("k1"));
        assert_eq!(t.children().get(&leaf("a2")), np("k2"));
    }

    #[test]
    fn fig4_descendant() {
        let src = parse_forest::<NatPoly>(
            "<a> <b {x1}> <a> c {y3} d </a> </b> <c {y1}> <d> <a> c {y2} b {x2} </a> </d> </c> </a>",
        )
        .unwrap();
        let out = run("element r { $T//c }", &[("T", Value::Set(src))]);
        let Value::Tree(t) = out else { panic!() };
        // leaf c: q1 = x1·y3 + y1·y2
        assert_eq!(t.children().get(&leaf("c")), np("x1*y3 + y1*y2"));
        // the c{y1} subtree itself, annotated y1
        let c_subtree = parse_forest::<NatPoly>("<c> <d> <a> c {y2} b {x2} </a> </d> </c>")
            .unwrap()
            .trees()
            .next()
            .unwrap()
            .clone();
        assert_eq!(t.children().get(&c_subtree), np("y1"));
        assert_eq!(t.children().len(), 2);
    }

    #[test]
    fn self_axis_filters() {
        let src = parse_forest::<Nat>("a {2} b {3}").unwrap();
        let s = parse_query::<Nat>("$S/self::a").unwrap();
        let q = elaborate(&s).unwrap();
        let out = eval_with(&q, &[("S", Value::Set(src))]).unwrap();
        let Value::Set(f) = out else { panic!() };
        assert_eq!(f.get(&leaf("a")), Nat(2));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn strict_descendant_excludes_self() {
        let src = parse_forest::<Nat>("<c> <c> d </c> </c>").unwrap();
        let s = parse_query::<Nat>("$S/strict-descendant::c").unwrap();
        let q = elaborate(&s).unwrap();
        let out = eval_with(&q, &[("S", Value::Set(src.clone()))]).unwrap();
        let Value::Set(f) = out else { panic!() };
        // only the inner c, not the root
        assert_eq!(f.len(), 1);
        assert!(f.contains(
            &parse_forest::<Nat>("<c> d </c>")
                .unwrap()
                .trees()
                .next()
                .unwrap()
                .clone()
        ));
        // paper's descendant includes the root too
        let s2 = parse_query::<Nat>("$S/descendant::c").unwrap();
        let q2 = elaborate(&s2).unwrap();
        let out2 = eval_with(&q2, &[("S", Value::Set(src))]).unwrap();
        let Value::Set(f2) = out2 else { panic!() };
        assert_eq!(f2.len(), 2);
    }

    #[test]
    fn let_and_if() {
        let out = run(
            "let $x := element a {()} return if (name($x) = a) then ($x) else ()",
            &[],
        );
        let Value::Set(f) = out else { panic!() };
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn errors_have_context() {
        let s = parse_query::<Nat>("$missing_binding").unwrap();
        let q = elaborate(&s).unwrap();
        let e = eval_with(&q, &[]).unwrap_err();
        assert!(e.msg.contains("unbound"), "{e}");
    }

    #[test]
    fn descendant_or_self_path_products() {
        // chain a →k1 b →k2 c: occurrences of c annotated k1·k2
        let src = parse_forest::<NatPoly>("<a> <b {k1}> c {k2} </b> </a>").unwrap();
        let t = src.trees().next().unwrap();
        let ds = descendant_or_self(t);
        assert_eq!(ds.get(&leaf("c")), np("k1*k2"));
        assert_eq!(ds.get(t), NatPoly::one());
        assert_eq!(ds.len(), 3);
    }
}
