//! Abstract syntax for K-UXQuery (§3, Fig 2), in two layers:
//!
//! - [`SurfaceExpr`]: what the parser produces. Includes the paper's
//!   *sugar* — multi-binder `for`, `where`-clauses, `<a>{…}</a>`
//!   element syntax, `//` paths — and leaves implicit the
//!   tree-vs-singleton-set coercions that the paper "often elides when
//!   clear from context".
//! - [`Query`]: the typed core language after
//!   [`crate::typecheck::elaborate`] — exactly Fig 2's core constructs
//!   with every coercion explicit ([`QueryNode::Singleton`]) and every
//!   node annotated with its [`QType`].

use axml_semiring::Semiring;
use axml_uxml::Label;
use std::fmt;

/// XPath axes supported by UXQuery (Fig 2: `self`, `child`,
/// `descendant`; the paper notes the other axes compile into this
/// downward fragment).
///
/// **Faithfulness note:** the paper's `descendant` *includes the
/// context node* — Fig 4's `//c` returns the top-level `c` tree itself,
/// and the §7 Datalog rules seed the recursion with the roots. We keep
/// the paper's semantics under the paper's name and offer the strict
/// variant as an extension.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Axis {
    /// `self::` — the context trees themselves.
    SelfAxis,
    /// `child::` — immediate subtrees.
    Child,
    /// `descendant::` — the context node and all nodes below it
    /// (the paper's semantics; descendant-*or-self* in XPath terms).
    Descendant,
    /// `strict-descendant::` — strictly below the context node
    /// (XPath's `descendant`; an extension for convenience).
    StrictDescendant,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Axis::SelfAxis => "self",
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::StrictDescendant => "strict-descendant",
        };
        write!(f, "{s}")
    }
}

/// A node test: a specific label or the wildcard `*`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeTest {
    /// Match a specific label.
    Label(Label),
    /// Match any label (`*`).
    Wildcard,
}

impl NodeTest {
    /// Does this test accept the given label?
    pub fn matches(&self, l: Label) -> bool {
        match self {
            NodeTest::Label(t) => *t == l,
            NodeTest::Wildcard => true,
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Label(l) => write!(f, "{l}"),
            NodeTest::Wildcard => write!(f, "*"),
        }
    }
}

/// A navigation step `ax::nt`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}", self.axis, self.test)
    }
}

/// The three UXQuery types (Fig 3): `label`, `tree`, `{tree}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum QType {
    /// Atomic labels.
    Label,
    /// A single tree.
    Tree,
    /// A K-set of trees.
    TreeSet,
}

impl fmt::Display for QType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QType::Label => write!(f, "label"),
            QType::Tree => write!(f, "tree"),
            QType::TreeSet => write!(f, "{{tree}}"),
        }
    }
}

/// An element-name position: a static label or a computed label
/// expression (`element p₁ {p₂}` allows any label-typed `p₁`).
#[derive(Clone, PartialEq, Debug)]
pub enum ElementName<E> {
    /// A fixed label.
    Static(Label),
    /// A computed (label-typed) expression.
    Dynamic(Box<E>),
}

/// A `where lhs = rhs` pair (boxed operands).
pub type WhereEq<K> = (Box<SurfaceExpr<K>>, Box<SurfaceExpr<K>>);

/// Surface syntax as parsed (sugar included).
#[derive(Clone, PartialEq, Debug)]
pub enum SurfaceExpr<K: Semiring> {
    /// A bare label literal `l`.
    LabelLit(Label),
    /// A variable `$x`.
    Var(String),
    /// The empty sequence `()`.
    Empty,
    /// Parentheses `(p)` — grouping *or* singleton construction,
    /// resolved by elaboration ("we often elide the extra set
    /// constructor when clear from context", §3).
    Paren(Box<SurfaceExpr<K>>),
    /// Sequence `p₁, p₂` (set union after coercion).
    Seq(Box<SurfaceExpr<K>>, Box<SurfaceExpr<K>>),
    /// `for $x₁ in p₁, … return body`, with an optional `where l = r`.
    For {
        /// `(variable, source)` binders, bound left to right.
        binders: Vec<(String, SurfaceExpr<K>)>,
        /// Optional `where lhs = rhs` clause.
        where_eq: Option<WhereEq<K>>,
        /// The return clause.
        body: Box<SurfaceExpr<K>>,
    },
    /// `let $x₁ := p₁, … return body`.
    Let {
        /// `(variable, definition)` bindings, bound left to right.
        bindings: Vec<(String, SurfaceExpr<K>)>,
        /// The return clause.
        body: Box<SurfaceExpr<K>>,
    },
    /// `if (l = r) then p₁ else p₂` (labels only — positivity).
    If {
        /// Left side of the equality.
        l: Box<SurfaceExpr<K>>,
        /// Right side of the equality.
        r: Box<SurfaceExpr<K>>,
        /// Then-branch.
        then: Box<SurfaceExpr<K>>,
        /// Else-branch.
        els: Box<SurfaceExpr<K>>,
    },
    /// `element name {content}` (or the `<a>…</a>` sugar).
    Element {
        /// The element name.
        name: ElementName<SurfaceExpr<K>>,
        /// The content (defaults to `()`).
        content: Box<SurfaceExpr<K>>,
    },
    /// `name(p)` — the root label of a tree.
    Name(Box<SurfaceExpr<K>>),
    /// `annot k p` — multiply the annotations of the set `p` by `k`.
    Annot(K, Box<SurfaceExpr<K>>),
    /// A navigation step `p/ax::nt`.
    Path(Box<SurfaceExpr<K>>, Step),
}

impl<K: Semiring + fmt::Display> fmt::Display for SurfaceExpr<K> {
    /// Print in the concrete surface syntax accepted by
    /// [`crate::parse_query`].
    ///
    /// Where the grammar needs a single operand, compound
    /// sub-expressions are parenthesized. Added parentheses show up as
    /// [`SurfaceExpr::Paren`] nodes on re-parse, so print → parse is
    /// not the AST identity in general; it *is* elaboration-preserving
    /// (`Paren` is transparent except on tree-typed operands, which
    /// only get wrapped in positions that coerce to sets anyway — the
    /// `surface_roundtrip` property tests pin this down), and it is
    /// the exact AST identity when no parentheses need inserting.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // A sequence `a, b` in an operand slot would be split by the
        // surrounding construct, and a `for` in a non-final binder
        // slot would swallow the following `, $y in …` as its own
        // binder; parenthesize both (they are set-typed, so the wrap
        // is elaboration-transparent). Hand-built `let`/`if` nodes of
        // *tree* type in non-final binder/binding slots are the one
        // shape this printer cannot disambiguate — the parser never
        // produces them without explicit `Paren` nodes.
        let arg = |f: &mut fmt::Formatter<'_>, e: &SurfaceExpr<K>| {
            if matches!(e, SurfaceExpr::Seq(..) | SurfaceExpr::For { .. }) {
                write!(f, "({e})")
            } else {
                write!(f, "{e}")
            }
        };
        match self {
            SurfaceExpr::LabelLit(l) => write!(f, "{l}"),
            SurfaceExpr::Var(x) => write!(f, "${x}"),
            SurfaceExpr::Empty => write!(f, "()"),
            SurfaceExpr::Paren(a) => write!(f, "({a})"),
            SurfaceExpr::Seq(a, b) => {
                write!(f, "{a}, ")?;
                arg(f, b)
            }
            SurfaceExpr::For {
                binders,
                where_eq,
                body,
            } => {
                write!(f, "for ")?;
                for (i, (v, src)) in binders.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "${v} in ")?;
                    arg(f, src)?;
                }
                if let Some((l, r)) = where_eq {
                    write!(f, " where ")?;
                    arg(f, l)?;
                    write!(f, " = ")?;
                    arg(f, r)?;
                }
                write!(f, " return ")?;
                arg(f, body)
            }
            SurfaceExpr::Let { bindings, body } => {
                write!(f, "let ")?;
                for (i, (v, def)) in bindings.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "${v} := ")?;
                    arg(f, def)?;
                }
                write!(f, " return ")?;
                arg(f, body)
            }
            SurfaceExpr::If { l, r, then, els } => {
                write!(f, "if (")?;
                arg(f, l)?;
                write!(f, " = ")?;
                arg(f, r)?;
                write!(f, ") then ")?;
                arg(f, then)?;
                write!(f, " else ")?;
                arg(f, els)
            }
            SurfaceExpr::Element { name, content } => {
                match name {
                    ElementName::Static(l) => write!(f, "element {l} {{")?,
                    ElementName::Dynamic(e) => write!(f, "element {{{e}}} {{")?,
                }
                write!(f, "{content}}}")
            }
            SurfaceExpr::Name(a) => write!(f, "name({a})"),
            SurfaceExpr::Annot(k, a) => {
                write!(f, "annot {{{k}}} ")?;
                arg(f, a)
            }
            SurfaceExpr::Path(p, step) => {
                // The path base must be a primary; `p₁/s₁/s₂` itself
                // re-parses left-associated, and path sources are
                // coerced to sets, so a wrap is always
                // elaboration-safe here.
                match &**p {
                    SurfaceExpr::LabelLit(_)
                    | SurfaceExpr::Var(_)
                    | SurfaceExpr::Empty
                    | SurfaceExpr::Paren(_)
                    | SurfaceExpr::Element { .. }
                    | SurfaceExpr::Name(_)
                    | SurfaceExpr::Path(..) => write!(f, "{p}")?,
                    compound => write!(f, "({compound})")?,
                }
                write!(f, "/{step}")
            }
        }
    }
}

/// A typed core-UXQuery node (see [`Query`]).
#[derive(Clone, PartialEq, Debug)]
pub enum QueryNode<K: Semiring> {
    /// Label literal — type `label`.
    LabelLit(Label),
    /// Variable — type recorded in the enclosing [`Query`].
    Var(String),
    /// Empty set `()` — type `{tree}`.
    Empty,
    /// Explicit coercion of a `tree` (or, as an extension, a `label`,
    /// read as a leaf element) into the singleton set containing it.
    Singleton(Box<Query<K>>),
    /// Union `p₁, p₂` — type `{tree}`.
    Union(Box<Query<K>>, Box<Query<K>>),
    /// Core single-binder `for $x in p₁ return p₂`.
    For {
        /// The bound variable (type `tree`).
        var: String,
        /// Source set.
        source: Box<Query<K>>,
        /// Body (type `{tree}`).
        body: Box<Query<K>>,
    },
    /// `let $x := p₁ return p₂`.
    Let {
        /// The bound variable.
        var: String,
        /// Definition (any type).
        def: Box<Query<K>>,
        /// Body.
        body: Box<Query<K>>,
    },
    /// `if (l = r) then p₁ else p₂` with label-typed `l`, `r`.
    If {
        /// Left label.
        l: Box<Query<K>>,
        /// Right label.
        r: Box<Query<K>>,
        /// Then-branch.
        then: Box<Query<K>>,
        /// Else-branch.
        els: Box<Query<K>>,
    },
    /// `element name {content}` — type `tree`.
    Element {
        /// Label-typed name expression.
        name: Box<Query<K>>,
        /// `{tree}`-typed content.
        content: Box<Query<K>>,
    },
    /// `name(p)` — type `label`.
    Name(Box<Query<K>>),
    /// `annot k p` — type `{tree}`.
    Annot(K, Box<Query<K>>),
    /// `p/ax::nt` — type `{tree}`.
    Path(Box<Query<K>>, Step),
}

/// A typed core-UXQuery expression: a [`QueryNode`] plus its [`QType`].
#[derive(Clone, PartialEq, Debug)]
pub struct Query<K: Semiring> {
    /// The node.
    pub node: QueryNode<K>,
    /// Its type.
    pub ty: QType,
}

impl<K: Semiring> Query<K> {
    /// Construct (used by elaboration).
    pub fn new(node: QueryNode<K>, ty: QType) -> Self {
        Query { node, ty }
    }

    /// Node count — the `|p|` of Prop 2's size bound.
    pub fn size(&self) -> usize {
        1 + match &self.node {
            QueryNode::LabelLit(_) | QueryNode::Var(_) | QueryNode::Empty => 0,
            QueryNode::Singleton(q) | QueryNode::Name(q) | QueryNode::Annot(_, q) => q.size(),
            QueryNode::Union(a, b) => a.size() + b.size(),
            QueryNode::For { source, body, .. } => source.size() + body.size(),
            QueryNode::Let { def, body, .. } => def.size() + body.size(),
            QueryNode::If { l, r, then, els } => l.size() + r.size() + then.size() + els.size(),
            QueryNode::Element { name, content } => name.size() + content.size(),
            QueryNode::Path(q, _) => q.size(),
        }
    }
}

impl<K: Semiring> fmt::Display for Query<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.node {
            QueryNode::LabelLit(l) => write!(f, "{l}"),
            QueryNode::Var(x) => write!(f, "${x}"),
            QueryNode::Empty => write!(f, "()"),
            QueryNode::Singleton(q) => write!(f, "({q})"),
            QueryNode::Union(a, b) => write!(f, "{a}, {b}"),
            QueryNode::For { var, source, body } => {
                write!(f, "for ${var} in {source} return {body}")
            }
            QueryNode::Let { var, def, body } => {
                write!(f, "let ${var} := {def} return {body}")
            }
            QueryNode::If { l, r, then, els } => {
                write!(f, "if ({l} = {r}) then {then} else {els}")
            }
            QueryNode::Element { name, content } => {
                write!(f, "element {name} {{{content}}}")
            }
            QueryNode::Name(q) => write!(f, "name({q})"),
            QueryNode::Annot(k, q) => write!(f, "annot {{{k:?}}} {q}"),
            QueryNode::Path(q, s) => write!(f, "{q}/{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_semiring::Nat;

    #[test]
    fn node_test_matching() {
        let a = Label::new("a");
        let b = Label::new("b");
        assert!(NodeTest::Wildcard.matches(a));
        assert!(NodeTest::Label(a).matches(a));
        assert!(!NodeTest::Label(a).matches(b));
    }

    #[test]
    fn step_display() {
        let s = Step {
            axis: Axis::Descendant,
            test: NodeTest::Label(Label::new("c")),
        };
        assert_eq!(s.to_string(), "descendant::c");
        let s2 = Step {
            axis: Axis::Child,
            test: NodeTest::Wildcard,
        };
        assert_eq!(s2.to_string(), "child::*");
    }

    #[test]
    fn query_size_counts_nodes() {
        let q: Query<Nat> = Query::new(
            QueryNode::Union(
                Box::new(Query::new(QueryNode::Empty, QType::TreeSet)),
                Box::new(Query::new(QueryNode::Empty, QType::TreeSet)),
            ),
            QType::TreeSet,
        );
        assert_eq!(q.size(), 3);
    }

    #[test]
    fn qtype_display() {
        assert_eq!(QType::Label.to_string(), "label");
        assert_eq!(QType::Tree.to_string(), "tree");
        assert_eq!(QType::TreeSet.to_string(), "{tree}");
    }
}
