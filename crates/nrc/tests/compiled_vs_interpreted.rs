//! Differential property tests: the slot-resolved compiled plan
//! ([`axml_nrc::CompiledExpr`]) against the Fig 8 tree-walking
//! interpreter ([`axml_nrc::eval`]), which is kept as the reference.
//!
//! Two generators:
//!
//! - a *well-typed* `{label}` generator (shadowed binders drawn from a
//!   three-name pool, conditional keeps, lets) — results must be
//!   `Ok` and equal;
//! - a *chaotic* generator that freely mixes every operator, binder
//!   names included `srt` recursion over tree-typed bindings — hostile
//!   (ill-typed) combinations must **error identically** (same
//!   message, no panic) and well-typed ones must agree.
//!
//! Both run over ℕ\[X\] and, through the canonical homomorphisms, over
//! ℕ and `PosBool` — the agreement must hold in every semiring, not
//! just symbolically.

use axml_nrc::compile::CompiledExpr;
use axml_nrc::expr::{self, Expr};
use axml_nrc::types::Type;
use axml_nrc::{eval, hom, CValue, Env};
use axml_semiring::trio::collapse::natpoly_to_posbool;
use axml_semiring::{FnHom, KSet, Nat, NatPoly, PosBool, Semiring, Valuation};
use axml_uxml::parse_forest;
use proptest::prelude::*;

/// Binder pool deliberately tiny so shadowing happens constantly —
/// including shadowing of the free variables `R` (a `{label}` set) and
/// `T` (a tree).
const POOL: [&str; 3] = ["x", "y", "R"];

fn arb_scalar() -> impl Strategy<Value = NatPoly> {
    prop_oneof![
        2 => proptest::sample::select(&["cv1", "cv2", "cv3"][..]).prop_map(NatPoly::var_named),
        1 => Just(NatPoly::one()),
        1 => (0u64..3).prop_map(NatPoly::from),
    ]
}

/// Well-typed `{label}`-typed expressions with heavy binder reuse.
fn arb_label_set(depth: u32) -> BoxedStrategy<Expr<NatPoly>> {
    let leaf = prop_oneof![
        3 => Just(expr::var("R")),
        2 => proptest::sample::select(&["la", "lb", "lc"][..])
            .prop_map(|l| expr::singleton(expr::label(l))),
        1 => Just(expr::empty(Type::Label)),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            2 => (inner.clone(), inner.clone()).prop_map(|(a, b)| expr::union(a, b)),
            2 => (arb_scalar(), inner.clone()).prop_map(|(k, e)| expr::scalar(k, e)),
            // ∪(x ∈ e) if x = l then {x} else {} — binder from the pool
            2 => (
                proptest::sample::select(&POOL[..]),
                inner.clone(),
                proptest::sample::select(&["la", "lb"][..]),
            )
                .prop_map(|(x, e, l)| expr::bigunion(
                    x,
                    e,
                    expr::if_eq(
                        expr::var(x),
                        expr::label(l),
                        expr::singleton(expr::var(x)),
                        expr::empty(Type::Label),
                    ),
                )),
            // nested shadowing: ∪(x ∈ e1) ∪(x ∈ e2) {x}
            1 => (
                proptest::sample::select(&POOL[..]),
                inner.clone(),
                inner.clone(),
            )
                .prop_map(|(x, e1, e2)| expr::bigunion(
                    x,
                    e1,
                    expr::bigunion(x, e2, expr::singleton(expr::var(x))),
                )),
            1 => (proptest::sample::select(&POOL[..]), inner.clone(), inner.clone())
                .prop_map(|(w, d, b)| expr::let_(w, d, expr::union(expr::var(w), b))),
        ]
    })
    .boxed()
}

/// Chaotic expressions: every operator, no typing discipline. `srt`
/// recursion (often nested via the body referencing `T` again) is
/// included; many samples are ill-typed and must error identically.
fn arb_chaotic(depth: u32) -> BoxedStrategy<Expr<NatPoly>> {
    let leaf = prop_oneof![
        2 => Just(expr::var("R")),
        2 => Just(expr::var("T")),
        2 => proptest::sample::select(&["la", "lb"][..]).prop_map(expr::label),
        1 => Just(expr::empty(Type::Tree)),
        1 => Just(expr::var("ghost")), // unbound at eval time
    ];
    leaf.prop_recursive(depth, 32, 3, |inner| {
        let bind = proptest::sample::select(&POOL[..]);
        prop_oneof![
            2 => (inner.clone(), inner.clone()).prop_map(|(a, b)| expr::union(a, b)),
            1 => (inner.clone(), inner.clone()).prop_map(|(a, b)| expr::pair(a, b)),
            1 => inner.clone().prop_map(expr::proj1),
            1 => inner.clone().prop_map(expr::proj2),
            1 => inner.clone().prop_map(expr::singleton),
            1 => inner.clone().prop_map(expr::tag),
            1 => inner.clone().prop_map(expr::kids),
            1 => (arb_scalar(), inner.clone()).prop_map(|(k, e)| expr::scalar(k, e)),
            1 => (inner.clone(), inner.clone()).prop_map(|(a, b)| expr::tree_expr(a, b)),
            2 => (bind.clone(), inner.clone(), inner.clone())
                .prop_map(|(x, s, b)| expr::bigunion(x, s, b)),
            1 => (bind.clone(), inner.clone(), inner.clone())
                .prop_map(|(x, d, b)| expr::let_(x, d, b)),
            1 => (inner.clone(), inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(l, r, t, e)| expr::if_eq(l, r, t, e)),
            // srt with pool binders; the target is arbitrary (tree or
            // not — non-trees must error identically in both).
            2 => (bind, inner.clone(), inner.clone())
                .prop_map(|(x, body, target)| expr::srt(
                    x,
                    "acc",
                    Type::Label.set_of(),
                    body,
                    target,
                )),
        ]
    })
    .boxed()
}

fn sample_bindings() -> Vec<(String, CValue<NatPoly>)> {
    let r: KSet<CValue<NatPoly>, NatPoly> = KSet::from_pairs([
        (CValue::label("la"), NatPoly::var_named("cv1")),
        (CValue::label("lb"), NatPoly::var_named("cv2")),
        (
            CValue::label("lc"),
            NatPoly::var_named("cv1").plus(&NatPoly::var_named("cv3")),
        ),
    ]);
    let t = parse_forest::<NatPoly>("<a {cv1}> <b {cv2}> la {cv3} lb </b> la {cv2} </a>")
        .unwrap()
        .trees()
        .next()
        .unwrap()
        .clone();
    vec![
        ("R".to_owned(), CValue::Set(r)),
        ("T".to_owned(), CValue::Tree(t)),
    ]
}

/// Compiled and interpreted evaluation of `e` under the canonical
/// image in `S`: both `Ok` and equal, or both `Err` with the same
/// message.
fn assert_parity<S: Semiring>(e: &Expr<NatPoly>, h: &impl Fn(&NatPoly) -> S) {
    let fh = FnHom::new(h);
    let he = hom::map_expr(&fh, e);
    let bindings: Vec<(String, CValue<S>)> = sample_bindings()
        .into_iter()
        .map(|(n, v)| (n, hom::map_cvalue(&fh, &v)))
        .collect();

    let plan = CompiledExpr::compile(&he);
    let inputs: Vec<(&str, CValue<S>)> = bindings
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    let compiled = plan.eval(&inputs);

    let mut env = Env::from_bindings(bindings);
    let interpreted = eval(&he, &mut env);

    match (compiled, interpreted) {
        (Ok(c), Ok(i)) => assert_eq!(c, i, "compiled vs interpreted disagree on {e}"),
        (Err(c), Err(i)) => assert_eq!(
            c.msg, i.msg,
            "compiled vs interpreted error differently on {e}"
        ),
        (Ok(c), Err(i)) => panic!("compiled Ok({c:?}) but interpreter erred ({i}) on {e}"),
        (Err(c), Ok(i)) => panic!("interpreter Ok({i:?}) but compiled erred ({c}) on {e}"),
    }
}

fn assert_parity_all_kinds(e: &Expr<NatPoly>) {
    assert_parity::<NatPoly>(e, &Clone::clone);
    let ones = Valuation::<Nat>::new();
    assert_parity::<Nat>(e, &move |p| p.eval(&ones));
    assert_parity::<PosBool>(e, &natpoly_to_posbool);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Well-typed expressions: compiled == interpreted, every kind.
    #[test]
    fn welltyped_parity(e in arb_label_set(3)) {
        assert_parity_all_kinds(&e);
    }

    /// Chaotic expressions (many ill-typed, some with nested srt and
    /// unbound variables): identical outcomes, never a panic.
    #[test]
    fn chaotic_parity(e in arb_chaotic(3)) {
        assert_parity_all_kinds(&e);
    }
}

/// Nested `srt` recursion specifically: an outer srt whose body runs
/// an inner srt over the rebuilt accumulator contents.
#[test]
fn nested_srt_parity() {
    // outer: (srt(x, y). {x} ∪ flatten y) T — atoms of T.
    let atoms = |target: Expr<NatPoly>| {
        expr::srt(
            "x",
            "y",
            Type::Label.set_of(),
            expr::union(
                expr::singleton(expr::var("x")),
                expr::flatten(expr::var("y")),
            ),
            target,
        )
    };
    // inner srt nested in a big-union over kids(T).
    let e = expr::bigunion("k", expr::kids(expr::var("T")), atoms(expr::var("k")));
    assert_parity_all_kinds(&e);

    // srt body that itself srt-recurses over the same node (quadratic
    // but small): ∪ of atoms(T) and per-node label singletons.
    let e2 = expr::srt(
        "x",
        "y",
        Type::Label.set_of(),
        expr::union(expr::singleton(expr::var("x")), atoms(expr::var("T"))),
        expr::var("T"),
    );
    assert_parity_all_kinds(&e2);
}

/// The chunked parallel descendant sweep inside the compiled plan
/// (`eval_with_forests_ctx` with a pool) is bit-identical to the
/// sequential plan and the interpreter on a document large enough to
/// clear the parallel threshold.
#[test]
fn parallel_descendants_parity() {
    use axml_pool::{ExecCtx, Parallelism, Pool};
    // The full §6.3 descendant shape, recognized into the fused sweep:
    // compile the surface query so we exercise exactly what
    // `Route::ViaNrc` runs.
    let mut doc = String::from("<top {z}> ");
    for i in 0..600 {
        doc.push_str(&format!(
            "<m{} {{v{}}}> c {{w{}}} </m{}> ",
            i % 5,
            i,
            i,
            i % 5
        ));
    }
    doc.push_str("</top>");
    let forest = parse_forest::<NatPoly>(&doc).unwrap();
    let core = axml_core::elaborate(&axml_core::parse_query::<NatPoly>("$S//c").unwrap()).unwrap();
    let e = axml_core::compile_optimized(&core);
    let plan = CompiledExpr::compile(&e);
    assert!(
        plan.plan_display().contains("descendants"),
        "query must lower to the fused sweep: {}",
        plan.plan_display()
    );
    let seq = plan.eval_with_forests(&[("S", &forest)]).unwrap();
    let pool = Pool::new(4);
    for degree in [2, 4, 16] {
        let ctx = ExecCtx::new(&pool, Parallelism::threads(degree));
        let par = plan
            .eval_with_forests_ctx(&[("S", &forest)], Some(&ctx))
            .unwrap();
        assert_eq!(seq, par, "degree {degree}");
    }
}

/// The depth caps stay in force in front of the compiled pipeline:
/// hostile parser input errors (it never reaches plan compilation),
/// and an expression over a depth-capped document parse errors
/// identically on both evaluators.
#[test]
fn hostile_inputs_error_not_panic() {
    // A parser bomb: deep nesting is rejected by the NRC parser's
    // recursion cap before compilation is ever attempted.
    let bomb = format!("{}R{}", "π1(".repeat(100_000), ")".repeat(100_000));
    assert!(axml_nrc::parse_expr::<NatPoly>(&bomb).is_err());

    // Ill-typed evaluation: kids of a label — identical errors.
    let e: Expr<NatPoly> = expr::kids(expr::label("la"));
    assert_parity_all_kinds(&e);
    // π1 of a set, tag of a pair: same.
    let e2: Expr<NatPoly> = expr::proj1(expr::var("R"));
    assert_parity_all_kinds(&e2);
    let e3: Expr<NatPoly> = expr::tag(expr::pair(expr::label("la"), expr::label("lb")));
    assert_parity_all_kinds(&e3);
}
