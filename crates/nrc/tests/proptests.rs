//! Property tests for `NRC_K + srt`: random well-typed expressions are
//! generated, then (1) the typechecker accepts them, (2) evaluation
//! never hits a runtime error, (3) Theorem 1 commutation holds, (4) the
//! equational rewriter preserves semantics and never grows terms, and
//! (5) the printer/parser round-trips.

use axml_nrc::expr::{self, Expr};
use axml_nrc::types::Type;
use axml_nrc::{axioms, eval, hom, parse_expr, typecheck, CValue, Env, TypeContext};
use axml_semiring::{dup_elim, FnHom, KSet, Nat, NatPoly, Semiring, Valuation, Var};
use proptest::prelude::*;

const NVARS: [&str; 3] = ["nv1", "nv2", "nv3"];

fn arb_scalar() -> impl Strategy<Value = NatPoly> {
    prop_oneof![
        2 => proptest::sample::select(&NVARS[..]).prop_map(NatPoly::var_named),
        1 => Just(NatPoly::one()),
        1 => (0u64..3).prop_map(NatPoly::from),
    ]
}

/// Random expressions of type `{label}` over a free variable `R` of
/// type `{label}` (kept mono-typed so generation stays simple while
/// still exercising every collection operator).
fn arb_label_set_expr(depth: u32) -> BoxedStrategy<Expr<NatPoly>> {
    let leaf = prop_oneof![
        3 => Just(expr::var("R")),
        2 => proptest::sample::select(&["la", "lb", "lc"][..])
            .prop_map(|l| expr::singleton(expr::label(l))),
        1 => Just(expr::empty(Type::Label)),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            2 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| expr::union(a, b)),
            2 => (arb_scalar(), inner.clone())
                .prop_map(|(k, e)| expr::scalar(k, e)),
            // ∪(x ∈ e) {x}-with-a-twist: conditional keep
            2 => (inner.clone(), proptest::sample::select(&["la", "lb"][..]))
                .prop_map(|(e, l)| {
                    let x = expr::fresh_name("px");
                    expr::bigunion(
                        &x,
                        e,
                        expr::if_eq(
                            expr::var(&x),
                            expr::label(l),
                            expr::singleton(expr::var(&x)),
                            expr::empty(Type::Label),
                        ),
                    )
                }),
            // let-binding
            1 => (inner.clone(), inner.clone()).prop_map(|(d, b)| {
                let w = expr::fresh_name("pw");
                // use the binding in a union with the body
                expr::let_(&w, d, expr::union(expr::var(&w), b))
            }),
        ]
    })
    .boxed()
}

fn sample_env() -> Env<NatPoly> {
    let r: KSet<CValue<NatPoly>, NatPoly> = KSet::from_pairs([
        (CValue::label("la"), NatPoly::var_named("nv1")),
        (CValue::label("lb"), NatPoly::var_named("nv2")),
        (
            CValue::label("lc"),
            NatPoly::var_named("nv1").plus(&NatPoly::var_named("nv3")),
        ),
    ]);
    Env::from_bindings([("R".to_owned(), CValue::Set(r))])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_expressions_typecheck(e in arb_label_set_expr(3)) {
        let mut ctx = TypeContext::from_bindings([(
            "R".to_owned(),
            Type::Label.set_of(),
        )]);
        let t = typecheck(&e, &mut ctx).expect("generated expr typechecks");
        prop_assert_eq!(t, Type::Label.set_of());
    }

    #[test]
    fn evaluation_never_fails(e in arb_label_set_expr(3)) {
        let mut env = sample_env();
        let v = eval(&e, &mut env).expect("well-typed exprs evaluate");
        prop_assert!(v.as_set().is_some());
    }

    /// Theorem 1 at the NRC level, with a valuation hom and dup-elim.
    #[test]
    fn theorem1_commutation(e in arb_label_set_expr(3),
                            vals in proptest::collection::vec(0u64..3, 3)) {
        let val = Valuation::<Nat>::from_pairs(
            NVARS.iter()
                .zip(vals.iter())
                .map(|(n, &v)| (Var::new(n), Nat::from(v))),
        );
        let h = FnHom::new(move |p: &NatPoly| p.eval(&val));

        // H(e(v))
        let mut env = sample_env();
        let out = eval(&e, &mut env).unwrap();
        let lhs = hom::map_cvalue(&h, &out);

        // H(e)(H(v))
        let he = hom::map_expr(&h, &e);
        let hr = {
            let mut env = sample_env();
            let CValue::Set(r) = env.lookup("R").unwrap().clone() else {
                unreachable!()
            };
            let _ = &mut env;
            CValue::Set(r.map_annotations(|k| h.apply_ref(k), |t| hom::map_cvalue(&h, t)))
        };
        let mut env2 = Env::from_bindings([("R".to_owned(), hr)]);
        let rhs = eval(&he, &mut env2).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// simplify: semantics-preserving and non-growing.
    #[test]
    fn simplify_sound_and_shrinking(e in arb_label_set_expr(3)) {
        let s = axioms::simplify(&e);
        prop_assert!(s.size() <= e.size(), "{} grew to {}", e.size(), s.size());
        let mut env1 = sample_env();
        let mut env2 = sample_env();
        prop_assert_eq!(
            eval(&e, &mut env1).unwrap(),
            eval(&s, &mut env2).unwrap()
        );
    }

    /// Display → parse identity.
    #[test]
    fn display_parse_roundtrip(e in arb_label_set_expr(3)) {
        let printed = e.to_string();
        let back = parse_expr::<NatPoly>(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed}"));
        prop_assert_eq!(back, e);
    }

    /// Duplicate elimination factors through ℕ (the †-application the
    /// paper highlights in §6.4).
    #[test]
    fn dup_elim_defers(e in arb_label_set_expr(3)) {
        // evaluate in ℕ[X], specialize all vars to 1 (→ ℕ), then †
        let all_ones = Valuation::<Nat>::new();
        let to_nat = FnHom::new(move |p: &NatPoly| p.eval(&all_ones));
        let to_bool_late = FnHom::new(dup_elim);

        let mut env = sample_env();
        let sym = eval(&e, &mut env).unwrap();
        let via_bags = hom::map_cvalue(&to_bool_late, &hom::map_cvalue(&to_nat, &sym));

        // versus evaluating directly in 𝔹
        let all_true = Valuation::<bool>::new();
        let to_bool = FnHom::new(move |p: &NatPoly| p.eval(&all_true));
        let he = hom::map_expr(&to_bool, &e);
        let mut env2 = Env::from_bindings([(
            "R".to_owned(),
            hom::map_cvalue(&to_bool, sample_env().lookup("R").unwrap()),
        )]);
        let direct = eval(&he, &mut env2).unwrap();
        prop_assert_eq!(via_bags, direct);
    }
}

/// Helper so `FnHom` works by reference inside `map_annotations`.
trait ApplyRef<A, B> {
    fn apply_ref(&self, a: &A) -> B;
}

impl<A: Semiring, B: Semiring, F: Fn(&A) -> B> ApplyRef<A, B> for FnHom<A, B, F> {
    fn apply_ref(&self, a: &A) -> B {
        use axml_semiring::SemiringHom;
        self.apply(a)
    }
}
