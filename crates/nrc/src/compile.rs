//! Compile-once execution plans for `NRC_K + srt`.
//!
//! [`crate::eval()`] is a tree-walking interpreter: every evaluation
//! re-walks the [`Expr`], probes the environment by name, and
//! allocates per binding. This module lowers an expression **once**
//! into a [`CompiledExpr`] that can be evaluated many times:
//!
//! - **Slot resolution** (de Bruijn-style): every variable occurrence
//!   is resolved at compile time to a numeric index into a flat
//!   `Vec`-backed frame stack. Because evaluation is structural, the
//!   stack depth at each program point is statically known, so an
//!   occurrence compiles to `Op::Slot(i)` — one bounds-checked array
//!   read at runtime, no string comparison, no allocation.
//! - **Pre-resolved label tests**: the ubiquitous compiler output
//!   `∪(x ∈ e) if tag(x) = l then {x} else {}` is fused into a single
//!   `filter-label` op that scans the set once against an interned
//!   [`Label`] id, and `∪(x ∈ e) kids(x)` into `kids-flat`.
//! - **Fused structural recursion**: the §6.3 `descendant::*` term —
//!   `π1((srt(b, s). let w = Tree(b, ∪(u ∈ s) {π2(u)}) in
//!   ((∪(v ∈ s) π1(v)) ∪ {w}, w)) e)` — is recognized (up to binder
//!   names) and compiled to a `descendants` op: a single
//!   annotation-product sweep that never rebuilds the tree.
//! - **Iterative driving**: generic `srt` and the fused descendant
//!   sweep run on an explicit stack, so arbitrarily deep documents
//!   cannot overflow the Rust stack. (The remaining recursion in
//!   [`CompiledExpr::eval`] is over the *plan*, whose depth is fixed
//!   at compile time.)
//!
//! The interpreter in [`crate::eval()`] stays the differential
//! reference: compiled and interpreted evaluation are property-tested
//! to agree — including on ill-typed values, where both must produce
//! an [`EvalError`] with the same message rather than panic.

use crate::eval::EvalError;
use crate::expr::{Expr, Name};
use crate::value::CValue;
use axml_semiring::{KSet, Semiring};
use axml_uxml::{
    weighted_descendant_closure, Forest, Label, NodeBudget, ResultSink, StreamError, Streamed, Tree,
};
use std::fmt;

/// Below this many document nodes a descendant sweep stays
/// sequential — splitting, scheduling and merging would cost more
/// than the sweep itself. Shared by both compiled routes (`axml-core`
/// re-exports this constant), so they always parallelize the same
/// workloads.
pub const PAR_SWEEP_MIN_NODES: usize = 1024;

/// A reusable execution plan for one `NRC_K + srt` expression.
///
/// Build with [`CompiledExpr::compile`]; evaluate with
/// [`CompiledExpr::eval`] / [`CompiledExpr::eval_with_forests`]. The
/// plan is immutable and `Send + Sync` (share it freely across
/// threads).
#[derive(Clone, Debug)]
pub struct CompiledExpr<K: Semiring> {
    /// The free variables, in slot order: slot `i` holds the value of
    /// `free[i]` at evaluation entry.
    free: Vec<Name>,
    /// Deepest frame-stack size any program point needs (free
    /// variables + enclosing binders), for exact preallocation.
    max_slots: usize,
    op: Op<K>,
}

/// One plan node. Mirrors [`Expr`] with names resolved to slots and
/// the hot compiler-output shapes fused.
#[derive(Clone, Debug)]
enum Op<K: Semiring> {
    Label(Label),
    /// A variable occurrence, resolved to a frame slot.
    Slot(u32),
    Let {
        def: Box<Op<K>>,
        body: Box<Op<K>>,
    },
    Pair(Box<Op<K>>, Box<Op<K>>),
    Proj1(Box<Op<K>>),
    Proj2(Box<Op<K>>),
    Empty,
    Singleton(Box<Op<K>>),
    Union(Box<Op<K>>, Box<Op<K>>),
    /// `∪(_ ∈ source) body` — pushes one slot around each body run.
    BigUnion {
        source: Box<Op<K>>,
        body: Box<Op<K>>,
    },
    IfEq {
        l: Box<Op<K>>,
        r: Box<Op<K>>,
        then: Box<Op<K>>,
        els: Box<Op<K>>,
    },
    Scalar {
        k: K,
        body: Box<Op<K>>,
    },
    Tree(Box<Op<K>>, Box<Op<K>>),
    Tag(Box<Op<K>>),
    Kids(Box<Op<K>>),
    /// Generic `(srt(_, _). body) target` — pushes two slots (label,
    /// recursive K-set) per node, driven bottom-up on an explicit
    /// stack.
    Srt {
        body: Box<Op<K>>,
        target: Box<Op<K>>,
    },
    /// Fused `∪(x ∈ source) if tag(x) = label then {x} else {}`.
    FilterLabel {
        source: Box<Op<K>>,
        label: Label,
    },
    /// Fused `∪(x ∈ source) kids(x)`.
    KidsFlat(Box<Op<K>>),
    /// Fused `π1((srt …descendant body…) target)`: the K-set of all
    /// subtrees of `target` (including itself), each annotated with
    /// the sum over occurrences of the path annotation product.
    Descendants(Box<Op<K>>),
}

impl<K: Semiring> CompiledExpr<K> {
    /// Lower `e` into a reusable plan. Never fails: ill-typed
    /// expressions compile and then error (not panic) at evaluation,
    /// exactly like the interpreter.
    pub fn compile(e: &Expr<K>) -> Self {
        let free: Vec<Name> = e.free_vars().into_iter().collect();
        let mut lo = SlotScope::seeded(&free);
        let op = lower(e, &mut lo);
        CompiledExpr {
            free,
            max_slots: lo.max_slots(),
            op,
        }
    }

    /// The free variables the plan expects bound, in slot order
    /// (sorted by name).
    pub fn free_vars(&self) -> &[Name] {
        &self.free
    }

    /// Evaluate with each free variable bound to a complex value.
    /// Unused inputs are ignored; a missing input errors like the
    /// interpreter's unbound-variable case.
    pub fn eval(&self, inputs: &[(&str, CValue<K>)]) -> Result<CValue<K>, EvalError> {
        self.eval_seeded(
            |name| {
                inputs
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, v)| v.clone())
            },
            None,
        )
    }

    /// Evaluate with each free variable bound to a `{tree}` value —
    /// the common entry point for compiled UXQuery programs.
    pub fn eval_with_forests(&self, inputs: &[(&str, &Forest<K>)]) -> Result<CValue<K>, EvalError> {
        self.eval_with_forests_ctx(inputs, None)
    }

    /// [`CompiledExpr::eval_with_forests`] with an optional execution
    /// context: with a non-sequential context the fused descendant
    /// sweep over a large document is split into top-level subtree
    /// chunks, swept on the context's pool, and merged in place —
    /// identical results, and `None` is exactly the sequential path.
    pub fn eval_with_forests_ctx(
        &self,
        inputs: &[(&str, &Forest<K>)],
        ctx: Option<&axml_pool::ExecCtx<'_>>,
    ) -> Result<CValue<K>, EvalError> {
        self.eval_with_forests_limits_ctx(inputs, ctx, None)
    }

    /// [`CompiledExpr::eval_with_forests_ctx`] with an optional memory
    /// budget: every set-producing op charges its output's logical
    /// node count, and exceeding the budget errors with
    /// [`EvalError::budget`] at the next op boundary. `None` charges
    /// nothing.
    pub fn eval_with_forests_limits_ctx(
        &self,
        inputs: &[(&str, &Forest<K>)],
        ctx: Option<&axml_pool::ExecCtx<'_>>,
        budget: Option<&axml_uxml::NodeBudget>,
    ) -> Result<CValue<K>, EvalError> {
        let x = Exec { ctx, budget };
        let mut env = self.seed_env(|name| {
            inputs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, f)| CValue::from_forest(f))
        });
        eval_op(&self.op, &mut env, &x)
    }

    /// Evaluate with pieces of a set-shaped top-level result pushed
    /// into `sink` **as they are produced**, in final document order.
    ///
    /// Root plan shapes whose per-piece finality is provable stream
    /// incrementally — a bare input slot, a fused `filter-label` (a
    /// subset of its source with annotations untouched), or a fused
    /// `kids-flat` over a single root tree (one tree's children are
    /// distinct and pre-sorted; each scaled child is final the moment
    /// it is scanned). Every other root shape materializes and then
    /// emits — the sink sees identical pieces in identical order
    /// either way. Non-set results come back whole as
    /// [`Streamed::Scalar`].
    pub fn eval_stream_with_forests_ctx(
        &self,
        inputs: &[(&str, &Forest<K>)],
        ctx: Option<&axml_pool::ExecCtx<'_>>,
        budget: Option<&axml_uxml::NodeBudget>,
        sink: &mut dyn ResultSink<K>,
    ) -> Result<Streamed<K>, StreamError<EvalError>> {
        let x = Exec { ctx, budget };
        let mut env = self.seed_env(|name| {
            inputs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, f)| CValue::from_forest(f))
        });
        let eval = StreamError::Eval;
        match &self.op {
            Op::Slot(i) => match &env[*i as usize] {
                SlotVal::Bound(CValue::Set(s)) => emit_cset(&x, &self.op, sink, s),
                SlotVal::Bound(v) => match v.to_uxml() {
                    Some(scalar) => Ok(Streamed::Scalar(scalar)),
                    None => err(&self.op, "top-level result is not a K-UXML value").map_err(eval),
                },
                SlotVal::Unbound(name) => {
                    err(&self.op, format!("unbound variable `{name}`")).map_err(eval)
                }
            },
            Op::FilterLabel { source, label } => {
                let vs = eval_op(source, &mut env, &x).map_err(eval)?;
                let CValue::Set(s) = vs else {
                    return err(&self.op, format!("big-union source is not a set: {vs:?}"))
                        .map_err(eval);
                };
                // A filter keeps a subset of its source with
                // annotations untouched: sorting the source once by
                // the document comparator and scanning emits exactly
                // the materialized result's order.
                let mut pairs: Vec<(&Tree<K>, &K)> = Vec::new();
                for (v, k) in s.iter() {
                    match v {
                        CValue::Tree(t) => pairs.push((t, k)),
                        other => {
                            return err(&self.op, format!("tag of non-tree {other:?}"))
                                .map_err(eval)
                        }
                    }
                }
                pairs.sort_by(|(a, _), (b, _)| a.cmp_document(b));
                for (t, k) in pairs {
                    if t.label() == *label {
                        emit(&x, &self.op, sink, t, k)?;
                    }
                }
                Ok(Streamed::Set)
            }
            Op::KidsFlat(source) => {
                let vs = eval_op(source, &mut env, &x).map_err(eval)?;
                let CValue::Set(s) = vs else {
                    return err(&self.op, format!("big-union source is not a set: {vs:?}"))
                        .map_err(eval);
                };
                if s.support_len() == 1 {
                    // One root tree: its children are a K-set (so
                    // distinct) and `children_document` is pre-sorted
                    // by the document comparator, so each scaled
                    // child is final as soon as it is scanned (zero
                    // products are pruned exactly like a K-set insert
                    // would).
                    let (v, k) = s.iter().next().expect("support checked");
                    let CValue::Tree(t) = v else {
                        return err(&self.op, format!("kids of non-tree {v:?}")).map_err(eval);
                    };
                    for (c, kc) in t.children_document() {
                        let ann = k.times(kc);
                        if ann.is_zero() {
                            continue;
                        }
                        emit(&x, &self.op, sink, c, &ann)?;
                    }
                    Ok(Streamed::Set)
                } else {
                    // Children of different roots can interleave and
                    // merge; materialize, then emit.
                    let mut out: KSet<CValue<K>, K> = KSet::new();
                    for (v, k) in s.iter() {
                        match v {
                            CValue::Tree(t) => {
                                for (c, kc) in t.children().iter() {
                                    out.insert(CValue::Tree(c.clone()), k.times(kc));
                                }
                            }
                            other => {
                                return err(&self.op, format!("kids of non-tree {other:?}"))
                                    .map_err(eval)
                            }
                        }
                    }
                    emit_cset(&x, &self.op, sink, &out)
                }
            }
            op => {
                let v = eval_op(op, &mut env, &x).map_err(eval)?;
                match v {
                    CValue::Set(s) => emit_cset(&x, op, sink, &s),
                    scalar => match scalar.to_uxml() {
                        Some(scalar) => Ok(Streamed::Scalar(scalar)),
                        None => err(op, "top-level result is not a K-UXML value").map_err(eval),
                    },
                }
            }
        }
    }

    fn eval_seeded(
        &self,
        get: impl FnMut(&str) -> Option<CValue<K>>,
        ctx: Option<&axml_pool::ExecCtx<'_>>,
    ) -> Result<CValue<K>, EvalError> {
        let x = Exec { ctx, budget: None };
        let mut env = self.seed_env(get);
        eval_op(&self.op, &mut env, &x)
    }

    fn seed_env(&self, mut get: impl FnMut(&str) -> Option<CValue<K>>) -> Vec<SlotVal<K>> {
        let mut env: Vec<SlotVal<K>> = Vec::with_capacity(self.max_slots);
        for name in &self.free {
            // A missing input is *not* an immediate error: like the
            // interpreter, the plan only errors if the variable is
            // actually read (dead branches stay dead).
            env.push(match get(name) {
                Some(v) => SlotVal::Bound(v),
                None => SlotVal::Unbound(name.clone()),
            });
        }
        env
    }

    /// A compact rendering of the plan (slots print as `_i`), mainly
    /// for tests and EXPLAIN-style debugging — fused nodes show up as
    /// `filter-label[l](…)`, `kids-flat(…)` and `descendants(…)`.
    pub fn plan_display(&self) -> String {
        self.op.to_string()
    }
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

/// Compile-time scope stack shared by the plan lowerers — this
/// crate's and `axml-core`'s (`CompiledQuery`), which resolve slots
/// under the same invariant: binders push innermost-wins, the free
/// variables seed slots `0..n`, and the high-water mark sizes the
/// runtime frame `Vec` exactly.
pub struct SlotScope {
    scope: Vec<Name>,
    max: usize,
}

impl SlotScope {
    /// A scope whose slots `0..free.len()` hold the free variables.
    pub fn seeded(free: &[Name]) -> Self {
        SlotScope {
            scope: free.to_vec(),
            max: free.len(),
        }
    }

    /// Enter a binder (shadowing earlier bindings of the same name).
    pub fn push(&mut self, name: &str) {
        self.scope.push(name.to_owned());
        self.max = self.max.max(self.scope.len());
    }

    /// Leave the innermost binder.
    pub fn pop(&mut self) {
        self.scope.pop();
    }

    /// Resolve an occurrence to its innermost binding's slot.
    pub fn slot(&self, name: &str) -> u32 {
        self.scope
            .iter()
            .rposition(|n| n == name)
            .expect("lowering: every variable is bound or seeded as free") as u32
    }

    /// Deepest frame-stack size any program point needs.
    pub fn max_slots(&self) -> usize {
        self.max
    }
}

fn lower<K: Semiring>(e: &Expr<K>, lo: &mut SlotScope) -> Op<K> {
    if let Some((source, label)) = as_filter_label(e) {
        return Op::FilterLabel {
            source: Box::new(lower(source, lo)),
            label,
        };
    }
    if let Some(source) = as_kids_flat(e) {
        return Op::KidsFlat(Box::new(lower(source, lo)));
    }
    if let Some(target) = as_descendants(e) {
        return Op::Descendants(Box::new(lower(target, lo)));
    }
    match e {
        Expr::Label(l) => Op::Label(*l),
        Expr::Var(x) => Op::Slot(lo.slot(x)),
        Expr::Let { var, def, body } => {
            let def = lower(def, lo);
            lo.push(var);
            let body = lower(body, lo);
            lo.pop();
            Op::Let {
                def: Box::new(def),
                body: Box::new(body),
            }
        }
        Expr::Pair(a, b) => Op::Pair(Box::new(lower(a, lo)), Box::new(lower(b, lo))),
        Expr::Proj1(a) => Op::Proj1(Box::new(lower(a, lo))),
        Expr::Proj2(a) => Op::Proj2(Box::new(lower(a, lo))),
        Expr::Empty { .. } => Op::Empty,
        Expr::Singleton(a) => Op::Singleton(Box::new(lower(a, lo))),
        Expr::Union(a, b) => Op::Union(Box::new(lower(a, lo)), Box::new(lower(b, lo))),
        Expr::BigUnion { var, source, body } => {
            let source = lower(source, lo);
            lo.push(var);
            let body = lower(body, lo);
            lo.pop();
            Op::BigUnion {
                source: Box::new(source),
                body: Box::new(body),
            }
        }
        Expr::IfEq { l, r, then, els } => Op::IfEq {
            l: Box::new(lower(l, lo)),
            r: Box::new(lower(r, lo)),
            then: Box::new(lower(then, lo)),
            els: Box::new(lower(els, lo)),
        },
        Expr::Scalar { k, body } => Op::Scalar {
            k: k.clone(),
            body: Box::new(lower(body, lo)),
        },
        Expr::Tree(a, b) => Op::Tree(Box::new(lower(a, lo)), Box::new(lower(b, lo))),
        Expr::Tag(a) => Op::Tag(Box::new(lower(a, lo))),
        Expr::Kids(a) => Op::Kids(Box::new(lower(a, lo))),
        Expr::Srt {
            label_var,
            acc_var,
            body,
            target,
            ..
        } => {
            let target = lower(target, lo);
            lo.push(label_var);
            lo.push(acc_var);
            let body = lower(body, lo);
            lo.pop();
            lo.pop();
            Op::Srt {
                body: Box::new(body),
                target: Box::new(target),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fusion recognizers (match the §6.3 compiler output up to binder
// names; all shapes are semantics-preserving by Fig 8 and pinned by
// the compiled-vs-interpreted property tests)
// ---------------------------------------------------------------------

/// `∪(x ∈ e) if tag(x) = 'l' then {x} else {}` → `(e, l)`.
fn as_filter_label<K: Semiring>(e: &Expr<K>) -> Option<(&Expr<K>, Label)> {
    let Expr::BigUnion { var, source, body } = e else {
        return None;
    };
    let Expr::IfEq { l, r, then, els } = &**body else {
        return None;
    };
    let (Expr::Tag(tagged), Expr::Label(lab)) = (&**l, &**r) else {
        return None;
    };
    let (Expr::Var(x1), Expr::Singleton(kept), Expr::Empty { .. }) = (&**tagged, &**then, &**els)
    else {
        return None;
    };
    let Expr::Var(x2) = &**kept else {
        return None;
    };
    (x1 == var && x2 == var).then_some((source, *lab))
}

/// `∪(x ∈ e) kids(x)` → `e`.
fn as_kids_flat<K: Semiring>(e: &Expr<K>) -> Option<&Expr<K>> {
    let Expr::BigUnion { var, source, body } = e else {
        return None;
    };
    let Expr::Kids(inner) = &**body else {
        return None;
    };
    let Expr::Var(x) = &**inner else {
        return None;
    };
    (x == var).then_some(source)
}

/// The full §6.3 descendant term,
/// `π1((srt(b, s). let w := Tree(b, ∪(u ∈ s) {π2(u)}) in
/// ((∪(v ∈ s) π1(v) ∪ {w}), w)) target)` → `target`.
fn as_descendants<K: Semiring>(e: &Expr<K>) -> Option<&Expr<K>> {
    let Expr::Proj1(srt) = e else {
        return None;
    };
    let Expr::Srt {
        label_var: b,
        acc_var: s,
        body,
        target,
        ..
    } = &**srt
    else {
        return None;
    };
    // If label and accumulator share a name, `b` below would resolve
    // to the accumulator (innermost binding wins) — not this shape.
    if b == s {
        return None;
    }
    // let w := Tree(b, ∪(u ∈ s) {π2(u)}) in …
    let Expr::Let {
        var: w,
        def,
        body: let_body,
    } = &**body
    else {
        return None;
    };
    let Expr::Tree(tree_lab, tree_kids) = &**def else {
        return None;
    };
    if !matches!(&**tree_lab, Expr::Var(x) if x == b) {
        return None;
    }
    let Expr::BigUnion {
        var: u,
        source: u_src,
        body: u_body,
    } = &**tree_kids
    else {
        return None;
    };
    if !matches!(&**u_src, Expr::Var(x) if x == s) || u == s {
        return None;
    }
    let Expr::Singleton(p2) = &**u_body else {
        return None;
    };
    let Expr::Proj2(p2v) = &**p2 else {
        return None;
    };
    if !matches!(&**p2v, Expr::Var(x) if x == u) {
        return None;
    }
    // … in ((∪(v ∈ s) π1(v)) ∪ {w}, w)
    let Expr::Pair(first, second) = &**let_body else {
        return None;
    };
    if !matches!(&**second, Expr::Var(x) if x == w) {
        return None;
    }
    let Expr::Union(matches_e, selfton) = &**first else {
        return None;
    };
    let Expr::Singleton(selfv) = &**selfton else {
        return None;
    };
    if !matches!(&**selfv, Expr::Var(x) if x == w) || w == b || w == s {
        return None;
    }
    let Expr::BigUnion {
        var: v,
        source: v_src,
        body: v_body,
    } = &**matches_e
    else {
        return None;
    };
    if !matches!(&**v_src, Expr::Var(x) if x == s) || v == s {
        return None;
    }
    let Expr::Proj1(p1v) = &**v_body else {
        return None;
    };
    if !matches!(&**p1v, Expr::Var(x) if x == v) {
        return None;
    }
    Some(target)
}

// ---------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------

/// One frame slot: a value, or — for a free variable the caller did
/// not supply — a sentinel that errors lazily on first read, matching
/// the interpreter's unbound-variable behavior.
#[derive(Clone, Debug)]
enum SlotVal<K: Semiring> {
    Bound(CValue<K>),
    Unbound(Name),
}

fn err<T, K: Semiring>(op: &Op<K>, msg: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError {
        msg: msg.into(),
        at: op.to_string(),
        budget: false,
    })
}

/// Per-call execution state threaded through every plan op: the
/// optional pool context and the optional memory budget.
#[derive(Clone, Copy)]
struct Exec<'a> {
    ctx: Option<&'a axml_pool::ExecCtx<'a>>,
    budget: Option<&'a NodeBudget>,
}

/// Charge `nodes` against the budget (no-op without one); a trip
/// becomes [`EvalError::budget`] naming the op that observed it.
fn charge<K: Semiring>(x: &Exec<'_>, nodes: usize, op: &Op<K>) -> Result<(), EvalError> {
    match x.budget {
        Some(b) if b.charge(nodes).is_err() => Err(EvalError::budget(op.to_string())),
        _ => Ok(()),
    }
}

/// The logical node count of a complex value — trees by `Tree::size`
/// (the unit the budget is denominated in), labels as one node, pairs
/// and sets as the sum over their parts.
fn cvalue_nodes<K: Semiring>(v: &CValue<K>) -> usize {
    match v {
        CValue::Label(_) => 1,
        CValue::Tree(t) => t.size(),
        CValue::Pair(a, b) => cvalue_nodes(a).saturating_add(cvalue_nodes(b)),
        CValue::Set(s) => set_nodes(s),
    }
}

fn set_nodes<K: Semiring>(s: &KSet<CValue<K>, K>) -> usize {
    s.iter()
        .fold(0usize, |n, (v, _)| n.saturating_add(cvalue_nodes(v)))
}

/// Push one piece, charging its node count against the budget first
/// (a streamed piece is "produced" the moment it is emitted).
fn emit<K: Semiring>(
    x: &Exec<'_>,
    op: &Op<K>,
    sink: &mut dyn ResultSink<K>,
    t: &Tree<K>,
    k: &K,
) -> Result<(), StreamError<EvalError>> {
    charge(x, t.size(), op).map_err(StreamError::Eval)?;
    sink.piece(t, k)?;
    Ok(())
}

/// Emit a materialized K-set of trees piece by piece, in document
/// order (the same comparator `Forest::iter_document` sorts by;
/// distinct trees never tie, so the order is total).
fn emit_cset<K: Semiring>(
    x: &Exec<'_>,
    op: &Op<K>,
    sink: &mut dyn ResultSink<K>,
    s: &KSet<CValue<K>, K>,
) -> Result<Streamed<K>, StreamError<EvalError>> {
    let mut pairs: Vec<(&Tree<K>, &K)> = Vec::with_capacity(s.support_len());
    for (v, k) in s.iter() {
        match v {
            CValue::Tree(t) => pairs.push((t, k)),
            other => {
                return err(
                    op,
                    format!("top-level set element is not a tree: {other:?}"),
                )
                .map_err(StreamError::Eval)
            }
        }
    }
    pairs.sort_by(|(a, _), (b, _)| a.cmp_document(b));
    for (t, k) in pairs {
        emit(x, op, sink, t, k)?;
    }
    Ok(Streamed::Set)
}

fn eval_op<K: Semiring>(
    op: &Op<K>,
    env: &mut Vec<SlotVal<K>>,
    x: &Exec<'_>,
) -> Result<CValue<K>, EvalError> {
    match op {
        Op::Label(l) => Ok(CValue::Label(*l)),
        Op::Slot(i) => match &env[*i as usize] {
            SlotVal::Bound(v) => Ok(v.clone()),
            SlotVal::Unbound(name) => err(op, format!("unbound variable `{name}`")),
        },
        Op::Let { def, body } => {
            let vd = eval_op(def, env, x)?;
            env.push(SlotVal::Bound(vd));
            let out = eval_op(body, env, x);
            env.pop();
            out
        }
        Op::Pair(a, b) => {
            let va = eval_op(a, env, x)?;
            let vb = eval_op(b, env, x)?;
            Ok(CValue::pair(va, vb))
        }
        Op::Proj1(inner) => match eval_op(inner, env, x)? {
            CValue::Pair(a, _) => Ok((*a).clone()),
            other => err(op, format!("π1 of non-pair {other:?}")),
        },
        Op::Proj2(inner) => match eval_op(inner, env, x)? {
            CValue::Pair(_, b) => Ok((*b).clone()),
            other => err(op, format!("π2 of non-pair {other:?}")),
        },
        Op::Empty => Ok(CValue::empty_set()),
        Op::Singleton(inner) => {
            let v = eval_op(inner, env, x)?;
            Ok(CValue::singleton(v))
        }
        Op::Union(a, b) => {
            let va = eval_op(a, env, x)?;
            let vb = eval_op(b, env, x)?;
            match (va, vb) {
                (CValue::Set(mut sa), CValue::Set(sb)) => {
                    sa.union_with(sb);
                    charge(x, set_nodes(&sa), op)?;
                    Ok(CValue::Set(sa))
                }
                (va, vb) => err(op, format!("∪ of non-sets {va:?}, {vb:?}")),
            }
        }
        Op::BigUnion { source, body } => {
            let vs = eval_op(source, env, x)?;
            let CValue::Set(s) = vs else {
                return err(op, format!("big-union source is not a set: {vs:?}"));
            };
            let mut out: KSet<CValue<K>, K> = KSet::new();
            for (v, k) in s.iter() {
                env.push(SlotVal::Bound(v.clone()));
                let inner = eval_op(body, env, x);
                env.pop();
                match inner? {
                    CValue::Set(si) => {
                        charge(x, set_nodes(&si), op)?;
                        out.extend_scaled(si, k)
                    }
                    other => return err(op, format!("big-union body is not a set: {other:?}")),
                }
            }
            Ok(CValue::Set(out))
        }
        Op::IfEq { l, r, then, els } => {
            let vl = eval_op(l, env, x)?;
            let vr = eval_op(r, env, x)?;
            match (vl, vr) {
                (CValue::Label(a), CValue::Label(b)) => {
                    if a == b {
                        eval_op(then, env, x)
                    } else {
                        eval_op(els, env, x)
                    }
                }
                (vl, vr) => err(
                    op,
                    format!("conditional compares non-labels {vl:?}, {vr:?}"),
                ),
            }
        }
        Op::Scalar { k, body } => match eval_op(body, env, x)? {
            CValue::Set(mut s) => {
                s.scalar_mul_in_place(k);
                Ok(CValue::Set(s))
            }
            other => err(op, format!("scalar annotation on non-set {other:?}")),
        },
        Op::Tree(lab, children) => {
            let vl = eval_op(lab, env, x)?;
            let vc = eval_op(children, env, x)?;
            let Some(l) = vl.as_label() else {
                return err(op, format!("Tree label is not a label: {vl:?}"));
            };
            let Some(forest) = vc.to_forest() else {
                return err(op, format!("Tree children are not a set of trees: {vc:?}"));
            };
            charge(x, forest.size() + 1, op)?;
            Ok(CValue::Tree(Tree::new(l, forest)))
        }
        Op::Tag(inner) => match eval_op(inner, env, x)? {
            CValue::Tree(t) => Ok(CValue::Label(t.label())),
            other => err(op, format!("tag of non-tree {other:?}")),
        },
        Op::Kids(inner) => match eval_op(inner, env, x)? {
            CValue::Tree(t) => Ok(CValue::from_forest(t.children())),
            other => err(op, format!("kids of non-tree {other:?}")),
        },
        Op::Srt { body, target } => {
            let vt = eval_op(target, env, x)?;
            let CValue::Tree(t) = vt else {
                return err(op, format!("srt target is not a tree: {vt:?}"));
            };
            eval_srt_iterative(body, &t, env, x)
        }
        Op::FilterLabel { source, label } => {
            let vs = eval_op(source, env, x)?;
            let CValue::Set(s) = vs else {
                return err(op, format!("big-union source is not a set: {vs:?}"));
            };
            let mut out: KSet<CValue<K>, K> = KSet::new();
            for (v, k) in s.iter() {
                match v {
                    CValue::Tree(t) => {
                        if t.label() == *label {
                            out.insert(v.clone(), k.clone());
                        }
                    }
                    other => return err(op, format!("tag of non-tree {other:?}")),
                }
            }
            charge(x, set_nodes(&out), op)?;
            Ok(CValue::Set(out))
        }
        Op::KidsFlat(source) => {
            let vs = eval_op(source, env, x)?;
            let CValue::Set(s) = vs else {
                return err(op, format!("big-union source is not a set: {vs:?}"));
            };
            let mut out: KSet<CValue<K>, K> = KSet::new();
            for (v, k) in s.iter() {
                match v {
                    CValue::Tree(t) => {
                        if k.is_one() {
                            for (c, kc) in t.children().iter() {
                                out.insert(CValue::Tree(c.clone()), kc.clone());
                            }
                        } else {
                            for (c, kc) in t.children().iter() {
                                out.insert(CValue::Tree(c.clone()), k.times(kc));
                            }
                        }
                    }
                    other => return err(op, format!("kids of non-tree {other:?}")),
                }
            }
            charge(x, set_nodes(&out), op)?;
            Ok(CValue::Set(out))
        }
        Op::Descendants(target) => {
            let vt = eval_op(target, env, x)?;
            let CValue::Tree(t) = vt else {
                return err(op, format!("srt target is not a tree: {vt:?}"));
            };
            // Every subtree (including t), annotated with the sum over
            // occurrences of the product of annotations along the path
            // — Fig 4's semantics, via the shared DAG sweep kernel
            // (`weighted_descendant_closure` visits each *distinct*
            // subtree once; occurrence sums fall out of weight
            // merging). With a non-sequential context and a large
            // enough document the sweep is chunked over top-level
            // subtrees and merged in place — same multiset, same
            // result.
            if let Some(c) = x.ctx.filter(|c| !c.is_sequential()) {
                if t.size() >= PAR_SWEEP_MIN_NODES {
                    let target_chunks = 2 * c.degree();
                    let (emitted, seeds) = t.descendant_split(K::one(), target_chunks);
                    let mut partials: Vec<KSet<CValue<K>, K>> =
                        c.pool.map_chunks(&seeds, target_chunks, |chunk| {
                            KSet::from_distinct_pairs(
                                weighted_descendant_closure(chunk.iter().cloned())
                                    .into_iter()
                                    .map(|(node, k)| (CValue::Tree(node), k)),
                            )
                        });
                    let mut base: KSet<CValue<K>, K> = KSet::new();
                    for (t, k) in emitted {
                        base.insert(CValue::Tree(t), k);
                    }
                    partials.push(base);
                    let merged = axml_semiring::par_union_all(c.pool, c.par, partials);
                    charge(x, set_nodes(&merged), op)?;
                    return Ok(CValue::Set(merged));
                }
            }
            let out = KSet::from_distinct_pairs(
                weighted_descendant_closure([(t, K::one())])
                    .into_iter()
                    .map(|(node, k)| (CValue::Tree(node), k)),
            );
            charge(x, set_nodes(&out), op)?;
            Ok(CValue::Set(out))
        }
    }
}

/// Bottom-up `srt` on an explicit stack: children are processed in
/// document order, each node's K-set of recursive results is
/// accumulated in its parent's frame, and the body runs once per node
/// with `[label, acc]` pushed. Document depth costs heap, never Rust
/// stack.
fn eval_srt_iterative<K: Semiring>(
    body: &Op<K>,
    t: &Tree<K>,
    env: &mut Vec<SlotVal<K>>,
    x: &Exec<'_>,
) -> Result<CValue<K>, EvalError> {
    struct Frame<'t, K: Semiring> {
        tree: &'t Tree<K>,
        // K-set iteration order, so a body that errors on some nodes
        // picks the *same* node (hence the same message) as the
        // interpreter's recursive sweep.
        children: Vec<(&'t Tree<K>, &'t K)>,
        next: usize,
        acc: KSet<CValue<K>, K>,
    }
    fn frame<K: Semiring>(t: &Tree<K>) -> Frame<'_, K> {
        Frame {
            tree: t,
            children: t.children().iter().collect(),
            next: 0,
            acc: KSet::new(),
        }
    }
    let mut stack: Vec<Frame<'_, K>> = vec![frame(t)];
    loop {
        let top = stack.last_mut().expect("srt stack never empties mid-loop");
        if top.next < top.children.len() {
            let child = top.children[top.next].0;
            top.next += 1;
            stack.push(frame(child));
            continue;
        }
        let done = stack.pop().expect("just observed");
        env.push(SlotVal::Bound(CValue::Label(done.tree.label())));
        env.push(SlotVal::Bound(CValue::Set(done.acc)));
        let out = eval_op(body, env, x);
        env.pop();
        env.pop();
        let out = out?;
        match stack.last_mut() {
            None => return Ok(out),
            Some(parent) => {
                let k = parent.children[parent.next - 1].1;
                parent.acc.insert(out, k.clone());
            }
        }
    }
}

impl<K: Semiring> fmt::Display for Op<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Label(l) => write!(f, "'{l}'"),
            Op::Slot(i) => write!(f, "_{i}"),
            Op::Let { def, body } => write!(f, "let _ := {def} in {body}"),
            Op::Pair(a, b) => write!(f, "({a}, {b})"),
            Op::Proj1(e) => write!(f, "π1({e})"),
            Op::Proj2(e) => write!(f, "π2({e})"),
            Op::Empty => write!(f, "{{}}"),
            Op::Singleton(e) => write!(f, "{{{e}}}"),
            Op::Union(a, b) => write!(f, "({a} ∪ {b})"),
            Op::BigUnion { source, body } => write!(f, "∪(_ ∈ {source}) {body}"),
            Op::IfEq { l, r, then, els } => {
                write!(f, "if {l} = {r} then {then} else {els}")
            }
            Op::Scalar { body, .. } => write!(f, "scalar {body}"),
            Op::Tree(a, b) => write!(f, "Tree({a}, {b})"),
            Op::Tag(e) => write!(f, "tag({e})"),
            Op::Kids(e) => write!(f, "kids({e})"),
            Op::Srt { body, target } => write!(f, "(srt(_, _). {body}) {target}"),
            Op::FilterLabel { source, label } => write!(f, "filter-label[{label}]({source})"),
            Op::KidsFlat(source) => write!(f, "kids-flat({source})"),
            Op::Descendants(target) => write!(f, "descendants({target})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Env};
    use crate::expr::{self as nx};
    use crate::types::Type;
    use axml_semiring::{Nat, NatPoly};
    use axml_uxml::parse_forest;

    /// Build the §6.3 descendant term by hand (same shape
    /// `axml_core::compile` emits, with explicit names).
    fn descendant_term<K: Semiring>(target: Expr<K>) -> Expr<K> {
        let rebuild = nx::tree_expr(
            nx::var("b"),
            nx::bigunion("u", nx::var("s"), nx::singleton(nx::proj2(nx::var("u")))),
        );
        let matches = nx::bigunion("v", nx::var("s"), nx::proj1(nx::var("v")));
        let body = nx::let_(
            "w",
            rebuild,
            nx::pair(
                nx::union(matches, nx::singleton(nx::var("w"))),
                nx::var("w"),
            ),
        );
        nx::proj1(nx::srt(
            "b",
            "s",
            Type::pair_of(Type::tree_set(), Type::Tree),
            body,
            target,
        ))
    }

    #[test]
    fn slots_resolve_with_shadowing() {
        // ∪(x ∈ R) ∪(x ∈ kids-of-outer-x … ) {x}: inner x shadows.
        let e: Expr<Nat> = nx::bigunion(
            "x",
            nx::var("R"),
            nx::bigunion("x", nx::kids(nx::var("x")), nx::singleton(nx::var("x"))),
        );
        let plan = CompiledExpr::compile(&e);
        assert_eq!(plan.free_vars(), ["R"]);
        let f = parse_forest::<Nat>("<a> b {2} </a>").unwrap();
        let compiled = plan.eval_with_forests(&[("R", &f)]).unwrap();
        let mut env = Env::from_bindings([("R".into(), CValue::from_forest(&f))]);
        assert_eq!(compiled, eval(&e, &mut env).unwrap());
    }

    #[test]
    fn filter_label_and_kids_fuse() {
        let filt: Expr<Nat> = nx::bigunion(
            "x",
            nx::var("R"),
            nx::if_eq(
                nx::tag(nx::var("x")),
                nx::label("a"),
                nx::singleton(nx::var("x")),
                nx::empty(Type::Tree),
            ),
        );
        let plan = CompiledExpr::compile(&filt);
        assert!(
            plan.plan_display().starts_with("filter-label[a]"),
            "{}",
            plan.plan_display()
        );

        let kf: Expr<Nat> = nx::bigunion("x", nx::var("R"), nx::kids(nx::var("x")));
        let plan = CompiledExpr::compile(&kf);
        assert_eq!(plan.plan_display(), "kids-flat(_0)");
    }

    #[test]
    fn filter_label_does_not_fuse_on_shadow_mismatch() {
        // body keeps a *different* variable: must stay generic.
        let e: Expr<Nat> = nx::bigunion(
            "x",
            nx::var("R"),
            nx::if_eq(
                nx::tag(nx::var("x")),
                nx::label("a"),
                nx::singleton(nx::var("y")),
                nx::empty(Type::Tree),
            ),
        );
        let plan = CompiledExpr::compile(&e);
        assert!(
            !plan.plan_display().contains("filter-label"),
            "{}",
            plan.plan_display()
        );
    }

    #[test]
    fn descendant_term_fuses_and_agrees() {
        let e: Expr<NatPoly> = nx::bigunion("x", nx::var("S"), descendant_term(nx::var("x")));
        let plan = CompiledExpr::compile(&e);
        assert!(
            plan.plan_display().contains("descendants(_1)"),
            "{}",
            plan.plan_display()
        );
        let f = parse_forest::<NatPoly>("<a> <b {x1}> c {y1} </b> c {x2} </a>").unwrap();
        let compiled = plan.eval_with_forests(&[("S", &f)]).unwrap();
        let mut env = Env::from_bindings([("S".into(), CValue::from_forest(&f))]);
        let interpreted = eval(&e, &mut env).unwrap();
        assert_eq!(compiled, interpreted);
    }

    #[test]
    fn descendant_shape_with_shared_binder_does_not_fuse() {
        // Same shape but label_var == acc_var: `b` in the rebuild
        // resolves to the accumulator, so fusing would be wrong.
        let rebuild = nx::tree_expr(
            nx::var("s"),
            nx::bigunion("u", nx::var("s"), nx::singleton(nx::proj2(nx::var("u")))),
        );
        let matches = nx::bigunion("v", nx::var("s"), nx::proj1(nx::var("v")));
        let body = nx::let_(
            "w",
            rebuild,
            nx::pair(
                nx::union(matches, nx::singleton(nx::var("w"))),
                nx::var("w"),
            ),
        );
        let e: Expr<Nat> = nx::proj1(nx::srt(
            "s",
            "s",
            Type::pair_of(Type::tree_set(), Type::Tree),
            body,
            nx::var("t"),
        ));
        let plan = CompiledExpr::compile(&e);
        assert!(
            !plan.plan_display().contains("descendants"),
            "{}",
            plan.plan_display()
        );
    }

    #[test]
    fn generic_srt_is_iterative_and_agrees() {
        // (srt(x, y). {x} ∪ flatten y) t — atoms of the tree.
        let body = nx::union(nx::singleton(nx::var("x")), nx::flatten(nx::var("y")));
        let e: Expr<NatPoly> = nx::srt("x", "y", Type::Label.set_of(), body, nx::var("t"));
        let plan = CompiledExpr::compile(&e);
        let f = parse_forest::<NatPoly>("<a {z}> <b {x1}> d {y1} </b> c {x2} </a>").unwrap();
        let t = f.trees().next().unwrap().clone();
        let compiled = plan.eval(&[("t", CValue::Tree(t.clone()))]).unwrap();
        let mut env = Env::from_bindings([("t".into(), CValue::Tree(t))]);
        assert_eq!(compiled, eval(&e, &mut env).unwrap());
    }

    #[test]
    fn deep_documents_do_not_overflow_the_stack() {
        // A 40k-deep chain: the interpreter would need ~40k Rust
        // frames; the compiled sweep runs on an explicit stack. (The
        // values are leaked at the end: *dropping* a 40k-deep Arc
        // chain recurses too, and this test pins evaluation only.)
        let mut t = Tree::<Nat>::leaf("c");
        for i in 0..40_000 {
            t = Tree::new(
                Label::new(if i % 2 == 0 { "n" } else { "m" }),
                Forest::singleton(t, Nat(1)),
            );
        }
        let e: Expr<Nat> = nx::bigunion("x", nx::var("S"), descendant_term(nx::var("x")));
        let plan = CompiledExpr::compile(&e);
        let f = Forest::unit(t);
        let out = plan.eval_with_forests(&[("S", &f)]).unwrap();
        assert_eq!(out.as_set().unwrap().support_len(), 40_001);
        std::mem::forget(out);

        // Generic srt too (no fusion): mark every node seen.
        let count_body = nx::union(nx::singleton(nx::label("seen")), nx::empty(Type::Label));
        let e2: Expr<Nat> = nx::srt("x", "y", Type::Label.set_of(), count_body, nx::var("t"));
        let plan2 = CompiledExpr::compile(&e2);
        let t2 = f.trees().next().unwrap().clone();
        let out2 = plan2.eval(&[("t", CValue::Tree(t2))]).unwrap();
        assert!(out2.as_set().is_some());
        std::mem::forget(out2);
        std::mem::forget(f);
    }

    #[test]
    fn errors_match_the_interpreter() {
        // π1 of a label: both error with the same message.
        let e: Expr<Nat> = nx::proj1(nx::label("a"));
        let plan = CompiledExpr::compile(&e);
        let ce = plan.eval(&[]).unwrap_err();
        let ie = crate::eval::eval_closed(&e).unwrap_err();
        assert_eq!(ce.msg, ie.msg);

        // unbound variable at entry
        let e2: Expr<Nat> = nx::var("ghost");
        let plan2 = CompiledExpr::compile(&e2);
        let ce2 = plan2.eval(&[]).unwrap_err();
        let ie2 = crate::eval::eval_closed(&e2).unwrap_err();
        assert_eq!(ce2.msg, ie2.msg);
    }
}
