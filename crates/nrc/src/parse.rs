//! A text syntax for `NRC_K + srt` expressions and types.
//!
//! The grammar accepts exactly what the [`std::fmt::Display`]
//! implementation of [`Expr`] prints (plus ASCII equivalents), so
//! `parse(e.to_string()) == e` for every expression — a property
//! round-trip-tested below. The calculus syntax follows the paper:
//!
//! ```text
//! e ::= 'l'                       label constant
//!     | x                         variable
//!     | let x := e in e
//!     | (e, e) | π1(e) | π2(e)    (ASCII: p1/p2)
//!     | {}:t | {e} | (e ∪ e)      (ASCII: e \/ e)
//!     | ∪(x ∈ e) e                (ASCII: U(x in e) e)
//!     | if e = e then e else e
//!     | k·e                       scalar annotation (ASCII: k . e is NOT
//!                                 used; write k·e with the middle dot,
//!                                 or `scalar{K-text} e`)
//!     | Tree(e, e) | tag(e) | kids(e)
//!     | (srt(x, y):t. e) e        structural recursion
//!     | (e)                       grouping
//! t ::= label | tree | {t} | (t × t)   (ASCII: (t * t))
//! ```
//!
//! Scalars parse through the same [`ParseAnnotation`] hook as document
//! annotations, so `ℕ[X]` expressions accept polynomial text:
//! `scalar{x1 + 2} {…}` or `3·{…}` (the `Debug` form printed by
//! `Display` is accepted back for the built-in semirings).

use crate::expr::{self, Expr};
use crate::types::Type;
use axml_semiring::Semiring;
use axml_uxml::{Label, ParseAnnotation};
use std::fmt;

/// A parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description.
    pub msg: String,
    /// Byte offset into the source.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NRC parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse an NRC expression.
///
/// ```
/// use axml_nrc::parse::parse_expr;
/// use axml_semiring::Nat;
/// let e = parse_expr::<Nat>("∪(x ∈ R) {π1(x)}").unwrap();
/// assert_eq!(e.to_string(), "∪(x ∈ R) {π1(x)}");
/// ```
pub fn parse_expr<K: Semiring + ParseAnnotation>(src: &str) -> Result<Expr<K>, ParseError> {
    let mut p = Parser {
        src,
        pos: 0,
        depth: 0,
    };
    let e = p.parse_expr()?;
    p.skip_ws();
    if p.pos < src.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(e)
}

/// Parse a type.
pub fn parse_type(src: &str) -> Result<Type, ParseError> {
    let mut p = Parser {
        src,
        pos: 0,
        depth: 0,
    };
    let t = p.parse_type()?;
    p.skip_ws();
    if p.pos < src.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(t)
}

/// Recursion cap: hostile input (`π1(π1(π1(…`) must error, not
/// overflow the parse stack — same hardening as the query, document
/// and polynomial parsers.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("expression nesting exceeds {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }
    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let r = self.rest();
        let t = r.trim_start();
        self.pos += r.len() - t.len();
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn peek_ident(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let r = self.rest();
        let mut end = 0;
        for (i, c) in r.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || matches!(c, '_' | '%')
            };
            if ok {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        (end > 0).then(|| &r[..end])
    }

    fn eat_ident(&mut self) -> Option<&'a str> {
        let id = self.peek_ident()?;
        self.pos += id.len();
        Some(id)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_ident() == Some(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn read_braced_raw(&mut self) -> Result<&'a str, ParseError> {
        self.expect("{")?;
        let start = self.pos;
        let mut depth = 1usize;
        for (i, c) in self.rest().char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        let text = &self.src[start..start + i];
                        self.pos = start + i + 1;
                        return Ok(text);
                    }
                }
                _ => {}
            }
        }
        Err(self.err("unterminated '{'"))
    }

    // -- types --------------------------------------------------------

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        self.descend()?;
        let out = self.parse_type_inner();
        self.ascend();
        out
    }

    fn parse_type_inner(&mut self) -> Result<Type, ParseError> {
        self.skip_ws();
        if self.eat("{") {
            let inner = self.parse_type()?;
            self.expect("}")?;
            return Ok(inner.set_of());
        }
        if self.eat("(") {
            let a = self.parse_type()?;
            if self.eat("×") || self.eat("*") {
                let b = self.parse_type()?;
                self.expect(")")?;
                return Ok(Type::pair_of(a, b));
            }
            self.expect(")")?;
            return Ok(a);
        }
        if self.eat_keyword("label") {
            return Ok(Type::Label);
        }
        if self.eat_keyword("tree") {
            return Ok(Type::Tree);
        }
        Err(self.err("expected a type (label, tree, {t}, (t × t))"))
    }

    // -- expressions ----------------------------------------------------

    /// expr := unionExpr
    fn parse_expr<K: Semiring + ParseAnnotation>(&mut self) -> Result<Expr<K>, ParseError> {
        self.descend()?;
        let out = self.parse_expr_inner();
        self.ascend();
        out
    }

    fn parse_expr_inner<K: Semiring + ParseAnnotation>(&mut self) -> Result<Expr<K>, ParseError> {
        let mut acc = self.parse_prefix()?;
        loop {
            self.skip_ws();
            if self.eat("∪") || self.eat("\\/") {
                // binary union (the big-union form is handled in prefix
                // position; after an operand `∪` must be binary)
                let rhs = self.parse_prefix()?;
                acc = expr::union(acc, rhs);
            } else {
                return Ok(acc);
            }
        }
    }

    fn parse_prefix<K: Semiring + ParseAnnotation>(&mut self) -> Result<Expr<K>, ParseError> {
        self.descend()?;
        let out = self.parse_prefix_inner();
        self.ascend();
        out
    }

    fn parse_prefix_inner<K: Semiring + ParseAnnotation>(&mut self) -> Result<Expr<K>, ParseError> {
        self.skip_ws();
        // big-union: ∪(x ∈ e) e  /  U(x in e) e
        if self.rest().starts_with("∪(") || self.rest().starts_with("U(") {
            let sigil = if self.rest().starts_with('∪') {
                "∪"
            } else {
                "U"
            };
            self.expect(sigil)?;
            self.expect("(")?;
            let x = self
                .eat_ident()
                .ok_or_else(|| self.err("expected a variable"))?
                .to_owned();
            if !(self.eat("∈") || self.eat_keyword("in")) {
                return Err(self.err("expected '∈' or 'in'"));
            }
            let source = self.parse_expr()?;
            self.expect(")")?;
            let body = self.parse_prefix()?;
            return Ok(expr::bigunion(&x, source, body));
        }
        if self.eat_keyword("let") {
            let x = self
                .eat_ident()
                .ok_or_else(|| self.err("expected a variable"))?
                .to_owned();
            self.expect(":=")?;
            // Trailing sub-expression positions parse at prefix level:
            // Display always parenthesizes binary unions, so a bare
            // `∪` after this position belongs to an enclosing union.
            let def = self.parse_prefix()?;
            if !self.eat_keyword("in") {
                return Err(self.err("expected 'in'"));
            }
            let body = self.parse_prefix()?;
            return Ok(expr::let_(&x, def, body));
        }
        if self.eat_keyword("if") {
            let l = self.parse_prefix()?;
            self.expect("=")?;
            let r = self.parse_prefix()?;
            if !self.eat_keyword("then") {
                return Err(self.err("expected 'then'"));
            }
            let t = self.parse_prefix()?;
            if !self.eat_keyword("else") {
                return Err(self.err("expected 'else'"));
            }
            let e = self.parse_prefix()?;
            return Ok(expr::if_eq(l, r, t, e));
        }
        if self.eat_keyword("scalar") {
            let text = self.read_braced_raw()?;
            let k = K::parse_annotation(text).map_err(|m| self.err(m))?;
            let body = self.parse_prefix()?;
            return Ok(expr::scalar(k, body));
        }
        self.parse_postfix()
    }

    fn parse_postfix<K: Semiring + ParseAnnotation>(&mut self) -> Result<Expr<K>, ParseError> {
        let e = self.parse_primary()?;
        Ok(e)
    }

    fn parse_primary<K: Semiring + ParseAnnotation>(&mut self) -> Result<Expr<K>, ParseError> {
        self.skip_ws();
        let r = self.rest();

        // label constant 'l'
        if r.starts_with('\'') {
            self.pos += 1;
            let rest = self.rest();
            let Some(endq) = rest.find('\'') else {
                return Err(self.err("unterminated label quote"));
            };
            let name = &rest[..endq];
            self.pos += endq + 1;
            return Ok(Expr::Label(Label::new(name)));
        }

        // {}:t  or  {e}
        if r.starts_with('{') {
            // try empty-with-type first
            let save = self.pos;
            self.pos += 1;
            self.skip_ws();
            if self.eat("}") {
                self.expect(":")?;
                let t = self.parse_type()?;
                return Ok(expr::empty(t));
            }
            self.pos = save;
            self.expect("{")?;
            let inner = self.parse_expr()?;
            self.expect("}")?;
            return Ok(expr::singleton(inner));
        }

        // projections and observers
        for (names, build) in [
            (&["π1", "p1"][..], expr::proj1 as fn(Expr<K>) -> Expr<K>),
            (&["π2", "p2"][..], expr::proj2 as fn(Expr<K>) -> Expr<K>),
            (&["tag"][..], expr::tag as fn(Expr<K>) -> Expr<K>),
            (&["kids"][..], expr::kids as fn(Expr<K>) -> Expr<K>),
        ] {
            for name in names {
                let is_word = name.chars().next().is_some_and(|c| c.is_ascii_alphabetic());
                let matches = if is_word {
                    self.peek_ident() == Some(*name)
                } else {
                    self.rest().starts_with(name)
                };
                if matches {
                    let save = self.pos;
                    self.pos += name.len();
                    if self.eat("(") {
                        let inner = self.parse_expr()?;
                        self.expect(")")?;
                        return Ok(build(inner));
                    }
                    self.pos = save;
                }
            }
        }

        // Tree(e, e)
        if self.peek_ident() == Some("Tree") {
            let save = self.pos;
            self.pos += 4;
            if self.eat("(") {
                let a = self.parse_expr()?;
                self.expect(",")?;
                let b = self.parse_expr()?;
                self.expect(")")?;
                return Ok(expr::tree_expr(a, b));
            }
            self.pos = save;
        }

        // ( … ): group, pair, or srt application
        if r.starts_with('(') {
            self.pos += 1;
            self.skip_ws();
            // (srt(x, y):t. body) target
            if self.peek_ident() == Some("srt") {
                self.pos += 3;
                self.expect("(")?;
                let x = self
                    .eat_ident()
                    .ok_or_else(|| self.err("expected srt label variable"))?
                    .to_owned();
                self.expect(",")?;
                let y = self
                    .eat_ident()
                    .ok_or_else(|| self.err("expected srt accumulator variable"))?
                    .to_owned();
                self.expect(")")?;
                self.expect(":")?;
                let t = self.parse_type()?;
                self.expect(".")?;
                let body = self.parse_expr()?;
                self.expect(")")?;
                let target = self.parse_prefix()?;
                return Ok(expr::srt(&x, &y, t, body, target));
            }
            let a = self.parse_expr()?;
            if self.eat(",") {
                let b = self.parse_expr()?;
                self.expect(")")?;
                return Ok(expr::pair(a, b));
            }
            self.expect(")")?;
            return Ok(a);
        }

        // scalar written as Debug·expr, e.g. `3·{…}` or `x1 + 1·…` is
        // ambiguous, so only a simple token before `·` is accepted:
        // try to lex a scalar token up to '·'
        if let Some(dot) = r.find('·') {
            let candidate = &r[..dot];
            if !candidate.is_empty()
                && !candidate.contains(|c: char| c.is_whitespace() || "(){}".contains(c))
            {
                if let Ok(k) = K::parse_annotation(candidate) {
                    self.pos += dot + '·'.len_utf8();
                    let body = self.parse_prefix()?;
                    return Ok(expr::scalar(k, body));
                }
            }
        }

        // variable
        if let Some(id) = self.eat_ident() {
            return Ok(expr::var(id));
        }

        Err(self.err("expected an expression"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use axml_semiring::{Nat, NatPoly};

    fn roundtrip<K: Semiring + ParseAnnotation>(e: &Expr<K>) {
        let printed = e.to_string();
        let parsed = parse_expr::<K>(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        assert_eq!(&parsed, e, "roundtrip through `{printed}`");
    }

    #[test]
    fn parse_basics() {
        let e = parse_expr::<Nat>("∪(x ∈ R) {π1(x)}").unwrap();
        assert_eq!(e, bigunion("x", var("R"), singleton(proj1(var("x")))));
        let e2 = parse_expr::<Nat>("U(x in R) {p1(x)}").unwrap();
        assert_eq!(e, e2, "ASCII spellings accepted");
    }

    #[test]
    fn parse_types() {
        assert_eq!(parse_type("label").unwrap(), Type::Label);
        assert_eq!(parse_type("{tree}").unwrap(), Type::tree_set());
        assert_eq!(
            parse_type("({tree} × tree)").unwrap(),
            Type::pair_of(Type::tree_set(), Type::Tree)
        );
        assert_eq!(
            parse_type("({tree} * tree)").unwrap(),
            Type::pair_of(Type::tree_set(), Type::Tree)
        );
        assert!(parse_type("nope").is_err());
    }

    #[test]
    fn roundtrip_representative_expressions() {
        let exprs: Vec<Expr<Nat>> = vec![
            label("a"),
            var("x"),
            pair(label("a"), singleton(label("b"))),
            proj1(pair(var("x"), var("y"))),
            empty(Type::Tree),
            empty(Type::pair_of(Type::Label, Type::tree_set())),
            union(singleton(label("a")), empty(Type::Label)),
            bigunion("x", var("R"), singleton(var("x"))),
            if_eq(
                tag(var("t")),
                label("a"),
                singleton(var("t")),
                empty(Type::Tree),
            ),
            scalar(Nat(3), singleton(label("a"))),
            tree_expr(label("a"), empty(Type::Tree)),
            kids(var("t")),
            let_("w", var("R"), union(var("w"), var("w"))),
            srt(
                "b",
                "s",
                Type::pair_of(Type::tree_set(), Type::Tree),
                pair(
                    bigunion("v", var("s"), proj1(var("v"))),
                    tree_expr(var("b"), empty(Type::Tree)),
                ),
                var("t"),
            ),
            flatten(var("W")),
        ];
        for e in &exprs {
            roundtrip(e);
        }
    }

    #[test]
    fn scalar_spellings() {
        let a = parse_expr::<NatPoly>("scalar{x1 + 2} {x}").unwrap();
        // `(x1 + 2)·…` has parens, which the short `k·e` form rejects —
        // the braced form is the general syntax:
        assert!(parse_expr::<NatPoly>("(x1 + 2)·{x}").is_err());
        let Expr::Scalar { k, .. } = &a else { panic!() };
        assert_eq!(k, &"x1 + 2".parse::<NatPoly>().unwrap());
        // the short form covers Display's Debug rendering
        let c = parse_expr::<Nat>("3·{x}").unwrap();
        assert_eq!(c, scalar(Nat(3), singleton(var("x"))));
    }

    #[test]
    fn error_positions() {
        assert!(parse_expr::<Nat>("∪(x ∈ R)").is_err());
        assert!(parse_expr::<Nat>("{a").is_err());
        assert!(parse_expr::<Nat>("{}:").is_err());
        assert!(parse_expr::<Nat>("let x := y").is_err());
        assert!(parse_expr::<Nat>("π1(x) garbage").is_err());
        assert!(parse_expr::<Nat>("'unterminated").is_err());
    }

    #[test]
    fn parse_then_eval() {
        use crate::eval::eval_closed;
        let e = parse_expr::<Nat>("∪(x ∈ {'a'} ∪ scalar{2} {'b'}) {(x, x)}").unwrap();
        let v = eval_closed(&e).unwrap();
        let s = v.as_set().unwrap();
        assert_eq!(s.support_len(), 2);
    }
}
