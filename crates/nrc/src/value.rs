//! K-complex values: the value domain of `NRC_K + srt` (§6.2).

use axml_semiring::{KSet, Semiring};
use axml_uxml::{Forest, Label, Tree, Value};
use std::fmt;
use std::sync::Arc;

/// A K-complex value: labels, pairs and K-collections nested
/// arbitrarily, plus trees (which embed K-UXML).
///
/// Pairs hold `Arc`s so cloning (which set operations do liberally) is
/// cheap; equality/ordering remain by value.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CValue<K: Semiring> {
    /// A label.
    Label(Label),
    /// A pair.
    Pair(Arc<CValue<K>>, Arc<CValue<K>>),
    /// A K-collection.
    Set(KSet<CValue<K>, K>),
    /// An annotated unordered tree (shared with `axml-uxml`).
    Tree(Tree<K>),
}

impl<K: Semiring> CValue<K> {
    /// A label value.
    pub fn label(name: &str) -> Self {
        CValue::Label(Label::new(name))
    }

    /// A pair value.
    pub fn pair(a: CValue<K>, b: CValue<K>) -> Self {
        CValue::Pair(Arc::new(a), Arc::new(b))
    }

    /// An empty collection.
    pub fn empty_set() -> Self {
        CValue::Set(KSet::new())
    }

    /// A singleton collection annotated `1`.
    pub fn singleton(v: CValue<K>) -> Self {
        CValue::Set(KSet::unit(v))
    }

    /// The label, if this is one.
    pub fn as_label(&self) -> Option<Label> {
        match self {
            CValue::Label(l) => Some(*l),
            _ => None,
        }
    }

    /// The collection, if this is one.
    pub fn as_set(&self) -> Option<&KSet<CValue<K>, K>> {
        match self {
            CValue::Set(s) => Some(s),
            _ => None,
        }
    }

    /// The tree, if this is one.
    pub fn as_tree(&self) -> Option<&Tree<K>> {
        match self {
            CValue::Tree(t) => Some(t),
            _ => None,
        }
    }

    /// Convert a K-UXML forest into a `{tree}`-typed collection value.
    pub fn from_forest(f: &Forest<K>) -> Self {
        CValue::Set(KSet::from_pairs(
            f.iter().map(|(t, k)| (CValue::Tree(t.clone()), k.clone())),
        ))
    }

    /// Convert a `{tree}`-typed collection value back into a forest.
    /// Returns `None` if any member is not a tree.
    pub fn to_forest(&self) -> Option<Forest<K>> {
        let s = self.as_set()?;
        let mut f = Forest::new();
        for (v, k) in s.iter() {
            f.insert(v.as_tree()?.clone(), k.clone());
        }
        Some(f)
    }

    /// Convert a K-UXML [`Value`] into a complex value.
    pub fn from_uxml(v: &Value<K>) -> Self {
        match v {
            Value::Label(l) => CValue::Label(*l),
            Value::Tree(t) => CValue::Tree(t.clone()),
            Value::Set(f) => CValue::from_forest(f),
        }
    }

    /// Convert back to a K-UXML [`Value`] when the shape allows
    /// (labels, trees, and `{tree}` collections).
    pub fn to_uxml(&self) -> Option<Value<K>> {
        match self {
            CValue::Label(l) => Some(Value::Label(*l)),
            CValue::Tree(t) => Some(Value::Tree(t.clone())),
            CValue::Set(_) => self.to_forest().map(Value::Set),
            CValue::Pair(..) => None,
        }
    }
}

impl<K: Semiring> fmt::Debug for CValue<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CValue::Label(l) => write!(f, "'{l}'"),
            CValue::Pair(a, b) => write!(f, "({a:?}, {b:?})"),
            CValue::Set(s) => {
                write!(f, "{{")?;
                let mut first = true;
                for (v, k) in s.iter() {
                    if !first {
                        write!(f, ", ")?;
                    }
                    first = false;
                    if k.is_one() {
                        write!(f, "{v:?}")?;
                    } else {
                        write!(f, "{v:?}^{k:?}")?;
                    }
                }
                write!(f, "}}")
            }
            CValue::Tree(t) => write!(f, "{t}"),
        }
    }
}

impl<K: Semiring> fmt::Display for CValue<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_semiring::Nat;
    use axml_uxml::{leaf, tree};

    #[test]
    fn forest_roundtrip() {
        let f = Forest::from_pairs([
            (leaf::<Nat>("a"), Nat(2)),
            (tree("b", [(leaf("c"), Nat(1))]), Nat(3)),
        ]);
        let cv = CValue::from_forest(&f);
        assert_eq!(cv.to_forest().unwrap(), f);
    }

    #[test]
    fn to_forest_rejects_non_trees() {
        let s = CValue::<Nat>::Set(KSet::unit(CValue::label("x")));
        assert!(s.to_forest().is_none());
    }

    #[test]
    fn uxml_roundtrip() {
        let v = Value::Set(Forest::from_pairs([(leaf::<Nat>("a"), Nat(2))]));
        let cv = CValue::from_uxml(&v);
        assert_eq!(cv.to_uxml().unwrap(), v);
        let lv = Value::<Nat>::Label(Label::new("lbl"));
        assert_eq!(CValue::from_uxml(&lv).to_uxml().unwrap(), lv);
    }

    #[test]
    fn pairs_have_no_uxml_form() {
        let p = CValue::<Nat>::pair(CValue::label("a"), CValue::label("b"));
        assert!(p.to_uxml().is_none());
    }

    #[test]
    fn set_elements_merge_by_value() {
        let mut s = KSet::new();
        s.insert(CValue::<Nat>::label("a"), Nat(1));
        s.insert(CValue::<Nat>::label("a"), Nat(2));
        assert_eq!(s.get(&CValue::label("a")), Nat(3));
    }

    #[test]
    fn debug_format() {
        let s = CValue::<Nat>::Set(KSet::from_pairs([
            (CValue::label("a"), Nat(1)),
            (CValue::label("b"), Nat(2)),
        ]));
        assert_eq!(format!("{s:?}"), "{'a', 'b'^2}");
        let p = CValue::<Nat>::pair(CValue::label("x"), CValue::empty_set());
        assert_eq!(format!("{p:?}"), "('x', {})");
    }
}
