//! The equational theory of `NRC_K` (Prop 5 / Appendix A) as a
//! semantics-preserving rewriter.
//!
//! Appendix A shows `NRC_K` satisfies the semimodule axioms for
//! `∪`/`{}`/scalar multiplication and six axioms for the big-union
//! (monad + bilinearity). This module implements the subset of those
//! equations that are *directed* (left-to-right they strictly shrink or
//! simplify the term) as a normalizing rewriter, [`simplify`]:
//!
//! - `∪(x ∈ {}) S        → {}`                     (bind on zero)
//! - `∪(x ∈ {e}) S       → S[x := e]`              (left identity)
//! - `∪(x ∈ S) {x}       → S`                      (right identity)
//! - `∪(x ∈ ∪(y∈R) S) T  → ∪(y∈R) ∪(x∈S) T`        (associativity)
//! - `e ∪ {}             → e` (and symmetric)
//! - `1·e → e`, `0·e → {}`, `k₁·(k₂·e) → (k₁k₂)·e`
//! - `πᵢ(e₁,e₂) → eᵢ`, `tag(Tree(a,c)) → a`, `kids(Tree(a,c)) → c`
//! - `if l = l then e₁ else e₂ → e₁` (identical label constants; and
//!   `→ e₂` for distinct constants)
//! - `let x := e in b → b[x := e]` when `x` occurs at most once free
//!   in `b` or `e` is a variable/label
//!
//! The remaining axioms (bilinearity, commutation of independent
//! big-unions) are *not* used as rewrites (they can grow terms or loop)
//! but are verified semantically by the Prop-5 property tests here and
//! in `tests/theorems.rs`. Soundness of every rewrite is also
//! property-tested: `eval(e) == eval(simplify(e))`.

use crate::expr::Expr;
use axml_semiring::Semiring;

/// Exhaustively apply the directed axioms until fixpoint.
///
/// Terminates: every rule strictly decreases the multiset of
/// subterm sizes except associativity, which strictly decreases the
/// nesting depth of big-union *sources* (a standard termination
/// measure for monad-law normalization).
pub fn simplify<K: Semiring>(e: &Expr<K>) -> Expr<K> {
    let mut cur = e.clone();
    // Cap iterations defensively; each pass is a full bottom-up sweep.
    for _ in 0..64 {
        let next = pass(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
    cur
}

/// One bottom-up rewriting pass.
fn pass<K: Semiring>(e: &Expr<K>) -> Expr<K> {
    use crate::expr as x;
    // First rewrite children…
    let e = map_children(e, &|c| pass(c));
    // …then the root.
    match e {
        Expr::Union(a, b) => match (&*a, &*b) {
            (Expr::Empty { .. }, _) => *b,
            (_, Expr::Empty { .. }) => *a,
            _ => Expr::Union(a, b),
        },
        Expr::Scalar { k, body } => {
            if k.is_zero() {
                return match find_elem_type(&body) {
                    Some(t) => x::empty(t),
                    None => Expr::Scalar { k, body },
                };
            }
            if k.is_one() {
                return *body;
            }
            if let Expr::Scalar { k: k2, body: b2 } = *body {
                return Expr::Scalar {
                    k: k.times(&k2),
                    body: b2,
                };
            }
            if let Expr::Empty { elem } = &*body {
                return x::empty(elem.clone());
            }
            Expr::Scalar { k, body }
        }
        Expr::Proj1(inner) => match *inner {
            Expr::Pair(a, _) => *a,
            other => Expr::Proj1(Box::new(other)),
        },
        Expr::Proj2(inner) => match *inner {
            Expr::Pair(_, b) => *b,
            other => Expr::Proj2(Box::new(other)),
        },
        Expr::Tag(inner) => match *inner {
            Expr::Tree(a, _) => *a,
            other => Expr::Tag(Box::new(other)),
        },
        Expr::Kids(inner) => match *inner {
            Expr::Tree(_, c) => *c,
            other => Expr::Kids(Box::new(other)),
        },
        Expr::IfEq { l, r, then, els } => match (&*l, &*r) {
            (Expr::Label(a), Expr::Label(b)) => {
                if a == b {
                    *then
                } else {
                    *els
                }
            }
            _ => Expr::IfEq { l, r, then, els },
        },
        Expr::Let { var, def, body } => {
            let uses = count_uses(&body, &var);
            let cheap = matches!(&*def, Expr::Var(_) | Expr::Label(_));
            if uses == 0 || uses == 1 || cheap {
                body.subst(&var, &def)
            } else {
                Expr::Let { var, def, body }
            }
        }
        Expr::BigUnion { var, source, body } => {
            // ∪(x ∈ S) {x} → S (right identity) — checked first so it
            // also covers sources whose element type we cannot recover.
            if let Expr::Singleton(inner) = &*body {
                if matches!(&**inner, Expr::Var(v) if *v == var) {
                    return *source;
                }
            }
            match *source {
                // ∪(x ∈ {}) S → {} (at the body's element type)
                Expr::Empty { elem } => match find_elem_type(&body) {
                    Some(t) => x::empty(t),
                    None => Expr::BigUnion {
                        var,
                        source: Box::new(Expr::Empty { elem }),
                        body,
                    },
                },
                // ∪(x ∈ {e}) S → S[x := e]
                Expr::Singleton(elem) => body.subst(&var, &elem),
                // ∪(x ∈ ∪(y ∈ R) S) T → ∪(y ∈ R) ∪(x ∈ S) T
                Expr::BigUnion {
                    var: yvar,
                    source: r,
                    body: s,
                } => {
                    // avoid capture: if T mentions y, rename y first
                    let (yvar, s) = if body.free_vars().contains(&yvar) {
                        let fy = x::fresh_name(&yvar);
                        let s2 = s.subst(&yvar, &Expr::Var(fy.clone()));
                        (fy, Box::new(s2))
                    } else {
                        (yvar, s)
                    };
                    Expr::BigUnion {
                        var: yvar,
                        source: r,
                        body: Box::new(Expr::BigUnion {
                            var,
                            source: s,
                            body,
                        }),
                    }
                }
                other => Expr::BigUnion {
                    var,
                    source: Box::new(other),
                    body,
                },
            }
        }
        other => other,
    }
}

/// Rebuild a node with rewritten children.
fn map_children<K: Semiring, F: Fn(&Expr<K>) -> Expr<K>>(e: &Expr<K>, f: &F) -> Expr<K> {
    match e {
        Expr::Label(_) | Expr::Var(_) | Expr::Empty { .. } => e.clone(),
        Expr::Let { var, def, body } => Expr::Let {
            var: var.clone(),
            def: Box::new(f(def)),
            body: Box::new(f(body)),
        },
        Expr::Pair(a, b) => Expr::Pair(Box::new(f(a)), Box::new(f(b))),
        Expr::Proj1(a) => Expr::Proj1(Box::new(f(a))),
        Expr::Proj2(a) => Expr::Proj2(Box::new(f(a))),
        Expr::Singleton(a) => Expr::Singleton(Box::new(f(a))),
        Expr::Union(a, b) => Expr::Union(Box::new(f(a)), Box::new(f(b))),
        Expr::BigUnion { var, source, body } => Expr::BigUnion {
            var: var.clone(),
            source: Box::new(f(source)),
            body: Box::new(f(body)),
        },
        Expr::IfEq { l, r, then, els } => Expr::IfEq {
            l: Box::new(f(l)),
            r: Box::new(f(r)),
            then: Box::new(f(then)),
            els: Box::new(f(els)),
        },
        Expr::Scalar { k, body } => Expr::Scalar {
            k: k.clone(),
            body: Box::new(f(body)),
        },
        Expr::Tree(a, b) => Expr::Tree(Box::new(f(a)), Box::new(f(b))),
        Expr::Tag(a) => Expr::Tag(Box::new(f(a))),
        Expr::Kids(a) => Expr::Kids(Box::new(f(a))),
        Expr::Srt {
            label_var,
            acc_var,
            result,
            body,
            target,
        } => Expr::Srt {
            label_var: label_var.clone(),
            acc_var: acc_var.clone(),
            result: result.clone(),
            body: Box::new(f(body)),
            target: Box::new(f(target)),
        },
    }
}

/// Count free occurrences of `x` in `e`.
fn count_uses<K: Semiring>(e: &Expr<K>, x: &str) -> usize {
    match e {
        Expr::Var(y) => usize::from(y == x),
        Expr::Label(_) | Expr::Empty { .. } => 0,
        Expr::Let { var, def, body } => {
            count_uses(def, x) + if var == x { 0 } else { count_uses(body, x) }
        }
        Expr::Pair(a, b) | Expr::Union(a, b) | Expr::Tree(a, b) => {
            count_uses(a, x) + count_uses(b, x)
        }
        Expr::Proj1(a)
        | Expr::Proj2(a)
        | Expr::Singleton(a)
        | Expr::Tag(a)
        | Expr::Kids(a)
        | Expr::Scalar { body: a, .. } => count_uses(a, x),
        Expr::BigUnion { var, source, body } => {
            count_uses(source, x) + if var == x { 0 } else { count_uses(body, x) }
        }
        Expr::IfEq { l, r, then, els } => {
            count_uses(l, x) + count_uses(r, x) + count_uses(then, x) + count_uses(els, x)
        }
        Expr::Srt {
            label_var,
            acc_var,
            body,
            target,
            ..
        } => {
            count_uses(target, x)
                + if label_var == x || acc_var == x {
                    0
                } else {
                    count_uses(body, x)
                }
        }
    }
}

/// Best-effort recovery of the element type of a set-typed expression,
/// used when a rewrite must materialize an `Empty` node. Returns `None`
/// when the element type is not syntactically evident; in that case the
/// rewrite is skipped (soundness over completeness).
fn find_elem_type<K: Semiring>(e: &Expr<K>) -> Option<crate::types::Type> {
    use crate::types::Type;
    match e {
        Expr::Empty { elem } => Some(elem.clone()),
        Expr::Singleton(inner) => match &**inner {
            Expr::Label(_) => Some(Type::Label),
            Expr::Tree(..) => Some(Type::Tree),
            Expr::Pair(..) => None, // would need full typing
            _ => None,
        },
        Expr::Union(a, b) => find_elem_type(a).or_else(|| find_elem_type(b)),
        Expr::Scalar { body, .. } => find_elem_type(body),
        Expr::BigUnion { body, .. } => find_elem_type(body),
        Expr::Kids(_) => Some(Type::Tree),
        Expr::IfEq { then, els, .. } => find_elem_type(then).or_else(|| find_elem_type(els)),
        Expr::Let { body, .. } => find_elem_type(body),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, eval_closed, Env};
    use crate::expr::*;
    use crate::types::Type;
    use crate::value::CValue;
    use axml_semiring::Nat;

    type E = Expr<Nat>;

    fn assert_same_semantics(e: &E, env_pairs: &[(&str, CValue<Nat>)]) {
        let s = simplify(e);
        let mut env1 =
            Env::from_bindings(env_pairs.iter().map(|(n, v)| ((*n).to_owned(), v.clone())));
        let mut env2 = env1.clone();
        assert_eq!(
            eval(e, &mut env1).unwrap(),
            eval(&s, &mut env2).unwrap(),
            "simplify changed semantics: {e} vs {s}"
        );
    }

    #[test]
    fn left_identity() {
        // ∪(x ∈ {a}) {x,b} → {a,b}-shaped term
        let e: E = bigunion(
            "x",
            singleton(label("a")),
            union(singleton(var("x")), singleton(label("b"))),
        );
        let s = simplify(&e);
        assert_eq!(s, union(singleton(label("a")), singleton(label("b"))));
        assert_same_semantics(&e, &[]);
    }

    #[test]
    fn right_identity() {
        let e: E = bigunion("x", var("S"), singleton(var("x")));
        let s = simplify(&e);
        assert_eq!(s, var("S"));
        let sample = CValue::Set(axml_semiring::KSet::from_pairs([(
            CValue::label("a"),
            Nat(2),
        )]));
        assert_same_semantics(&e, &[("S", sample)]);
    }

    #[test]
    fn associativity_rotates() {
        // ∪(x ∈ ∪(y∈S) kids-ish) T normalizes to nested form
        let e: E = bigunion(
            "x",
            bigunion("y", var("R"), singleton(var("y"))),
            singleton(var("x")),
        );
        let s = simplify(&e);
        // fully collapses via identities to R
        assert_eq!(s, var("R"));
    }

    #[test]
    fn associativity_avoids_capture() {
        // T mentions y free: ∪(x ∈ ∪(y∈R) {y}) {(x, y)} — the outer y
        // is free and must not be captured when rotating.
        let e: E = bigunion(
            "x",
            bigunion("y", var("R"), singleton(var("y"))),
            singleton(pair(var("x"), var("y"))),
        );
        let s = simplify(&e);
        assert!(
            s.free_vars().contains("y"),
            "outer free y must survive: {s}"
        );
        let r = CValue::Set(axml_semiring::KSet::from_pairs([
            (CValue::label("a"), Nat(1)),
            (CValue::label("b"), Nat(3)),
        ]));
        assert_same_semantics(&e, &[("R", r), ("y", CValue::label("z"))]);
    }

    #[test]
    fn scalar_laws() {
        let e: E = scalar(Nat(1), var("S"));
        assert_eq!(simplify(&e), var("S"));
        let e2: E = scalar(Nat(2), scalar(Nat(3), singleton(label("a"))));
        assert_eq!(simplify(&e2), scalar(Nat(6), singleton(label("a"))));
        let e3: E = scalar(Nat(0), singleton(label("a")));
        assert_eq!(simplify(&e3), empty(Type::Label));
    }

    #[test]
    fn unit_union_collapses() {
        let e: E = union(empty_trees(), union(var("S"), empty_trees()));
        assert_eq!(simplify(&e), var("S"));
    }

    #[test]
    fn beta_rules() {
        let e: E = proj1(pair(label("a"), label("b")));
        assert_eq!(simplify(&e), label("a"));
        let e2: E = tag(tree_expr(label("a"), empty_trees()));
        assert_eq!(simplify(&e2), label("a"));
        let e3: E = kids(tree_expr(label("a"), var("C")));
        assert_eq!(simplify(&e3), var("C"));
    }

    #[test]
    fn static_conditionals() {
        let e: E = if_eq(label("a"), label("a"), var("T"), var("F"));
        assert_eq!(simplify(&e), var("T"));
        let e2: E = if_eq(label("a"), label("b"), var("T"), var("F"));
        assert_eq!(simplify(&e2), var("F"));
    }

    #[test]
    fn let_inlining() {
        let e: E = let_("x", label("a"), singleton(var("x")));
        assert_eq!(simplify(&e), singleton(label("a")));
        // multi-use of an expensive def is kept
        let e2: E = let_(
            "x",
            bigunion("y", var("R"), singleton(var("y"))),
            union(var("x"), var("x")),
        );
        // the def simplifies to R, which is cheap, so it inlines
        assert_eq!(simplify(&e2), union(var("R"), var("R")));
    }

    #[test]
    fn bind_on_empty_source() {
        let e: E = bigunion("x", empty_trees(), singleton(var("x")));
        assert_eq!(simplify(&e), empty(Type::Tree));
        assert_eq!(eval_closed(&simplify(&e)).unwrap(), CValue::empty_set());
    }

    #[test]
    fn simplify_is_idempotent() {
        let exprs: Vec<E> = vec![
            bigunion(
                "x",
                bigunion("y", var("R"), kids(var("y"))),
                singleton(var("x")),
            ),
            scalar(Nat(2), union(empty_trees(), var("S"))),
            let_(
                "a",
                label("l"),
                if_eq(var("a"), label("l"), var("T"), var("F")),
            ),
        ];
        for e in exprs {
            let once = simplify(&e);
            let twice = simplify(&once);
            assert_eq!(once, twice, "not idempotent on {e}");
        }
    }
}
