//! The expression language of `NRC_K + srt` (§6.1), with builders,
//! capture-avoiding substitution, and a calculus-style printer.

use crate::types::Type;
use axml_semiring::Semiring;
use axml_uxml::Label;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Variable names in NRC expressions.
pub type Name = String;

/// An `NRC_K + srt` expression.
///
/// Use the builder functions ([`label`], [`var`], [`bigunion`], …) for
/// readable construction; boxes are managed internally.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr<K: Semiring> {
    /// A label constant `l`.
    Label(Label),
    /// A variable `x`.
    Var(Name),
    /// `let x := e₁ in e₂` (definable sugar at set type; primitive here
    /// for all types — harmless and convenient for compilation).
    Let {
        /// Bound variable.
        var: Name,
        /// Definition.
        def: Box<Expr<K>>,
        /// Body.
        body: Box<Expr<K>>,
    },
    /// Pairing `(e₁, e₂)`.
    Pair(Box<Expr<K>>, Box<Expr<K>>),
    /// First projection `π₁ e`.
    Proj1(Box<Expr<K>>),
    /// Second projection `π₂ e`.
    Proj2(Box<Expr<K>>),
    /// The empty collection `{}` at element type `elem`.
    ///
    /// The element type is carried explicitly so typechecking stays
    /// syntax-directed (no unification needed).
    Empty {
        /// Element type of the empty collection.
        elem: Type,
    },
    /// Singleton `{e}` — annotation `1`.
    Singleton(Box<Expr<K>>),
    /// Union `e₁ ∪ e₂` — pointwise annotation addition.
    Union(Box<Expr<K>>, Box<Expr<K>>),
    /// Big-union `∪(x ∈ source) body`.
    BigUnion {
        /// Bound variable.
        var: Name,
        /// The collection iterated over.
        source: Box<Expr<K>>,
        /// The body (a collection expression).
        body: Box<Expr<K>>,
    },
    /// Positive conditional `if l = r then e₁ else e₂` — `l`, `r` are
    /// **label**-typed (the positivity restriction of §6.1).
    IfEq {
        /// Left label.
        l: Box<Expr<K>>,
        /// Right label.
        r: Box<Expr<K>>,
        /// Taken when equal.
        then: Box<Expr<K>>,
        /// Taken when different.
        els: Box<Expr<K>>,
    },
    /// Scalar annotation `k e` (multiplies every annotation in the
    /// collection `e` by `k`; §6.2).
    Scalar {
        /// The scalar.
        k: K,
        /// The collection.
        body: Box<Expr<K>>,
    },
    /// Tree constructor `Tree(e₁, e₂)` — label and child set.
    Tree(Box<Expr<K>>, Box<Expr<K>>),
    /// Root label observer `tag(e)`.
    Tag(Box<Expr<K>>),
    /// Children observer `kids(e)`.
    Kids(Box<Expr<K>>),
    /// Structural recursion `(srt(x, y). body) target` (§6.1/Fig 8).
    ///
    /// The result type `t` is annotated explicitly (as with
    /// [`Expr::Empty`]) so typechecking stays syntax-directed: the rule
    /// is `Γ, x:label, y:{t} ⊢ body : t` and the whole expression has
    /// type `t`.
    Srt {
        /// Variable bound to the current node's label.
        label_var: Name,
        /// Variable bound to the K-set of recursive results.
        acc_var: Name,
        /// The declared result type `t`.
        result: Type,
        /// The recursion body.
        body: Box<Expr<K>>,
        /// The tree to recurse over.
        target: Box<Expr<K>>,
    },
}

// ---------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------

/// A label constant.
pub fn label<K: Semiring>(name: &str) -> Expr<K> {
    Expr::Label(Label::new(name))
}

/// A variable reference.
pub fn var<K: Semiring>(name: &str) -> Expr<K> {
    Expr::Var(name.to_owned())
}

/// `let x := def in body`.
pub fn let_<K: Semiring>(x: &str, def: Expr<K>, body: Expr<K>) -> Expr<K> {
    Expr::Let {
        var: x.to_owned(),
        def: Box::new(def),
        body: Box::new(body),
    }
}

/// Pairing.
pub fn pair<K: Semiring>(a: Expr<K>, b: Expr<K>) -> Expr<K> {
    Expr::Pair(Box::new(a), Box::new(b))
}

/// First projection.
pub fn proj1<K: Semiring>(e: Expr<K>) -> Expr<K> {
    Expr::Proj1(Box::new(e))
}

/// Second projection.
pub fn proj2<K: Semiring>(e: Expr<K>) -> Expr<K> {
    Expr::Proj2(Box::new(e))
}

/// The empty collection at element type `elem`.
pub fn empty<K: Semiring>(elem: Type) -> Expr<K> {
    Expr::Empty { elem }
}

/// The empty `{tree}` collection (the UXQuery `()`).
pub fn empty_trees<K: Semiring>() -> Expr<K> {
    empty(Type::Tree)
}

/// Singleton `{e}`.
pub fn singleton<K: Semiring>(e: Expr<K>) -> Expr<K> {
    Expr::Singleton(Box::new(e))
}

/// Union `a ∪ b`.
pub fn union<K: Semiring>(a: Expr<K>, b: Expr<K>) -> Expr<K> {
    Expr::Union(Box::new(a), Box::new(b))
}

/// Big-union `∪(x ∈ source) body`.
pub fn bigunion<K: Semiring>(x: &str, source: Expr<K>, body: Expr<K>) -> Expr<K> {
    Expr::BigUnion {
        var: x.to_owned(),
        source: Box::new(source),
        body: Box::new(body),
    }
}

/// Conditional `if l = r then t else e`.
pub fn if_eq<K: Semiring>(l: Expr<K>, r: Expr<K>, then: Expr<K>, els: Expr<K>) -> Expr<K> {
    Expr::IfEq {
        l: Box::new(l),
        r: Box::new(r),
        then: Box::new(then),
        els: Box::new(els),
    }
}

/// Scalar annotation `k e`.
pub fn scalar<K: Semiring>(k: K, body: Expr<K>) -> Expr<K> {
    Expr::Scalar {
        k,
        body: Box::new(body),
    }
}

/// Tree constructor.
pub fn tree_expr<K: Semiring>(lab: Expr<K>, kids: Expr<K>) -> Expr<K> {
    Expr::Tree(Box::new(lab), Box::new(kids))
}

/// `tag(e)`.
pub fn tag<K: Semiring>(e: Expr<K>) -> Expr<K> {
    Expr::Tag(Box::new(e))
}

/// `kids(e)`.
pub fn kids<K: Semiring>(e: Expr<K>) -> Expr<K> {
    Expr::Kids(Box::new(e))
}

/// Structural recursion `(srt(x, y). body) target` with declared
/// result type `t` (see [`Expr::Srt`]).
pub fn srt<K: Semiring>(x: &str, y: &str, result: Type, body: Expr<K>, target: Expr<K>) -> Expr<K> {
    Expr::Srt {
        label_var: x.to_owned(),
        acc_var: y.to_owned(),
        result,
        body: Box::new(body),
        target: Box::new(target),
    }
}

/// `flatten W ≜ ∪(w ∈ W) w` (§6.1).
pub fn flatten<K: Semiring>(w: Expr<K>) -> Expr<K> {
    let fresh = fresh_name("w");
    bigunion(&fresh, w, var(&fresh))
}

// ---------------------------------------------------------------------
// Free variables & substitution
// ---------------------------------------------------------------------

/// Generate a fresh variable name (process-unique) with a hint prefix.
pub fn fresh_name(hint: &str) -> Name {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{hint}%{n}")
}

impl<K: Semiring> Expr<K> {
    /// The free variables of this expression.
    pub fn free_vars(&self) -> BTreeSet<Name> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut Vec<Name>, out: &mut BTreeSet<Name>) {
        match self {
            Expr::Label(_) | Expr::Empty { .. } => {}
            Expr::Var(x) => {
                if !bound.iter().any(|b| b == x) {
                    out.insert(x.clone());
                }
            }
            Expr::Let { var, def, body } => {
                def.collect_free(bound, out);
                bound.push(var.clone());
                body.collect_free(bound, out);
                bound.pop();
            }
            Expr::Pair(a, b) | Expr::Union(a, b) | Expr::Tree(a, b) => {
                a.collect_free(bound, out);
                b.collect_free(bound, out);
            }
            Expr::Proj1(e)
            | Expr::Proj2(e)
            | Expr::Singleton(e)
            | Expr::Tag(e)
            | Expr::Kids(e)
            | Expr::Scalar { body: e, .. } => e.collect_free(bound, out),
            Expr::BigUnion { var, source, body } => {
                source.collect_free(bound, out);
                bound.push(var.clone());
                body.collect_free(bound, out);
                bound.pop();
            }
            Expr::IfEq { l, r, then, els } => {
                l.collect_free(bound, out);
                r.collect_free(bound, out);
                then.collect_free(bound, out);
                els.collect_free(bound, out);
            }
            Expr::Srt {
                label_var,
                acc_var,
                body,
                target,
                ..
            } => {
                target.collect_free(bound, out);
                bound.push(label_var.clone());
                bound.push(acc_var.clone());
                body.collect_free(bound, out);
                bound.pop();
                bound.pop();
            }
        }
    }

    /// Capture-avoiding substitution `self[x := e]`.
    pub fn subst(&self, x: &str, e: &Expr<K>) -> Expr<K> {
        match self {
            Expr::Label(_) | Expr::Empty { .. } => self.clone(),
            Expr::Var(y) => {
                if y == x {
                    e.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Let { var, def, body } => {
                let def2 = def.subst(x, e);
                if var == x {
                    Expr::Let {
                        var: var.clone(),
                        def: Box::new(def2),
                        body: body.clone(),
                    }
                } else if e.free_vars().contains(var) {
                    let fresh = fresh_name(var);
                    let body2 = body.subst(var, &Expr::Var(fresh.clone()));
                    Expr::Let {
                        var: fresh,
                        def: Box::new(def2),
                        body: Box::new(body2.subst(x, e)),
                    }
                } else {
                    Expr::Let {
                        var: var.clone(),
                        def: Box::new(def2),
                        body: Box::new(body.subst(x, e)),
                    }
                }
            }
            Expr::Pair(a, b) => pair(a.subst(x, e), b.subst(x, e)),
            Expr::Proj1(a) => proj1(a.subst(x, e)),
            Expr::Proj2(a) => proj2(a.subst(x, e)),
            Expr::Singleton(a) => singleton(a.subst(x, e)),
            Expr::Union(a, b) => union(a.subst(x, e), b.subst(x, e)),
            Expr::BigUnion { var, source, body } => {
                let source2 = source.subst(x, e);
                if var == x {
                    Expr::BigUnion {
                        var: var.clone(),
                        source: Box::new(source2),
                        body: body.clone(),
                    }
                } else if e.free_vars().contains(var) {
                    let fresh = fresh_name(var);
                    let body2 = body.subst(var, &Expr::Var(fresh.clone()));
                    Expr::BigUnion {
                        var: fresh,
                        source: Box::new(source2),
                        body: Box::new(body2.subst(x, e)),
                    }
                } else {
                    Expr::BigUnion {
                        var: var.clone(),
                        source: Box::new(source2),
                        body: Box::new(body.subst(x, e)),
                    }
                }
            }
            Expr::IfEq { l, r, then, els } => if_eq(
                l.subst(x, e),
                r.subst(x, e),
                then.subst(x, e),
                els.subst(x, e),
            ),
            Expr::Scalar { k, body } => scalar(k.clone(), body.subst(x, e)),
            Expr::Tree(a, b) => tree_expr(a.subst(x, e), b.subst(x, e)),
            Expr::Tag(a) => tag(a.subst(x, e)),
            Expr::Kids(a) => kids(a.subst(x, e)),
            Expr::Srt {
                label_var,
                acc_var,
                result,
                body,
                target,
            } => {
                let target2 = target.subst(x, e);
                if label_var == x || acc_var == x {
                    Expr::Srt {
                        label_var: label_var.clone(),
                        acc_var: acc_var.clone(),
                        result: result.clone(),
                        body: body.clone(),
                        target: Box::new(target2),
                    }
                } else {
                    let efv = e.free_vars();
                    let (lv, av, body) = if efv.contains(label_var) || efv.contains(acc_var) {
                        let lv = fresh_name(label_var);
                        let av = fresh_name(acc_var);
                        let b = body
                            .subst(label_var, &Expr::Var(lv.clone()))
                            .subst(acc_var, &Expr::Var(av.clone()));
                        (lv, av, b)
                    } else {
                        (label_var.clone(), acc_var.clone(), (**body).clone())
                    };
                    Expr::Srt {
                        label_var: lv,
                        acc_var: av,
                        result: result.clone(),
                        body: Box::new(body.subst(x, e)),
                        target: Box::new(target2),
                    }
                }
            }
        }
    }

    /// Node count of the expression — the `|p|` of Prop 2's bound.
    pub fn size(&self) -> usize {
        match self {
            Expr::Label(_) | Expr::Var(_) | Expr::Empty { .. } => 1,
            Expr::Let { def, body, .. } => 1 + def.size() + body.size(),
            Expr::Pair(a, b) | Expr::Union(a, b) | Expr::Tree(a, b) => 1 + a.size() + b.size(),
            Expr::Proj1(e)
            | Expr::Proj2(e)
            | Expr::Singleton(e)
            | Expr::Tag(e)
            | Expr::Kids(e)
            | Expr::Scalar { body: e, .. } => 1 + e.size(),
            Expr::BigUnion { source, body, .. } => 1 + source.size() + body.size(),
            Expr::IfEq { l, r, then, els } => 1 + l.size() + r.size() + then.size() + els.size(),
            Expr::Srt { body, target, .. } => 1 + body.size() + target.size(),
        }
    }
}

impl<K: Semiring> fmt::Display for Expr<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Label(l) => write!(f, "'{l}'"),
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Let { var, def, body } => {
                write!(f, "let {var} := {def} in {body}")
            }
            Expr::Pair(a, b) => write!(f, "({a}, {b})"),
            Expr::Proj1(e) => write!(f, "π1({e})"),
            Expr::Proj2(e) => write!(f, "π2({e})"),
            Expr::Empty { elem } => write!(f, "{{}}:{elem}"),
            Expr::Singleton(e) => write!(f, "{{{e}}}"),
            Expr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            Expr::BigUnion { var, source, body } => {
                write!(f, "∪({var} ∈ {source}) {body}")
            }
            Expr::IfEq { l, r, then, els } => {
                write!(f, "if {l} = {r} then {then} else {els}")
            }
            Expr::Scalar { k, body } => write!(f, "scalar{{{k:?}}} {body}"),
            Expr::Tree(a, b) => write!(f, "Tree({a}, {b})"),
            Expr::Tag(e) => write!(f, "tag({e})"),
            Expr::Kids(e) => write!(f, "kids({e})"),
            Expr::Srt {
                label_var,
                acc_var,
                result,
                body,
                target,
            } => write!(f, "(srt({label_var}, {acc_var}):{result}. {body}) {target}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_semiring::Nat;

    type E = Expr<Nat>;

    #[test]
    fn free_vars_respect_binders() {
        let e: E = bigunion("x", var("R"), singleton(pair(var("x"), var("y"))));
        let fv = e.free_vars();
        assert!(fv.contains("R"));
        assert!(fv.contains("y"));
        assert!(!fv.contains("x"));
    }

    #[test]
    fn let_binds_only_in_body() {
        let e: E = let_("x", var("x"), var("x"));
        assert_eq!(e.free_vars(), BTreeSet::from(["x".to_owned()]));
    }

    #[test]
    fn srt_binds_two_vars() {
        let e: E = srt(
            "b",
            "s",
            Type::pair_of(Type::Label, Type::Label.set_of().set_of()),
            pair(var("b"), var("s")),
            var("t"),
        );
        assert_eq!(e.free_vars(), BTreeSet::from(["t".to_owned()]));
    }

    #[test]
    fn subst_basic() {
        let e: E = singleton(var("x"));
        let r = e.subst("x", &label("a"));
        assert_eq!(r, singleton(label("a")));
    }

    #[test]
    fn subst_shadowing_stops() {
        let e: E = bigunion("x", var("x"), singleton(var("x")));
        // outer free x in source replaced; bound body occurrence kept
        let r = e.subst("x", &var("R"));
        match r {
            Expr::BigUnion {
                var: v,
                source,
                body,
            } => {
                assert_eq!(*source, Expr::Var("R".into()));
                assert_eq!(*body, singleton(Expr::Var(v)));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn subst_avoids_capture() {
        // (∪(y ∈ R) {x})[x := y]  must NOT capture y
        let e: E = bigunion("y", var("R"), singleton(var("x")));
        let r = e.subst("x", &var("y"));
        match &r {
            Expr::BigUnion { var: v, body, .. } => {
                assert_ne!(v, "y", "binder must be renamed");
                assert_eq!(**body, singleton::<Nat>(var("y")));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn size_counts_nodes() {
        let e: E = union(singleton(label("a")), empty_trees());
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn display_is_calculus_style() {
        let e: E = bigunion("x", var("R"), singleton(var("x")));
        assert_eq!(e.to_string(), "∪(x ∈ R) {x}");
        let e2: E = if_eq(
            tag(var("t")),
            label("a"),
            singleton(var("t")),
            empty_trees(),
        );
        assert_eq!(e2.to_string(), "if tag(t) = 'a' then {t} else {}:tree");
    }

    #[test]
    fn fresh_names_are_unique() {
        let a = fresh_name("x");
        let b = fresh_name("x");
        assert_ne!(a, b);
    }
}
