//! `NRC_K + srt`: the positive Nested Relational Calculus over
//! semiring-annotated complex values, extended with a recursive tree
//! type and structural recursion (§6 of Foster, Green & Tannen,
//! PODS 2008).
//!
//! This calculus is the semantic target of K-UXQuery: `axml-core`
//! compiles queries into [`Expr`]s which are evaluated here over
//! [`CValue`]s (K-complex values). It is also of independent interest —
//! the paper notes NRC is used by itself in various contexts.
//!
//! # The calculus
//!
//! Types: `label | t × t | {t} | tree` ([`Type`]).
//!
//! Expressions ([`Expr`]): labels, variables, pairing/projections, the
//! set constructors `{}` / `{e}` / `e ∪ e`, the **big-union**
//! `∪(x ∈ e₁) e₂`, positive conditionals on labels, scalar annotation
//! `k e`, the tree constructor `Tree(e₁, e₂)` with observers `tag`/
//! `kids`, and structural recursion `(srt(x, y). e₁) e₂` obeying
//! Equation (1) of the paper:
//!
//! ```text
//! (srt(x,y).e₁) Tree(e₂,e₃) = e₁[x := e₂, y := ∪(z ∈ e₃) {(srt(x,y).e₁) z}]
//! ```
//!
//! # Semantics (Fig 8)
//!
//! `[[{t}]]_K` is the free K-semimodule ([`axml_semiring::KSet`]); the
//! big-union is its monadic bind, multiplying inner annotations by the
//! annotation of the bound element. See [`eval()`].
//!
//! # Theorems carried by this crate
//!
//! - **Theorem 1** (commutation with homomorphisms): [`hom`] lifts any
//!   semiring homomorphism over expressions and values; the property
//!   `H(e(v)) = H(e)(H(v))` is tested in this crate and at workspace
//!   level.
//! - **Prop 5** (equational axioms): [`axioms`] implements the
//!   Appendix-A equations as a semantics-preserving rewriter.
//! - **Prop 4** (agreement with RA⁺ on K-relations): [`ra`] gives the
//!   standard NRC encoding of the positive relational algebra.
//!
//! # Performance
//!
//! Two evaluators implement the Fig 8 semantics:
//!
//! - [`eval()`] — the tree-walking **interpreter**, kept as the
//!   differential reference. It re-walks the [`Expr`] per call and
//!   probes the environment by (interned) name.
//! - [`compile::CompiledExpr`] — the **compile-once execution plan**
//!   behind `Route::ViaNrc` in the `axml` facade. Lowering resolves
//!   every variable occurrence to a numeric frame slot (de
//!   Bruijn-style, once), so the runtime environment is a flat `Vec`
//!   read by index; the compiler-output shapes that dominate query
//!   terms are fused into single ops with pre-resolved interned
//!   label tests (`∪(x ∈ e) if tag(x) = l then {x} else {}` →
//!   `filter-label`, `∪(x ∈ e) kids(x)` → `kids-flat`, the §6.3
//!   descendant `srt` term → one annotation-product sweep); and both
//!   generic `srt` and the fused sweep are driven bottom-up on an
//!   explicit stack, so arbitrarily deep documents cost heap, not
//!   Rust stack.
//!
//! On the `semantics_route` benchmark (`//c` over a depth-6 binary
//! document, ℕ) the compiled plan evaluates in ~8µs against ~150µs
//! for the interpreter — within ~1.3× of the direct K-UXML
//! evaluator, where the interpreted route had been ~20× slower.
//! Compiled and interpreted evaluation are property-tested to agree
//! (`tests/compiled_vs_interpreted.rs`), including identical error
//! messages on ill-typed values, and the facade's
//! `Route::Differential` cross-checks them on every eligible query.
//!
//! The interpreter itself allocates no `String` per binding: [`Env`]
//! interns variable names into a process-global pool (the same shape
//! `Label` and provenance `Var`s use), so `push` in big-union/`srt`
//! loops is allocation-free after first sight of a name.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axioms;
pub mod compile;
pub mod eval;
pub mod expr;
pub mod hom;
pub mod parse;
pub mod ra;
pub mod typecheck;
pub mod types;
pub mod value;

pub use compile::CompiledExpr;
pub use eval::{eval, eval_closed, Env, EvalError};
pub use expr::Expr;
pub use parse::{parse_expr, parse_type};
pub use typecheck::{typecheck, typecheck_closed, TypeContext, TypeError};
pub use types::Type;
pub use value::CValue;
