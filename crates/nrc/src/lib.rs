//! `NRC_K + srt`: the positive Nested Relational Calculus over
//! semiring-annotated complex values, extended with a recursive tree
//! type and structural recursion (§6 of Foster, Green & Tannen,
//! PODS 2008).
//!
//! This calculus is the semantic target of K-UXQuery: `axml-core`
//! compiles queries into [`Expr`]s which are evaluated here over
//! [`CValue`]s (K-complex values). It is also of independent interest —
//! the paper notes NRC is used by itself in various contexts.
//!
//! # The calculus
//!
//! Types: `label | t × t | {t} | tree` ([`Type`]).
//!
//! Expressions ([`Expr`]): labels, variables, pairing/projections, the
//! set constructors `{}` / `{e}` / `e ∪ e`, the **big-union**
//! `∪(x ∈ e₁) e₂`, positive conditionals on labels, scalar annotation
//! `k e`, the tree constructor `Tree(e₁, e₂)` with observers `tag`/
//! `kids`, and structural recursion `(srt(x, y). e₁) e₂` obeying
//! Equation (1) of the paper:
//!
//! ```text
//! (srt(x,y).e₁) Tree(e₂,e₃) = e₁[x := e₂, y := ∪(z ∈ e₃) {(srt(x,y).e₁) z}]
//! ```
//!
//! # Semantics (Fig 8)
//!
//! `[[{t}]]_K` is the free K-semimodule ([`axml_semiring::KSet`]); the
//! big-union is its monadic bind, multiplying inner annotations by the
//! annotation of the bound element. See [`eval()`].
//!
//! # Theorems carried by this crate
//!
//! - **Theorem 1** (commutation with homomorphisms): [`hom`] lifts any
//!   semiring homomorphism over expressions and values; the property
//!   `H(e(v)) = H(e)(H(v))` is tested in this crate and at workspace
//!   level.
//! - **Prop 5** (equational axioms): [`axioms`] implements the
//!   Appendix-A equations as a semantics-preserving rewriter.
//! - **Prop 4** (agreement with RA⁺ on K-relations): [`ra`] gives the
//!   standard NRC encoding of the positive relational algebra.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axioms;
pub mod eval;
pub mod expr;
pub mod hom;
pub mod parse;
pub mod ra;
pub mod typecheck;
pub mod types;
pub mod value;

pub use eval::{eval, eval_closed, Env, EvalError};
pub use expr::Expr;
pub use parse::{parse_expr, parse_type};
pub use typecheck::{typecheck, typecheck_closed, TypeContext, TypeError};
pub use types::Type;
pub use value::CValue;
