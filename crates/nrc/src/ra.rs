//! `NRC(RA⁺)`: the standard encoding of the positive relational algebra
//! in positive NRC (Prop 4).
//!
//! A K-relation of arity `n` is encoded as a K-collection of
//! right-nested pairs of labels: `(c₁, (c₂, … (cₙ₋₁, cₙ)…))` (a single
//! column is just a label). The RA⁺ operators become NRC expressions:
//!
//! - projection: `∪(x ∈ R) {⟨cols⟩(x)}` (the paper's
//!   `project₁ R ≜ ∪(x ∈ R) {π₁ x}`)
//! - selection:  `∪(x ∈ R) if … then {x} else {}`
//! - product:    `∪(x ∈ R) ∪(y ∈ S) {merge(x, y)}`
//! - union:      `R ∪ S`
//!
//! Prop 4 — that evaluating these NRC expressions over encoded
//! K-relations coincides with the RA⁺-on-K-relations semantics of
//! Green et al. \[16\] — is verified against `axml-relational`'s algebra
//! in the workspace integration tests.

use crate::expr::{self, Expr};
use crate::value::CValue;
use axml_semiring::{KSet, Semiring};

/// Encode one tuple of labels as a right-nested pair value.
pub fn encode_tuple<K: Semiring>(cols: &[&str]) -> CValue<K> {
    assert!(!cols.is_empty(), "tuples must have at least one column");
    let mut it = cols.iter().rev();
    let mut acc = CValue::label(it.next().expect("nonempty"));
    for c in it {
        acc = CValue::pair(CValue::label(c), acc);
    }
    acc
}

/// Encode a K-relation (rows with annotations) as a K-collection value.
pub fn encode_relation<K: Semiring>(rows: &[(Vec<&str>, K)]) -> CValue<K> {
    let mut set = KSet::new();
    for (cols, k) in rows {
        set.insert(encode_tuple(cols), k.clone());
    }
    CValue::Set(set)
}

/// Decode a K-collection value back to rows of labels (for test
/// comparisons). Returns `None` on non-conforming shapes.
pub fn decode_relation<K: Semiring>(v: &CValue<K>, arity: usize) -> Option<Vec<(Vec<String>, K)>> {
    let s = v.as_set()?;
    let mut out = Vec::with_capacity(s.support_len());
    for (item, k) in s.iter() {
        out.push((decode_tuple(item, arity)?, k.clone()));
    }
    Some(out)
}

fn decode_tuple<K: Semiring>(v: &CValue<K>, arity: usize) -> Option<Vec<String>> {
    let mut cols = Vec::with_capacity(arity);
    let mut cur = v;
    for i in 0..arity {
        if i + 1 == arity {
            cols.push(cur.as_label()?.name().to_owned());
        } else {
            match cur {
                CValue::Pair(a, b) => {
                    cols.push(a.as_label()?.name().to_owned());
                    cur = b;
                }
                _ => return None,
            }
        }
    }
    Some(cols)
}

/// Expression accessing column `i` of an `arity`-column tuple `x`.
pub fn col<K: Semiring>(x: Expr<K>, i: usize, arity: usize) -> Expr<K> {
    assert!(i < arity, "column {i} out of range for arity {arity}");
    let mut e = x;
    for _ in 0..i {
        e = expr::proj2(e);
    }
    if i + 1 < arity {
        e = expr::proj1(e);
    }
    e
}

/// Expression building an output tuple from column expressions.
pub fn tuple_of<K: Semiring>(cols: Vec<Expr<K>>) -> Expr<K> {
    assert!(!cols.is_empty());
    let mut it = cols.into_iter().rev();
    let mut acc = it.next().expect("nonempty");
    for c in it {
        acc = expr::pair(c, acc);
    }
    acc
}

/// `π_cols(R)`: projection onto the given column indices (in order).
pub fn project<K: Semiring>(r: Expr<K>, cols_idx: &[usize], arity: usize) -> Expr<K> {
    let x = expr::fresh_name("x");
    let outs = cols_idx
        .iter()
        .map(|&i| col(expr::var(&x), i, arity))
        .collect();
    expr::bigunion(&x, r, expr::singleton(tuple_of(outs)))
}

/// A selection predicate: column equals a constant label, or two
/// columns are equal.
#[derive(Clone, Debug)]
pub enum Pred {
    /// `col = 'label'`
    EqConst(usize, String),
    /// `colᵢ = colⱼ`
    EqCols(usize, usize),
}

/// `σ_pred(R)`: selection.
pub fn select<K: Semiring>(r: Expr<K>, pred: &Pred, arity: usize) -> Expr<K> {
    let x = expr::fresh_name("x");
    let (l, rhs) = match pred {
        Pred::EqConst(i, name) => (col(expr::var(&x), *i, arity), expr::label(name)),
        Pred::EqCols(i, j) => (col(expr::var(&x), *i, arity), col(expr::var(&x), *j, arity)),
    };
    // NB: the `{}` in the else-branch is label-tuple-typed; we use the
    // tuple type's emptiness by building Empty with a best-effort elem
    // type. For the well-typed encodings produced in this module the
    // singleton branch fixes the type, and our checker requires both
    // branches to agree — so we thread the proper element type through.
    let elem_ty = tuple_type(arity);
    expr::bigunion(
        &x,
        r,
        expr::if_eq(l, rhs, expr::singleton(expr::var(&x)), expr::empty(elem_ty)),
    )
}

/// `R × S`: cartesian product (tuples concatenate).
pub fn product<K: Semiring>(r: Expr<K>, arity_r: usize, s: Expr<K>, arity_s: usize) -> Expr<K> {
    let x = expr::fresh_name("x");
    let y = expr::fresh_name("y");
    let mut cols_out = Vec::with_capacity(arity_r + arity_s);
    for i in 0..arity_r {
        cols_out.push(col(expr::var(&x), i, arity_r));
    }
    for j in 0..arity_s {
        cols_out.push(col(expr::var(&y), j, arity_s));
    }
    expr::bigunion(
        &x,
        r,
        expr::bigunion(&y, s, expr::singleton(tuple_of(cols_out))),
    )
}

/// `R ∪ S` (same arity).
pub fn union<K: Semiring>(r: Expr<K>, s: Expr<K>) -> Expr<K> {
    expr::union(r, s)
}

/// The NRC type of an `arity`-column tuple.
pub fn tuple_type(arity: usize) -> crate::types::Type {
    use crate::types::Type;
    assert!(arity >= 1);
    let mut t = Type::Label;
    for _ in 1..arity {
        t = Type::pair_of(Type::Label, t);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Env};
    use crate::typecheck::{typecheck, TypeContext};
    use axml_semiring::{Nat, NatPoly};

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    fn eval_rel<K: Semiring>(e: &Expr<K>, rels: &[(&str, CValue<K>)]) -> CValue<K> {
        let mut env = Env::from_bindings(rels.iter().map(|(n, v)| ((*n).to_owned(), v.clone())));
        eval(e, &mut env).expect("well-typed RA encoding evaluates")
    }

    #[test]
    fn tuple_roundtrip() {
        let t = encode_tuple::<Nat>(&["a", "b", "c"]);
        assert_eq!(
            decode_tuple(&t, 3).unwrap(),
            vec!["a".to_owned(), "b".into(), "c".into()]
        );
        let single = encode_tuple::<Nat>(&["only"]);
        assert_eq!(decode_tuple(&single, 1).unwrap(), vec!["only".to_owned()]);
    }

    #[test]
    fn col_accessors_typecheck() {
        let mut ctx = TypeContext::from_bindings([("R".to_owned(), tuple_type(3).set_of())]);
        for i in 0..3 {
            let e: Expr<Nat> = project(expr::var("R"), &[i], 3);
            assert!(
                typecheck(&e, &mut ctx).is_ok(),
                "projection onto col {i} must typecheck"
            );
        }
    }

    #[test]
    fn fig5_query_via_nrc_encoding() {
        // Q = π_AC(π_AB(R) ⋈ (π_BC(R) ∪ S)) over the Fig 5 K-relations.
        // Join on B implemented as product + select + project.
        let r = encode_relation::<NatPoly>(&[
            (vec!["a", "b", "c"], np("x1")),
            (vec!["d", "b", "e"], np("x2")),
            (vec!["f", "g", "e"], np("x3")),
        ]);
        let s =
            encode_relation::<NatPoly>(&[(vec!["b", "c"], np("x4")), (vec!["g", "c"], np("x5"))]);

        let pi_ab = project(expr::var("R"), &[0, 1], 3); // (A,B)
        let pi_bc = project(expr::var("R"), &[1, 2], 3); // (B,C)
        let right = union(pi_bc, expr::var("S")); // (B,C)
        let prod = product(pi_ab, 2, right, 2); // (A,B,B',C)
        let joined = select(prod, &Pred::EqCols(1, 2), 4);
        let q = project(joined, &[0, 3], 4); // (A,C)

        let out = eval_rel(&q, &[("R", r), ("S", s)]);
        let rows = decode_relation(&out, 2).unwrap();
        let get = |a: &str, c: &str| {
            rows.iter()
                .find(|(cols, _)| cols[0] == a && cols[1] == c)
                .map(|(_, k)| k.clone())
                .unwrap_or_else(NatPoly::zero)
        };
        assert_eq!(get("a", "c"), np("x1^2 + x1*x4"));
        assert_eq!(get("a", "e"), np("x1*x2"));
        assert_eq!(get("d", "c"), np("x1*x2 + x2*x4"));
        assert_eq!(get("d", "e"), np("x2^2"));
        assert_eq!(get("f", "c"), np("x3*x5"));
        assert_eq!(get("f", "e"), np("x3^2"));
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn select_const_filters_with_annotations() {
        let r = encode_relation::<Nat>(&[(vec!["a", "x"], Nat(2)), (vec!["b", "x"], Nat(3))]);
        let q = select(expr::var("R"), &Pred::EqConst(0, "a".into()), 2);
        let out = eval_rel(&q, &[("R", r)]);
        let rows = decode_relation(&out, 2).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, vec!["a".to_owned(), "x".into()]);
        assert_eq!(rows[0].1, Nat(2));
    }

    #[test]
    fn union_adds_annotations() {
        let r1 = encode_relation::<Nat>(&[(vec!["t"], Nat(2))]);
        let r2 = encode_relation::<Nat>(&[(vec!["t"], Nat(3))]);
        let q = union::<Nat>(expr::var("R1"), expr::var("R2"));
        let out = eval_rel(&q, &[("R1", r1), ("R2", r2)]);
        let rows = decode_relation(&out, 1).unwrap();
        assert_eq!(rows, vec![(vec!["t".to_owned()], Nat(5))]);
    }

    #[test]
    fn projection_merges_with_plus() {
        // bag semantics: projecting away a distinguishing column sums
        let r = encode_relation::<Nat>(&[(vec!["a", "1"], Nat(2)), (vec!["a", "2"], Nat(3))]);
        let q = project(expr::var("R"), &[0], 2);
        let out = eval_rel(&q, &[("R", r)]);
        let rows = decode_relation(&out, 1).unwrap();
        assert_eq!(rows, vec![(vec!["a".to_owned()], Nat(5))]);
    }
}
