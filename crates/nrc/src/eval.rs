//! Big-step evaluation of `NRC_K + srt` over K-complex values —
//! the semantic equations of Fig 8.
//!
//! The two semiring-aware equations are:
//!
//! - **big-union**: `[[∪(x ∈ e₁) e₂]](y) = Σᵢ f(xᵢ) · gᵢ(y)` where
//!   `f = [[e₁]]` and `gᵢ = [[e₂]]` with `x ↦ xᵢ` — i.e. the monadic
//!   bind of the free-semimodule monad ([`axml_semiring::KSet::bind`]);
//! - **srt**: `[[(srt(x,y).e₁) e₂]]` where `[[e₂]] = Tree(l, s)` binds
//!   `x ↦ l` and `y ↦` the K-set collecting, for each child `z` of `s`
//!   with annotation `k`, the recursive result `(srt(x,y).e₁) z`
//!   annotated `k` (recursive results that coincide merge with `+`).
//!
//! Everything else is structural. Evaluation is lazy in conditionals
//! (only the taken branch is evaluated — semantically irrelevant in the
//! positive fragment but cheaper).

use crate::expr::{Expr, Name};
use crate::value::CValue;
use axml_semiring::{KSet, Semiring};
use axml_uxml::{Forest, Tree};
use std::fmt;

// Variable names in environments are interned process-globally (same
// pool shape as `Label` and `Var`): a binding stores a `Copy` 4-byte
// id, so `push` in the big-union/`srt` loops never allocates a
// `String` per iteration — repeated interning of the same name hits a
// lock-free per-thread memo.
axml_semiring::define_intern_pool!();

/// A runtime environment ρ mapping variables to complex values.
///
/// Implemented as a scope stack: `push`/`pop` are O(1) and lookup walks
/// from the innermost binding (shadowing). Names are interned, so
/// pushing a binding allocates nothing for names already seen.
///
/// The pool is process-global and append-only — the same lifetime
/// trade-off as [`Label`](axml_uxml::Label) and provenance `Var`s, and
/// far smaller in practice (binding names come from query text; every
/// *label* in every document interns too). A service evaluating
/// unbounded streams of distinct names should use the compiled plans
/// ([`crate::CompiledExpr`]), which resolve names to slots at compile
/// time and intern nothing at runtime; this interpreter is the
/// differential reference.
#[derive(Clone, Default)]
pub struct Env<K: Semiring> {
    bindings: Vec<(u32, CValue<K>)>,
}

impl<K: Semiring> Env<K> {
    /// The empty environment.
    pub fn new() -> Self {
        Env {
            bindings: Vec::new(),
        }
    }

    /// Build from bindings.
    pub fn from_bindings<I: IntoIterator<Item = (Name, CValue<K>)>>(iter: I) -> Self {
        Env {
            bindings: iter
                .into_iter()
                .map(|(n, v)| (intern_name(&n), v))
                .collect(),
        }
    }

    /// Push a binding (shadowing earlier ones).
    pub fn push(&mut self, name: &str, v: CValue<K>) {
        self.bindings.push((intern_name(name), v));
    }

    /// Pop the most recent binding.
    pub fn pop(&mut self) {
        self.bindings.pop();
    }

    /// Look up the innermost binding of `name`.
    pub fn lookup(&self, name: &str) -> Option<&CValue<K>> {
        // Read-only probe: a name never interned was never pushed, so
        // it cannot be bound — and a miss must not permanently grow
        // the process-global pool (lookups of ever-fresh unbound
        // names would otherwise leak an entry each).
        let id = probe_name(name)?;
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| *n == id)
            .map(|(_, v)| v)
    }
}

impl<K: Semiring> fmt::Debug for Env<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.bindings.iter().map(|(n, v)| (interned_name(*n), v)))
            .finish()
    }
}

/// A runtime error. Well-typed expressions never produce one (the
/// `theorems` tests evaluate only typechecked expressions and treat any
/// `EvalError` as a bug).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Description of the failure.
    pub msg: String,
    /// Rendering of the subexpression where it occurred.
    pub at: String,
    /// `true` when the error is the caller's resource budget tripping
    /// (a [`axml_uxml::NodeBudget`] passed to the compiled plan), not
    /// an evaluation failure — the facade maps it to its typed budget
    /// error.
    pub budget: bool,
}

impl EvalError {
    /// A memory-budget trip observed at the op boundary rendered by
    /// `at`.
    pub fn budget(at: impl Into<String>) -> Self {
        EvalError {
            msg: "memory budget exceeded".into(),
            at: at.into(),
            budget: true,
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {} (at `{}`)", self.msg, self.at)
    }
}

impl std::error::Error for EvalError {}

fn err<T, K: Semiring>(e: &Expr<K>, msg: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError {
        msg: msg.into(),
        at: e.to_string(),
        budget: false,
    })
}

/// Evaluate a closed expression.
pub fn eval_closed<K: Semiring>(e: &Expr<K>) -> Result<CValue<K>, EvalError> {
    eval(e, &mut Env::new())
}

/// Evaluate `e` under environment `env`.
pub fn eval<K: Semiring>(e: &Expr<K>, env: &mut Env<K>) -> Result<CValue<K>, EvalError> {
    match e {
        Expr::Label(l) => Ok(CValue::Label(*l)),
        Expr::Var(x) => match env.lookup(x) {
            Some(v) => Ok(v.clone()),
            None => err(e, format!("unbound variable `{x}`")),
        },
        Expr::Let { var, def, body } => {
            let vd = eval(def, env)?;
            env.push(var, vd);
            let out = eval(body, env);
            env.pop();
            out
        }
        Expr::Pair(a, b) => {
            let va = eval(a, env)?;
            let vb = eval(b, env)?;
            Ok(CValue::pair(va, vb))
        }
        Expr::Proj1(inner) => match eval(inner, env)? {
            CValue::Pair(a, _) => Ok((*a).clone()),
            other => err(e, format!("π1 of non-pair {other:?}")),
        },
        Expr::Proj2(inner) => match eval(inner, env)? {
            CValue::Pair(_, b) => Ok((*b).clone()),
            other => err(e, format!("π2 of non-pair {other:?}")),
        },
        Expr::Empty { .. } => Ok(CValue::empty_set()),
        Expr::Singleton(inner) => {
            let v = eval(inner, env)?;
            Ok(CValue::singleton(v))
        }
        Expr::Union(a, b) => {
            let va = eval(a, env)?;
            let vb = eval(b, env)?;
            match (va, vb) {
                (CValue::Set(mut sa), CValue::Set(sb)) => {
                    sa.union_with(sb);
                    Ok(CValue::Set(sa))
                }
                (va, vb) => err(e, format!("∪ of non-sets {va:?}, {vb:?}")),
            }
        }
        Expr::BigUnion { var, source, body } => {
            let vs = eval(source, env)?;
            let CValue::Set(s) = vs else {
                return err(e, format!("big-union source is not a set: {vs:?}"));
            };
            // result(y) = Σ_x s(x) · [[body]]{x↦v}(y)
            let mut out: KSet<CValue<K>, K> = KSet::new();
            for (v, k) in s.iter() {
                env.push(var, v.clone());
                let inner = eval(body, env);
                env.pop();
                match inner? {
                    // out += k · si with a reused accumulator (and no
                    // per-item product when k = 1, the common case).
                    CValue::Set(si) => out.extend_scaled(si, k),
                    other => return err(e, format!("big-union body is not a set: {other:?}")),
                }
            }
            Ok(CValue::Set(out))
        }
        Expr::IfEq { l, r, then, els } => {
            let vl = eval(l, env)?;
            let vr = eval(r, env)?;
            match (vl, vr) {
                (CValue::Label(a), CValue::Label(b)) => {
                    if a == b {
                        eval(then, env)
                    } else {
                        eval(els, env)
                    }
                }
                (vl, vr) => err(e, format!("conditional compares non-labels {vl:?}, {vr:?}")),
            }
        }
        Expr::Scalar { k, body } => match eval(body, env)? {
            CValue::Set(mut s) => {
                s.scalar_mul_in_place(k);
                Ok(CValue::Set(s))
            }
            other => err(e, format!("scalar annotation on non-set {other:?}")),
        },
        Expr::Tree(lab, children) => {
            let vl = eval(lab, env)?;
            let vc = eval(children, env)?;
            let Some(l) = vl.as_label() else {
                return err(e, format!("Tree label is not a label: {vl:?}"));
            };
            let Some(forest) = vc.to_forest() else {
                return err(e, format!("Tree children are not a set of trees: {vc:?}"));
            };
            Ok(CValue::Tree(Tree::new(l, forest)))
        }
        Expr::Tag(inner) => match eval(inner, env)? {
            CValue::Tree(t) => Ok(CValue::Label(t.label())),
            other => err(e, format!("tag of non-tree {other:?}")),
        },
        Expr::Kids(inner) => match eval(inner, env)? {
            CValue::Tree(t) => Ok(CValue::from_forest(t.children())),
            other => err(e, format!("kids of non-tree {other:?}")),
        },
        Expr::Srt {
            label_var,
            acc_var,
            body,
            target,
            ..
        } => {
            let vt = eval(target, env)?;
            let CValue::Tree(t) = vt else {
                return err(e, format!("srt target is not a tree: {vt:?}"));
            };
            eval_srt(label_var, acc_var, body, &t, env)
        }
    }
}

/// One unfolding of Equation (1): recurse over the children, collect
/// the recursive results into a K-set (annotated by each child's
/// annotation, merging coincident results), then evaluate the body.
fn eval_srt<K: Semiring>(
    label_var: &str,
    acc_var: &str,
    body: &Expr<K>,
    t: &Tree<K>,
    env: &mut Env<K>,
) -> Result<CValue<K>, EvalError> {
    let mut acc: KSet<CValue<K>, K> = KSet::new();
    for (child, k) in t.children().iter() {
        let rec = eval_srt(label_var, acc_var, body, child, env)?;
        acc.insert(rec, k.clone());
    }
    env.push(label_var, CValue::Label(t.label()));
    env.push(acc_var, CValue::Set(acc));
    let out = eval(body, env);
    env.pop();
    env.pop();
    out
}

/// Evaluate an expression whose free variables are bound to K-UXML
/// forests — the common entry point for compiled UXQuery programs.
pub fn eval_with_forests<K: Semiring>(
    e: &Expr<K>,
    inputs: &[(&str, &Forest<K>)],
) -> Result<CValue<K>, EvalError> {
    let mut env = Env::from_bindings(
        inputs
            .iter()
            .map(|(n, f)| ((*n).to_owned(), CValue::from_forest(f))),
    );
    eval(e, &mut env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use crate::types::Type;
    use axml_semiring::{Nat, NatPoly};
    use axml_uxml::{leaf, parse_forest};

    type E = Expr<Nat>;

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    #[test]
    fn label_and_pairing() {
        let e: E = pair(label("a"), label("b"));
        let v = eval_closed(&e).unwrap();
        assert_eq!(v, CValue::pair(CValue::label("a"), CValue::label("b")));
        assert_eq!(eval_closed(&proj1(e.clone())).unwrap(), CValue::label("a"));
        assert_eq!(eval_closed(&proj2(e)).unwrap(), CValue::label("b"));
    }

    #[test]
    fn singleton_union_scalar() {
        // 2{a} ∪ 3{a} = {a^5}
        let e: E = union(
            scalar(Nat(2), singleton(label("a"))),
            scalar(Nat(3), singleton(label("a"))),
        );
        let v = eval_closed(&e).unwrap();
        let s = v.as_set().unwrap();
        assert_eq!(s.get(&CValue::label("a")), Nat(5));
    }

    #[test]
    fn bigunion_multiplies_annotations() {
        // ∪(x ∈ {a^2}) {(x)} annotated 3 inside = {a^6}
        let e: E = bigunion(
            "x",
            scalar(Nat(2), singleton(label("a"))),
            scalar(Nat(3), singleton(var("x"))),
        );
        let v = eval_closed(&e).unwrap();
        assert_eq!(v.as_set().unwrap().get(&CValue::label("a")), Nat(6));
    }

    #[test]
    fn conditional_takes_right_branch() {
        let t: E = if_eq(
            label("a"),
            label("a"),
            singleton(label("y")),
            empty(Type::Label),
        );
        assert_eq!(eval_closed(&t).unwrap().as_set().unwrap().support_len(), 1);
        let f: E = if_eq(
            label("a"),
            label("b"),
            singleton(label("y")),
            empty(Type::Label),
        );
        assert!(eval_closed(&f).unwrap().as_set().unwrap().is_empty());
    }

    #[test]
    fn tree_tag_kids_isomorphism() {
        // Tree(tag t, kids t) == t  and  (tag(Tree(a,c)), kids(Tree(a,c))) == (a,c)
        let f = parse_forest::<Nat>("<a> b {2} c </a>").unwrap();
        let t = f.trees().next().unwrap().clone();
        let mut env = Env::from_bindings([("t".into(), CValue::Tree(t.clone()))]);
        let rebuilt: E = tree_expr(tag(var("t")), kids(var("t")));
        assert_eq!(eval(&rebuilt, &mut env).unwrap(), CValue::Tree(t));
    }

    #[test]
    fn flatten_matches_paper_example() {
        // flatten {{a^p, b^r}^u, {b^s}^v} = {a^{u·p}, b^{u·r+v·s}}
        let (p, r, u, s, v) = (Nat(2), Nat(3), Nat(5), Nat(7), Nat(11));
        let inner1: E = union(
            scalar(p, singleton(label("a"))),
            scalar(r, singleton(label("b"))),
        );
        let inner2: E = scalar(s, singleton(label("b")));
        let outer: E = union(scalar(u, singleton(inner1)), scalar(v, singleton(inner2)));
        let v_out = eval_closed(&flatten(outer)).unwrap();
        let set = v_out.as_set().unwrap();
        assert_eq!(set.get(&CValue::label("a")), u.times(&p));
        assert_eq!(set.get(&CValue::label("b")), u.times(&r).plus(&v.times(&s)));
    }

    #[test]
    fn srt_atoms_of_tree() {
        // (srt(x, y). {x} ∪ flatten y) t returns the set of labels in t.
        let f = parse_forest::<NatPoly>("<a {z}> <b {x1}> d {y1} </b> c {x2} </a>").unwrap();
        let t = f.trees().next().unwrap().clone();
        let body = union(singleton(var("x")), flatten(var("y")));
        let e = srt("x", "y", Type::Label.set_of(), body, var("t"));
        let mut env = Env::from_bindings([("t".into(), CValue::Tree(t))]);
        let v = eval(&e, &mut env).unwrap();
        let set = v.as_set().unwrap();
        // a^1; b^{x1}; d^{x1·y1}; c^{x2}
        assert_eq!(set.get(&CValue::label("a")), NatPoly::one());
        assert_eq!(set.get(&CValue::label("b")), np("x1"));
        assert_eq!(set.get(&CValue::label("d")), np("x1*y1"));
        assert_eq!(set.get(&CValue::label("c")), np("x2"));
    }

    #[test]
    fn srt_merges_coincident_recursive_results() {
        // A node with two identical leaf children: the recursive
        // results coincide, annotations add before the body sees them.
        let f = parse_forest::<Nat>("<a> b {2} b {3} </a>").unwrap();
        // note: the parser already merges; build explicitly to be sure
        let t = f.trees().next().unwrap().clone();
        let e = srt("x", "y", Type::Label.set_of(), flatten(var("y")), var("t"));
        let mut env = Env::from_bindings([("t".into(), CValue::Tree(t))]);
        // children: b^5 → recursive result for b = flatten {} = {};
        // wait: leaves have body = flatten y = {} so result {}^5 merged;
        // top: flatten {{}^5} = {}
        let v = eval(&e, &mut env).unwrap();
        assert!(v.as_set().unwrap().is_empty());
    }

    #[test]
    fn eval_with_forests_entry_point() {
        let f = parse_forest::<Nat>("a {2} b").unwrap();
        let e: Expr<Nat> = bigunion("x", var("S"), singleton(var("x")));
        let v = eval_with_forests(&e, &[("S", &f)]).unwrap();
        assert_eq!(v.as_set().unwrap().get(&CValue::Tree(leaf("a"))), Nat(2));
    }

    #[test]
    fn runtime_errors_have_context() {
        let e: E = proj1(label("a"));
        let msg = eval_closed(&e).unwrap_err();
        assert!(msg.msg.contains("π1"), "{msg}");
        let e2: E = var("ghost");
        assert!(eval_closed(&e2).unwrap_err().msg.contains("unbound"));
    }

    #[test]
    fn environment_shadowing() {
        let mut env = Env::<Nat>::new();
        env.push("x", CValue::label("outer"));
        env.push("x", CValue::label("inner"));
        assert_eq!(env.lookup("x").unwrap().as_label().unwrap().name(), "inner");
        env.pop();
        assert_eq!(env.lookup("x").unwrap().as_label().unwrap().name(), "outer");
    }
}
