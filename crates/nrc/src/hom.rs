//! Lifting semiring homomorphisms over NRC expressions and complex
//! values — the machinery of **Theorem 1** (§6.4).
//!
//! A homomorphism `h : K₁ → K₂` lifts to `H` on expressions by
//! replacing every scalar `k` with `h(k)`, and on values by applying
//! `h` to every collection annotation (recursively, including inside
//! trees). Theorem 1: for any K₁-complex value `v` and NRC_K₁+srt
//! expression `e`, `H(e(v)) = H(e)(H(v))` — tested here on targeted
//! cases and exhaustively in `tests/theorems.rs`.

use crate::expr::Expr;
use crate::value::CValue;
use axml_semiring::{KSet, Semiring, SemiringHom};
use axml_uxml::hom::map_tree;

/// Lift `h` over an expression: replace every scalar annotation.
pub fn map_expr<K1, K2, H>(h: &H, e: &Expr<K1>) -> Expr<K2>
where
    K1: Semiring,
    K2: Semiring,
    H: SemiringHom<K1, K2>,
{
    match e {
        Expr::Label(l) => Expr::Label(*l),
        Expr::Var(x) => Expr::Var(x.clone()),
        Expr::Let { var, def, body } => Expr::Let {
            var: var.clone(),
            def: Box::new(map_expr(h, def)),
            body: Box::new(map_expr(h, body)),
        },
        Expr::Pair(a, b) => Expr::Pair(Box::new(map_expr(h, a)), Box::new(map_expr(h, b))),
        Expr::Proj1(a) => Expr::Proj1(Box::new(map_expr(h, a))),
        Expr::Proj2(a) => Expr::Proj2(Box::new(map_expr(h, a))),
        Expr::Empty { elem } => Expr::Empty { elem: elem.clone() },
        Expr::Singleton(a) => Expr::Singleton(Box::new(map_expr(h, a))),
        Expr::Union(a, b) => Expr::Union(Box::new(map_expr(h, a)), Box::new(map_expr(h, b))),
        Expr::BigUnion { var, source, body } => Expr::BigUnion {
            var: var.clone(),
            source: Box::new(map_expr(h, source)),
            body: Box::new(map_expr(h, body)),
        },
        Expr::IfEq { l, r, then, els } => Expr::IfEq {
            l: Box::new(map_expr(h, l)),
            r: Box::new(map_expr(h, r)),
            then: Box::new(map_expr(h, then)),
            els: Box::new(map_expr(h, els)),
        },
        Expr::Scalar { k, body } => Expr::Scalar {
            k: h.apply(k),
            body: Box::new(map_expr(h, body)),
        },
        Expr::Tree(a, b) => Expr::Tree(Box::new(map_expr(h, a)), Box::new(map_expr(h, b))),
        Expr::Tag(a) => Expr::Tag(Box::new(map_expr(h, a))),
        Expr::Kids(a) => Expr::Kids(Box::new(map_expr(h, a))),
        Expr::Srt {
            label_var,
            acc_var,
            result,
            body,
            target,
        } => Expr::Srt {
            label_var: label_var.clone(),
            acc_var: acc_var.clone(),
            result: result.clone(),
            body: Box::new(map_expr(h, body)),
            target: Box::new(map_expr(h, target)),
        },
    }
}

/// Lift `h` over a complex value: apply it to every annotation.
/// Values that become identified merge with `+`; zero-annotated
/// members vanish.
pub fn map_cvalue<K1, K2, H>(h: &H, v: &CValue<K1>) -> CValue<K2>
where
    K1: Semiring,
    K2: Semiring,
    H: SemiringHom<K1, K2>,
{
    match v {
        CValue::Label(l) => CValue::Label(*l),
        CValue::Pair(a, b) => CValue::pair(map_cvalue(h, a), map_cvalue(h, b)),
        CValue::Set(s) => {
            let mut out = KSet::new();
            for (item, k) in s.iter() {
                out.insert(map_cvalue(h, item), h.apply(k));
            }
            CValue::Set(out)
        }
        CValue::Tree(t) => CValue::Tree(map_tree(h, t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Env};
    use crate::expr::*;
    use axml_semiring::{dup_elim, FnHom, Nat};
    use axml_uxml::parse_forest;

    /// Theorem 1, single-case sanity check: a bag query evaluated then
    /// duplicate-eliminated equals the set query on duplicate-eliminated
    /// input. Exhaustive randomized coverage lives in tests/theorems.rs.
    #[test]
    fn theorem1_dup_elim_on_a_join_like_query() {
        let f = parse_forest::<Nat>("<r> a {2} b {3} </r> <r> a {1} </r>").unwrap();
        let h = FnHom::new(dup_elim);
        // e = ∪(t ∈ S) 2·kids(t)
        let e: Expr<Nat> = bigunion("t", var("S"), scalar(Nat(2), kids(var("t"))));

        // H(e(v))
        let mut env = Env::from_bindings([("S".into(), CValue::from_forest(&f))]);
        let lhs = map_cvalue(&h, &eval(&e, &mut env).unwrap());

        // H(e)(H(v))
        let he = map_expr(&h, &e);
        let hv = map_cvalue(&h, &CValue::from_forest(&f));
        let mut env2 = Env::from_bindings([("S".into(), hv)]);
        let rhs = eval(&he, &mut env2).unwrap();

        assert_eq!(lhs, rhs);
    }

    #[test]
    fn map_expr_rewrites_scalars_only() {
        let e: Expr<Nat> = scalar(Nat(3), singleton(label("a")));
        let h = FnHom::new(dup_elim);
        let e2 = map_expr(&h, &e);
        assert_eq!(e2, scalar(true, singleton(label("a"))));
    }

    #[test]
    fn map_cvalue_prunes_zeros_and_merges() {
        let mut s = KSet::new();
        s.insert(CValue::<Nat>::label("gone"), Nat(0));
        // KSet prunes zero at insert; emulate a nonzero→zero hom:
        s.insert(CValue::<Nat>::label("kept"), Nat(2));
        let h = FnHom::new(|n: &Nat| if n.0 > 1 { Nat(1) } else { Nat(0) });
        // not a semiring hom (plus fails), but exercises pruning paths
        let v = CValue::Set(s);
        let out = map_cvalue(&h, &v);
        assert_eq!(out.as_set().unwrap().support_len(), 1);
    }
}
