//! Typechecking `NRC_K + srt` (§6.1).
//!
//! The positive fragment is enforced here: the conditional compares
//! **labels only** (comparing sets would let queries express
//! non-monotonic operations, which semirings cannot interpret — §6.1).

use crate::expr::{Expr, Name};
use crate::types::Type;
use axml_semiring::Semiring;
use std::fmt;

/// A typing context Γ: a stack of `(name, type)` bindings.
#[derive(Clone, Default, Debug)]
pub struct TypeContext {
    bindings: Vec<(Name, Type)>,
}

impl TypeContext {
    /// The empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from bindings.
    pub fn from_bindings<I: IntoIterator<Item = (Name, Type)>>(iter: I) -> Self {
        TypeContext {
            bindings: iter.into_iter().collect(),
        }
    }

    /// Push a binding (shadowing earlier ones).
    pub fn push(&mut self, name: &str, ty: Type) {
        self.bindings.push((name.to_owned(), ty));
    }

    /// Pop the most recent binding.
    pub fn pop(&mut self) {
        self.bindings.pop();
    }

    /// Look up the innermost binding of `name`.
    pub fn lookup(&self, name: &str) -> Option<&Type> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }
}

/// A type error with the offending sub-expression rendered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Description of the failure.
    pub msg: String,
    /// Rendering of the subexpression where it occurred.
    pub at: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {} (at `{}`)", self.msg, self.at)
    }
}

impl std::error::Error for TypeError {}

fn err<T, K: Semiring>(e: &Expr<K>, msg: impl Into<String>) -> Result<T, TypeError> {
    Err(TypeError {
        msg: msg.into(),
        at: e.to_string(),
    })
}

/// Typecheck a closed expression.
pub fn typecheck_closed<K: Semiring>(e: &Expr<K>) -> Result<Type, TypeError> {
    typecheck(e, &mut TypeContext::new())
}

/// Typecheck `e` in context `ctx`, returning its type.
pub fn typecheck<K: Semiring>(e: &Expr<K>, ctx: &mut TypeContext) -> Result<Type, TypeError> {
    match e {
        Expr::Label(_) => Ok(Type::Label),
        Expr::Var(x) => match ctx.lookup(x) {
            Some(t) => Ok(t.clone()),
            None => err(e, format!("unbound variable `{x}`")),
        },
        Expr::Let { var, def, body } => {
            let td = typecheck(def, ctx)?;
            ctx.push(var, td);
            let tb = typecheck(body, ctx);
            ctx.pop();
            tb
        }
        Expr::Pair(a, b) => {
            let ta = typecheck(a, ctx)?;
            let tb = typecheck(b, ctx)?;
            Ok(Type::pair_of(ta, tb))
        }
        Expr::Proj1(inner) => match typecheck(inner, ctx)? {
            Type::Pair(a, _) => Ok(*a),
            other => err(e, format!("π1 applied to non-pair type {other}")),
        },
        Expr::Proj2(inner) => match typecheck(inner, ctx)? {
            Type::Pair(_, b) => Ok(*b),
            other => err(e, format!("π2 applied to non-pair type {other}")),
        },
        Expr::Empty { elem } => Ok(elem.clone().set_of()),
        Expr::Singleton(inner) => Ok(typecheck(inner, ctx)?.set_of()),
        Expr::Union(a, b) => {
            let ta = typecheck(a, ctx)?;
            let tb = typecheck(b, ctx)?;
            if !matches!(ta, Type::Set(_)) {
                return err(e, format!("∪ on non-set type {ta}"));
            }
            if ta != tb {
                return err(e, format!("∪ of mismatched types {ta} and {tb}"));
            }
            Ok(ta)
        }
        Expr::BigUnion { var, source, body } => {
            let ts = typecheck(source, ctx)?;
            let Type::Set(elem) = ts else {
                return err(e, format!("big-union source has non-set type {ts}"));
            };
            ctx.push(var, *elem);
            let tb = typecheck(body, ctx);
            ctx.pop();
            let tb = tb?;
            if !matches!(tb, Type::Set(_)) {
                return err(e, format!("big-union body has non-set type {tb}"));
            }
            Ok(tb)
        }
        Expr::IfEq { l, r, then, els } => {
            let tl = typecheck(l, ctx)?;
            let tr = typecheck(r, ctx)?;
            if tl != Type::Label || tr != Type::Label {
                // §6.1: "we only compare label values" — positivity.
                return err(
                    e,
                    format!("conditional compares {tl} and {tr}; only labels may be compared"),
                );
            }
            let tt = typecheck(then, ctx)?;
            let te = typecheck(els, ctx)?;
            if tt != te {
                return err(e, format!("branches have different types {tt} and {te}"));
            }
            Ok(tt)
        }
        Expr::Scalar { body, .. } => {
            let tb = typecheck(body, ctx)?;
            if !matches!(tb, Type::Set(_)) {
                return err(e, format!("scalar annotation on non-set type {tb}"));
            }
            Ok(tb)
        }
        Expr::Tree(lab, children) => {
            let tl = typecheck(lab, ctx)?;
            if tl != Type::Label {
                return err(e, format!("Tree label has type {tl}, expected label"));
            }
            let tc = typecheck(children, ctx)?;
            if tc != Type::tree_set() {
                return err(
                    e,
                    format!("Tree children have type {tc}, expected {{tree}}"),
                );
            }
            Ok(Type::Tree)
        }
        Expr::Tag(inner) => {
            let t = typecheck(inner, ctx)?;
            if t != Type::Tree {
                return err(e, format!("tag of non-tree type {t}"));
            }
            Ok(Type::Label)
        }
        Expr::Kids(inner) => {
            let t = typecheck(inner, ctx)?;
            if t != Type::Tree {
                return err(e, format!("kids of non-tree type {t}"));
            }
            Ok(Type::tree_set())
        }
        Expr::Srt {
            label_var,
            acc_var,
            result,
            body,
            target,
        } => {
            let tt = typecheck(target, ctx)?;
            if tt != Type::Tree {
                return err(e, format!("srt target has type {tt}, expected tree"));
            }
            // Γ, x:label, y:{t} ⊢ body : t  (t = the declared result).
            ctx.push(label_var, Type::Label);
            ctx.push(acc_var, result.clone().set_of());
            let tb = typecheck(body, ctx);
            ctx.pop();
            ctx.pop();
            let tb = tb?;
            if tb != *result {
                return err(
                    e,
                    format!("srt body has type {tb}, declared result is {result}"),
                );
            }
            Ok(tb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use axml_semiring::Nat;

    type E = Expr<Nat>;

    fn check(e: &E) -> Result<Type, TypeError> {
        typecheck_closed(e)
    }

    #[test]
    fn basic_types() {
        assert_eq!(check(&label("a")).unwrap(), Type::Label);
        assert_eq!(check(&singleton(label("a"))).unwrap(), Type::Label.set_of());
        assert_eq!(check(&empty_trees::<Nat>()).unwrap(), Type::tree_set());
        assert_eq!(
            check(&pair(label("a"), label("b"))).unwrap(),
            Type::pair_of(Type::Label, Type::Label)
        );
    }

    #[test]
    fn projections() {
        let p: E = pair(label("a"), singleton(label("b")));
        assert_eq!(check(&proj1(p.clone())).unwrap(), Type::Label);
        assert_eq!(check(&proj2(p)).unwrap(), Type::Label.set_of());
        assert!(check(&proj1(label("a"))).is_err());
    }

    #[test]
    fn union_requires_same_set_type() {
        let ok: E = union(singleton(label("a")), singleton(label("b")));
        assert!(check(&ok).is_ok());
        let bad: E = union(singleton(label("a")), empty_trees());
        assert!(check(&bad).is_err());
        let bad2: E = union(label("a"), label("b"));
        assert!(check(&bad2).is_err());
    }

    #[test]
    fn bigunion_typing() {
        // project1 R ≜ ∪(x ∈ R) {π1 x} from §6.1
        let mut ctx = TypeContext::from_bindings([(
            "R".to_owned(),
            Type::pair_of(Type::Label, Type::Label).set_of(),
        )]);
        let e: E = bigunion("x", var("R"), singleton(proj1(var("x"))));
        assert_eq!(typecheck(&e, &mut ctx).unwrap(), Type::Label.set_of());
    }

    #[test]
    fn bigunion_body_must_be_set() {
        let e: E = bigunion("x", singleton(label("a")), var("x"));
        assert!(check(&e).is_err());
    }

    #[test]
    fn conditional_only_compares_labels() {
        let ok: E = if_eq(
            label("a"),
            label("b"),
            singleton(label("c")),
            empty(Type::Label),
        );
        assert!(check(&ok).is_ok());
        // comparing sets is rejected — the positivity restriction
        let bad: E = if_eq(
            singleton(label("a")),
            singleton(label("a")),
            label("x"),
            label("y"),
        );
        let e = check(&bad).unwrap_err();
        assert!(e.msg.contains("only labels"), "{e}");
    }

    #[test]
    fn conditional_branches_must_agree() {
        let bad: E = if_eq(label("a"), label("b"), label("c"), singleton(label("d")));
        assert!(check(&bad).is_err());
    }

    #[test]
    fn tree_constructor_and_observers() {
        let t: E = tree_expr(label("a"), empty_trees());
        assert_eq!(check(&t).unwrap(), Type::Tree);
        assert_eq!(check(&tag(t.clone())).unwrap(), Type::Label);
        assert_eq!(check(&kids(t.clone())).unwrap(), Type::tree_set());
        let bad: E = tree_expr(label("a"), singleton(label("b")));
        assert!(check(&bad).is_err());
    }

    #[test]
    fn scalar_requires_set() {
        let ok: E = scalar(Nat(2), singleton(label("a")));
        assert!(check(&ok).is_ok());
        let bad: E = scalar(Nat(2), label("a"));
        assert!(check(&bad).is_err());
    }

    #[test]
    fn srt_atoms_example() {
        // (srt(x, y). {x} ∪ flatten y) t — the set-of-atoms query (§6.1)
        let mut ctx = TypeContext::from_bindings([("t".to_owned(), Type::Tree)]);
        let body: E = union(singleton(var("x")), flatten(var("y")));
        let e: E = srt("x", "y", Type::Label.set_of(), body, var("t"));
        assert_eq!(typecheck(&e, &mut ctx).unwrap(), Type::Label.set_of());
    }

    #[test]
    fn srt_descendant_pair_type() {
        // body type {tree} × tree as in the descendant compilation
        let mut ctx = TypeContext::from_bindings([("t".to_owned(), Type::Tree)]);
        let ty = Type::pair_of(Type::tree_set(), Type::Tree);
        let self_tree: E = tree_expr(
            var("b"),
            bigunion("x", var("s"), singleton(proj2(var("x")))),
        );
        let matches: E = bigunion("x", var("s"), proj1(var("x")));
        let body: E = pair(union(matches, singleton(self_tree.clone())), self_tree);
        let e: E = srt("b", "s", ty.clone(), body, var("t"));
        assert_eq!(typecheck(&e, &mut ctx).unwrap(), ty);
    }

    #[test]
    fn srt_wrong_declared_type_rejected() {
        let mut ctx = TypeContext::from_bindings([("t".to_owned(), Type::Tree)]);
        let body: E = singleton(var("x"));
        let e: E = srt("x", "y", Type::Tree, body, var("t"));
        let msg = typecheck(&e, &mut ctx).unwrap_err();
        assert!(msg.msg.contains("declared result"), "{msg}");
    }

    #[test]
    fn unbound_variable_reported() {
        let e = check(&var("nope"));
        assert!(e.unwrap_err().msg.contains("unbound"));
    }

    #[test]
    fn let_types_body_under_binding() {
        let e: E = let_("x", singleton(label("a")), flatten(singleton(var("x"))));
        assert_eq!(check(&e).unwrap(), Type::Label.set_of());
    }
}
