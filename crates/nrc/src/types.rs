//! The type language of `NRC_K + srt` (§6.1).

use std::fmt;

/// Types: `label | t × t | {t} | tree`.
///
/// The `tree` type is recursive — semantically isomorphic to
/// `label × {tree}` (the isomorphism is witnessed by
/// `Tree(π₁ P, π₂ P)` one way and `(tag T, kids T)` the other; tested
/// in `axml-nrc::eval`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Type {
    /// Atomic labels.
    Label,
    /// Binary products `t₁ × t₂`.
    Pair(Box<Type>, Box<Type>),
    /// K-collections `{t}` (free K-semimodules over `[[t]]`).
    Set(Box<Type>),
    /// Unordered annotated trees.
    Tree,
}

impl Type {
    /// `{t}` for this `t`.
    pub fn set_of(self) -> Type {
        Type::Set(Box::new(self))
    }

    /// `t₁ × t₂`.
    pub fn pair_of(a: Type, b: Type) -> Type {
        Type::Pair(Box::new(a), Box::new(b))
    }

    /// The element type if this is a set type.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Set(t) => Some(t),
            _ => None,
        }
    }

    /// The `{tree}` type, ubiquitous in the UXQuery compilation.
    pub fn tree_set() -> Type {
        Type::Tree.set_of()
    }
}

impl fmt::Debug for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Label => write!(f, "label"),
            Type::Pair(a, b) => write!(f, "({a} × {b})"),
            Type::Set(t) => write!(f, "{{{t}}}"),
            Type::Tree => write!(f, "tree"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Type::Label.to_string(), "label");
        assert_eq!(Type::tree_set().to_string(), "{tree}");
        assert_eq!(
            Type::pair_of(Type::tree_set(), Type::Tree).to_string(),
            "({tree} × tree)"
        );
    }

    #[test]
    fn elem_access() {
        assert_eq!(Type::tree_set().elem(), Some(&Type::Tree));
        assert_eq!(Type::Label.elem(), None);
    }
}
