//! Offline, API-compatible subset of the `proptest` property-testing
//! crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the exact surface the workspace's property tests use is
//! reimplemented here from scratch:
//!
//! - the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive`
//!   and `boxed`;
//! - range, tuple, [`strategy::Just`], [`collection::vec`] and
//!   [`sample::select`] strategies;
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assume!`] macros;
//! - [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Inputs are generated from a deterministic per-test, per-case seed so
//! failures reproduce exactly. There is **no shrinking**: a failing
//! case reports the panic from the assertion macros directly. Each
//! test's RNG stream is a pure function of its module path, name and
//! case index, so runs are stable across processes.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case generation: config and RNG.

    /// How many cases to run per property.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic generator (SplitMix64) used for all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed the stream; equal seeds give equal streams.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5851_F42D_4C95_7F2D,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value below `n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }

    /// FNV-1a of a string — used to derive per-test seeds from names.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Build a recursive strategy: `self` generates leaves and
        /// `recurse` wraps an inner strategy into one more level.
        /// `depth` bounds the nesting; `_desired_size` and
        /// `_expected_branch_size` are accepted for API compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // Mix leaves back in at every level so generated depths
                // vary instead of always reaching the maximum.
                strat = WeightedUnion::new(vec![(1, leaf.clone()), (3, recurse(strat).boxed())])
                    .boxed();
            }
            strat
        }
    }

    /// Object-safe face of [`Strategy`] used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.dyn_new_value(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct WeightedUnion<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> WeightedUnion<V> {
        /// Build from `(weight, strategy)` arms (weights must sum > 0).
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            WeightedUnion { arms, total }
        }
    }

    impl<V> Clone for WeightedUnion<V> {
        fn clone(&self) -> Self {
            WeightedUnion {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<V> Strategy for WeightedUnion<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < u64::from(*w) {
                    return s.new_value(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weights covered the whole range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An (inclusive-min, exclusive-max) element-count range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// Generate `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`select`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list of options.
    pub fn select<T: Clone>(options: impl Into<Vec<T>>) -> Select<T> {
        let options = options.into();
        assert!(!options.is_empty(), "select: empty options");
        Select { options }
    }

    /// The strategy returned by [`select`].
    #[derive(Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! The usual single-import surface.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Weighted or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Assert inside a property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err(());
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __strategies = ( $($strat,)+ );
            let __seed_base = $crate::test_runner::fnv1a(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::test_runner::TestRng::from_seed(
                    __seed_base ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let ($(ref $arg,)+) = __strategies;
                $(
                    let $arg = $crate::strategy::Strategy::new_value($arg, &mut __rng);
                )+
                // The closure lets prop_assume! skip a case via `return`.
                let __outcome: ::core::result::Result<(), ()> = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                let _ = __outcome;
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let s = (3u32..7).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((6..14).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_respects_arms() {
        let mut rng = TestRng::from_seed(2);
        let s = prop_oneof![2 => Just(1u8), 1 => Just(9u8)];
        let mut seen = [false; 2];
        for _ in 0..100 {
            match s.new_value(&mut rng) {
                1 => seen[0] = true,
                9 => seen[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn vec_and_select_compose() {
        let mut rng = TestRng::from_seed(3);
        let s = crate::collection::vec(crate::sample::select(&["a", "b"][..]), 1..4);
        for _ in 0..50 {
            let v = s.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|x| *x == "a" || *x == "b"));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 1,
                T::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(T::Leaf).prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            assert!(depth(&s.new_value(&mut rng)) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..10, v in crate::collection::vec(0u8..4, 2)) {
            prop_assert!(x < 10);
            prop_assert_eq!(v.len(), 2);
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0u64..1000, 0u64..1000);
        let mut a = TestRng::from_seed(99);
        let mut b = TestRng::from_seed(99);
        for _ in 0..20 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
