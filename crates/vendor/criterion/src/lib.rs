//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the benchmark surface the workspace uses is reimplemented here:
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `BenchmarkId`, and a `Bencher::iter` that warms up, picks an
//! iteration count to fill the measurement window, and reports
//! mean/median/min/max per iteration.
//!
//! Differences from upstream criterion, by design:
//!
//! - no statistical regression analysis or HTML reports;
//! - `--test` runs every benchmark exactly once (the CI smoke mode);
//! - a JSON summary of all results is written to the path named by the
//!   `CRITERION_JSON` environment variable (used to capture
//!   `BENCH_baseline.json`), and always printed to stdout.

#![forbid(unsafe_code)]

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id, e.g. `eval_scaling/natpoly/depth=8`.
    pub id: String,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Median ns/iter.
    pub median_ns: f64,
    /// Fastest sample ns/iter.
    pub min_ns: f64,
    /// Slowest sample ns/iter.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

fn results() -> &'static Mutex<Vec<BenchResult>> {
    static RESULTS: OnceLock<Mutex<Vec<BenchResult>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Harness configuration and entry point, mirroring `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the closure before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Apply CLI arguments (`--test` smoke mode, name substring filter).
    /// Called by the `criterion_group!` expansion.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // flags cargo-bench forwards that the shim can ignore
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_owned()),
            }
        }
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        run_bench(self, &id, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a function within this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(self.criterion, &id, f);
        self
    }

    /// Finish the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark id.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name with a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion into a benchmark id string (`&str`, `String`, or
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The id rendering.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher<'a> {
    config: &'a Criterion,
    samples_ns: Vec<f64>,
}

impl Bencher<'_> {
    /// Measure `f`, storing per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.config.test_mode {
            black_box(f());
            self.samples_ns.push(0.0);
            return;
        }
        // Warm-up: run until the warm-up window elapses, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(f());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters.max(1) as f64;
        // Pick iterations per sample so all samples fit the window.
        let budget = self.config.measurement_time.as_secs_f64();
        let per_sample = budget / self.config.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).max(1);
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let ns = t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, mut f: F) {
    if let Some(filter) = &c.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        config: c,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    let mut s = b.samples_ns;
    if s.is_empty() {
        return;
    }
    s.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let min = s[0];
    let max = s[s.len() - 1];
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    let median = s[s.len() / 2];
    if c.test_mode {
        println!("{id}: ok (smoke)");
    } else {
        println!(
            "{id:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
    }
    results()
        .lock()
        .expect("results poisoned")
        .push(BenchResult {
            id: id.to_owned(),
            mean_ns: mean,
            median_ns: median,
            min_ns: min,
            max_ns: max,
            samples: s.len(),
        });
}

/// Record an externally measured result. Benchmarks that time whole
/// operations themselves (e.g. request latencies measured across a
/// network round trip, reported as percentiles rather than a mean of
/// uniform samples) push their numbers here; the record joins the
/// printed table and the `$CRITERION_JSON` summary exactly like a
/// measurement taken through [`Bencher::iter`].
pub fn record(id: &str, mean_ns: f64, median_ns: f64, min_ns: f64, max_ns: f64, samples: usize) {
    println!(
        "{id:<50} time: [{} {} {}]",
        fmt_ns(min_ns),
        fmt_ns(mean_ns),
        fmt_ns(max_ns)
    );
    results()
        .lock()
        .expect("results poisoned")
        .push(BenchResult {
            id: id.to_owned(),
            mean_ns,
            median_ns,
            min_ns,
            max_ns,
            samples,
        });
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Emit the JSON summary; invoked by `criterion_main!` after all groups
/// have run. Appends one JSON object per line (JSON Lines, so several
/// bench binaries can share one file) to `$CRITERION_JSON` when set.
pub fn finalize() {
    let all = results().lock().expect("results poisoned");
    if all.is_empty() {
        return;
    }
    let mut out = String::new();
    for r in all.iter() {
        out.push_str(&format!(
            "{{\"id\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}\n",
            json_escape(&r.id),
            r.mean_ns,
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.samples
        ));
    }
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        use std::io::Write as _;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path);
        match file {
            Ok(mut fh) => {
                let _ = fh.write_all(out.as_bytes());
            }
            Err(e) => eprintln!("criterion shim: cannot write {path}: {e}"),
        }
    }
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::new("f", "depth=8").to_string(), "f/depth=8");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut calls = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_function("one", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn measurement_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("tiny", |b| b.iter(|| black_box(1 + 1)));
        let all = results().lock().unwrap();
        let r = all.iter().find(|r| r.id == "tiny").expect("recorded");
        assert_eq!(r.samples, 3);
        assert!(r.mean_ns >= 0.0);
    }
}
