//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the exact surface the workspace uses is reimplemented here from
//! scratch: a seedable deterministic generator ([`rngs::StdRng`], built
//! on SplitMix64), uniform ranges ([`Rng::gen_range`]) and Bernoulli
//! draws ([`Rng::gen_bool`]). The stream differs from upstream `rand`,
//! but every consumer in this workspace only relies on determinism for
//! a fixed seed, which this implementation guarantees.

#![forbid(unsafe_code)]

/// A source of random `u64`s plus the derived sampling helpers.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(&mut || self.next_u64())
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the standard [0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood) — tiny, fast, and passes
            // the statistical bar these workloads need.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A range that can be sampled uniformly; implemented for `Range` and
/// `RangeInclusive` over the integer types the workspace uses.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw a uniform sample, given a source of random `u64`s.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

/// Uniform `u64` below `n` (n > 0) via Lemire-style rejection-free
/// widening multiply; bias is negligible for the small ranges used here.
fn below(next: &mut dyn FnMut() -> u64, n: u64) -> u64 {
    ((u128::from(next()) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(next, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                lo + below(next, span) as $t
            }
        }
    )+};
}

impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
